//! Property-based tests of the metadata engine: whatever the access
//! pattern, the engine's accounting and counter state must stay coherent.

use proptest::prelude::*;

use morphtree_core::metadata::{AccessCategory, MacMode, MetadataEngine};
use morphtree_core::tree::TreeConfig;

const MEM: u64 = 1 << 22; // 4 MiB
const LINES: u64 = MEM / 64;

fn configs() -> impl Strategy<Value = TreeConfig> {
    prop_oneof![
        Just(TreeConfig::sgx()),
        Just(TreeConfig::vault()),
        Just(TreeConfig::sc64()),
        Just(TreeConfig::sc128()),
        Just(TreeConfig::morphtree()),
        Just(TreeConfig::morphtree_zcc_only()),
        Just(TreeConfig::morphtree_single_base()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Traffic accounting is complete and self-consistent for arbitrary
    /// access sequences: categories partition the total, data counters
    /// match the requests issued, and every emitted access is line-aligned.
    #[test]
    fn accounting_is_coherent(
        config in configs(),
        ops in proptest::collection::vec((0u64..LINES, any::<bool>()), 1..400),
    ) {
        let mut engine = MetadataEngine::new(config, MEM, 4096, MacMode::Inline);
        let mut accesses = Vec::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut emitted = 0u64;
        for (line, is_write) in ops {
            accesses.clear();
            if is_write {
                engine.write(line, &mut accesses);
                writes += 1;
            } else {
                engine.read(line, &mut accesses);
                reads += 1;
            }
            emitted += accesses.len() as u64;
            for access in &accesses {
                prop_assert_eq!(access.addr % 64, 0, "line-aligned addresses");
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.data_reads, reads);
        prop_assert_eq!(stats.data_writes, writes);
        prop_assert_eq!(stats.total_accesses(), emitted);
        let by_category: u64 = AccessCategory::ALL
            .iter()
            .map(|&c| stats.total(c))
            .sum();
        prop_assert_eq!(by_category, emitted, "categories partition the traffic");
        prop_assert_eq!(stats.total(AccessCategory::Data), reads + writes);
        prop_assert_eq!(stats.total(AccessCategory::Mac), 0, "inline MACs are free");
    }

    /// Encryption counters count writes exactly: `counter(line) ==
    /// effective value after exactly `k` increments`, monotone and
    /// identical to an independent shadow count *in increment count* (the
    /// effective value may run ahead after overflows, never behind).
    #[test]
    fn counters_track_writes(
        config in configs(),
        ops in proptest::collection::vec(0u64..64, 1..600),
    ) {
        let mut engine = MetadataEngine::new(config, MEM, 4096, MacMode::Inline);
        let mut shadow = vec![0u64; 64];
        let mut accesses = Vec::new();
        for line in ops {
            accesses.clear();
            engine.write(line, &mut accesses);
            shadow[line as usize] += 1;
        }
        for (line, &count) in shadow.iter().enumerate() {
            let value = engine.counter_value(0, line as u64);
            prop_assert!(
                value >= count,
                "line {line}: counter {value} < write count {count}"
            );
        }
    }

    /// Reads never mutate counter state.
    #[test]
    fn reads_are_counter_pure(
        config in configs(),
        lines in proptest::collection::vec(0u64..LINES, 1..300),
    ) {
        let mut engine = MetadataEngine::new(config, MEM, 4096, MacMode::Inline);
        let mut accesses = Vec::new();
        engine.write(7, &mut accesses);
        let before = engine.counter_value(0, 7);
        for line in lines {
            accesses.clear();
            engine.read(line, &mut accesses);
        }
        prop_assert_eq!(engine.counter_value(0, 7), before);
        prop_assert_eq!(engine.stats().overflows_by_level[0], 0);
    }

    /// Overflow traffic always comes in read+write pairs to child
    /// addresses.
    #[test]
    fn overflow_traffic_is_paired(
        seed_lines in proptest::collection::vec(0u64..128, 0..64),
    ) {
        let mut engine =
            MetadataEngine::new(TreeConfig::sc128(), MEM, 4096, MacMode::Inline);
        let mut accesses = Vec::new();
        for line in seed_lines {
            accesses.clear();
            engine.write(line, &mut accesses);
        }
        // Hammer one line to force overflows, checking the emitted pairs.
        for _ in 0..64 {
            accesses.clear();
            engine.write(0, &mut accesses);
            let overflow: Vec<_> = accesses
                .iter()
                .filter(|a| a.category == AccessCategory::Overflow)
                .collect();
            prop_assert_eq!(overflow.len() % 2, 0, "read+write pairs");
            let reads = overflow.iter().filter(|a| !a.is_write).count();
            prop_assert_eq!(reads * 2, overflow.len());
        }
        prop_assert!(engine.stats().overflows_by_level[0] > 0);
    }
}

#[test]
fn engine_statistics_reset_is_complete() {
    let mut engine = MetadataEngine::new(TreeConfig::morphtree(), MEM, 4096, MacMode::Inline);
    let mut accesses = Vec::new();
    for line in 0..512 {
        engine.write(line, &mut accesses);
        accesses.clear();
    }
    engine.reset_stats();
    let stats = engine.stats();
    assert_eq!(stats.total_accesses(), 0);
    assert_eq!(stats.data_accesses(), 0);
    assert_eq!(stats.total_overflows(), 0);
    assert_eq!(stats.overflow_kinds, [0; 5]);
}
