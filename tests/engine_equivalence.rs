//! Golden equivalence suite (engine layer): the optimized
//! [`MetadataEngine`] — paged flat stores, flat-array SIMD metadata
//! cache, fused probe/insert, precomputed level geometry — must be
//! *bit-identical* in observable behaviour to [`ReferenceEngine`], the
//! frozen seed implementation (`HashMap` stores, ordered-vector LRU,
//! per-miss allocation).
//!
//! Identical here means: for any interleaving of reads and writes, both
//! engines emit the same [`MemAccess`] sequence (same addresses, kinds,
//! categories, criticality, in the same order), accumulate the same
//! [`EngineStats`], and agree on every counter value.

use morphtree_core::metadata::{
    EngineOptions, MacMode, MemAccess, MetadataEngine, ReferenceEngine, ReplacementPolicy,
    VerificationMode,
};
use morphtree_core::tree::TreeConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MIB: u64 = 1 << 20;

/// Drives both engines with the same `(line, is_write)` stream, asserting
/// the emitted access vectors match event by event; returns both engines
/// for end-state checks.
fn lockstep(
    config: TreeConfig,
    memory: u64,
    cache: usize,
    options: EngineOptions,
    stream: impl Iterator<Item = (u64, bool)>,
) -> (MetadataEngine, ReferenceEngine) {
    let mut fast = MetadataEngine::with_options(config.clone(), memory, cache, options);
    let mut slow = ReferenceEngine::with_options(config, memory, cache, options);
    let mut fast_out: Vec<MemAccess> = Vec::new();
    let mut slow_out: Vec<MemAccess> = Vec::new();
    for (i, (line, is_write)) in stream.enumerate() {
        fast_out.clear();
        slow_out.clear();
        if is_write {
            fast.write(line, &mut fast_out);
            slow.write(line, &mut slow_out);
        } else {
            fast.read(line, &mut fast_out);
            slow.read(line, &mut slow_out);
        }
        assert_eq!(fast_out, slow_out, "access stream diverged at event {i} (line {line})");
    }
    assert_eq!(fast.stats(), slow.stats(), "aggregate statistics diverged");
    (fast, slow)
}

/// A mixed random stream: hot set plus uniform background, 40% writes —
/// enough churn to exercise fills, dirty evictions, write-back chains and
/// overflows.
fn random_stream(seed: u64, events: usize, lines: u64) -> impl Iterator<Item = (u64, bool)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events).map(move |_| {
        let line = if rng.gen_bool(0.5) {
            rng.gen_range(0..64.min(lines))
        } else {
            rng.gen_range(0..lines)
        };
        (line, rng.gen_bool(0.4))
    })
}

fn data_lines(config: &TreeConfig, memory: u64) -> u64 {
    MetadataEngine::new(config.clone(), memory, 4096, MacMode::Inline).geometry().data_lines()
}

#[test]
fn streams_match_for_every_tree_config() {
    for config in [TreeConfig::sc64(), TreeConfig::sc128(), TreeConfig::morphtree()] {
        let memory = 16 * MIB;
        let lines = data_lines(&config, memory);
        let options = EngineOptions::default();
        let (fast, slow) = lockstep(
            config.clone(),
            memory,
            8 * 1024,
            options,
            random_stream(7, 30_000, lines),
        );
        // Spot-check counter state across levels (children clamped to
        // each level's valid index space).
        for level in 0..fast.geometry().levels().len() {
            let children = if level == 0 {
                fast.geometry().data_lines()
            } else {
                fast.geometry().levels()[level - 1].lines
            };
            for child in [0u64, 1, 63, 64, 127, 1000].into_iter().filter(|&c| c < children) {
                assert_eq!(
                    fast.counter_value(level, child),
                    slow.counter_value(level, child),
                    "counter diverged at level {level} child {child} ({:?})",
                    config
                );
            }
        }
    }
}

#[test]
fn streams_match_under_every_engine_option() {
    let memory = 8 * MIB;
    let lines = data_lines(&TreeConfig::morphtree(), memory);
    for (mac, verification, replacement) in [
        (MacMode::Separate, VerificationMode::Strict, ReplacementPolicy::Lru),
        (MacMode::Inline, VerificationMode::Speculative, ReplacementPolicy::Lru),
        (MacMode::Inline, VerificationMode::Strict, ReplacementPolicy::LevelAware),
    ] {
        let options = EngineOptions { mac_mode: mac, verification, replacement };
        lockstep(
            TreeConfig::morphtree(),
            memory,
            8 * 1024,
            options,
            random_stream(11, 20_000, lines),
        );
    }
}

#[test]
fn streams_match_with_tiny_thrashing_cache() {
    // A minimal cache maximizes evictions, write-backs and recursive
    // chains — the paths where LRU-order divergence would surface first.
    let memory = 4 * MIB;
    let lines = data_lines(&TreeConfig::sc64(), memory);
    lockstep(
        TreeConfig::sc64(),
        memory,
        1024,
        EngineOptions::default(),
        random_stream(13, 30_000, lines),
    );
}

#[test]
fn streams_match_on_write_storms_with_overflows() {
    // Dense writes to a small hot set drive counters through overflow and
    // re-encryption storms (SC-64 minors overflow every 63 bumps).
    let memory = 4 * MIB;
    let mut rng = SmallRng::seed_from_u64(17);
    let stream = (0..40_000).map(move |_| (rng.gen_range(0..256u64), true));
    lockstep(TreeConfig::sc64(), memory, 4096, EngineOptions::default(), stream);
}

#[test]
fn non_power_of_two_cache_set_count_matches() {
    // 24 lines / 8 ways = 3 sets: exercises the modulo set-index fallback
    // against the reference's hardware-modulo formulation.
    let memory = 4 * MIB;
    let lines = data_lines(&TreeConfig::morphtree(), memory);
    lockstep(
        TreeConfig::morphtree(),
        memory,
        24 * 64,
        EngineOptions::default(),
        random_stream(19, 20_000, lines),
    );
}
