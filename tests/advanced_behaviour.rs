//! Second-round behavioural tests: verification-mode effects, functional
//! detection at upper tree levels, and cross-model agreement of the two
//! DRAM backends.

use morphtree_core::functional::SecureMemory;
use morphtree_core::metadata::VerificationMode;
use morphtree_core::tree::TreeConfig;
use morphtree_core::IntegrityError;
use morphtree_sim::controller::{MemoryController, SchedulerConfig};
use morphtree_sim::dram::{DramGeometry, DramModel, DramTiming};
use morphtree_sim::system::{simulate, SimConfig};
use morphtree_trace::catalog::Benchmark;
use morphtree_trace::workload::SystemWorkload;

fn config() -> SimConfig {
    SimConfig {
        cores: 2,
        memory_bytes: (16 << 30) / 64,
        metadata_cache_bytes: 4096,
        warmup_instructions: 150_000,
        measure_instructions: 150_000,
        ..SimConfig::default()
    }
}

fn workload(name: &str, cfg: &SimConfig) -> SystemWorkload {
    SystemWorkload::rate_scaled(
        Benchmark::by_name(name).expect("catalog name"),
        cfg.cores,
        cfg.memory_bytes,
        1234,
        64,
    )
}

#[test]
fn speculation_hides_latency_but_not_traffic() {
    let strict_cfg = config();
    let mut spec_cfg = config();
    spec_cfg.verification = VerificationMode::Speculative;

    let strict = simulate(&mut workload("mcf", &strict_cfg), TreeConfig::sc64(), &strict_cfg);
    let spec = simulate(&mut workload("mcf", &spec_cfg), TreeConfig::sc64(), &spec_cfg);

    // On a fully bandwidth-bound stream speculation is a statistical tie;
    // it must never *hurt* beyond noise (the latency side can only improve).
    assert!(
        spec.ipc() >= strict.ipc() * 0.99,
        "speculation must not slow things down: {} vs {}",
        spec.ipc(),
        strict.ipc()
    );
    // §VIII-B2: the bandwidth overhead is untouched.
    let traffic_gap =
        (spec.traffic_per_data_access() - strict.traffic_per_data_access()).abs();
    assert!(traffic_gap < 0.05, "traffic should be unchanged, gap {traffic_gap}");
}

#[test]
fn tampering_any_tree_level_is_caught_at_the_child_it_keys() {
    // A level-L counter keys the MAC of its level-(L-1) child (the data
    // MAC for L = 0), so tampering level L must surface exactly there.
    let memory = SecureMemory::new(TreeConfig::sc64(), 1 << 22, [8; 16]);
    let height = memory.geometry().top_level();
    drop(memory);
    for level in 0..height {
        let mut fresh = SecureMemory::new(TreeConfig::sc64(), 1 << 22, [8; 16]);
        for line in 0..256 {
            fresh.write(line, &[line as u8; 64]);
        }
        fresh.tamper_counter(level, 0).unwrap();
        match (level, fresh.read(0)) {
            (0, Err(IntegrityError::DataMac { .. })) => {}
            (l, Err(IntegrityError::CounterMac { level: detected, .. })) if l > 0 => {
                assert_eq!(detected, l - 1, "caught at the keyed child");
            }
            (l, other) => panic!("level {l}: unexpected verdict {other:?}"),
        }
    }
}

#[test]
fn single_base_config_protects_end_to_end() {
    let mut memory =
        SecureMemory::new(TreeConfig::morphtree_single_base(), 1 << 22, [9; 16]);
    // Dense writes push lines into the uniform format with rebasing.
    for round in 0..20u8 {
        for line in 0..256 {
            memory.write(line, &[round; 64]);
        }
    }
    assert_eq!(memory.read(100).unwrap(), [19u8; 64]);
    let stale = memory.snapshot(100).unwrap();
    memory.write(100, &[0xee; 64]);
    memory.replay(stale);
    assert!(memory.read(100).is_err(), "replay detected under single-base");
}

#[test]
fn dram_backends_agree_on_an_uncontended_stream() {
    // With requests spaced far apart there is nothing to reorder: the fast
    // model and the FR-FCFS controller must produce identical completions.
    let timing = DramTiming { t_refi: 0, ..DramTiming::default() };
    let mut fast = DramModel::new(DramGeometry::default(), timing);
    let mut queued =
        MemoryController::new(DramGeometry::default(), timing, SchedulerConfig::default());
    let mut at = 0u64;
    for i in 0..200u64 {
        at += 1000; // far beyond any service time
        let addr = ((i * 7919 * 64) % (1 << 30)) & !63;
        let fast_done = fast.request(at, addr, i % 4 == 0);
        let id = queued.enqueue(at, addr, i % 4 == 0);
        let queued_done = queued.complete(id);
        assert_eq!(fast_done, queued_done, "request {i} at {at:#x}");
    }
    assert_eq!(fast.stats().row_hits, queued.stats().row_hits);
    assert_eq!(fast.stats().activates, queued.stats().activates);
}

#[test]
fn per_workload_headline_signs_match_the_paper() {
    // Spot-check the three per-workload claims §VII-A singles out, at the
    // fast test scale: random-access workloads gain, streaming is neutral.
    let cfg = config();
    for (name, lo, hi) in [("omnetpp", 1.02, 2.0), ("libquantum", 0.93, 1.12)] {
        let sc64 = simulate(&mut workload(name, &cfg), TreeConfig::sc64(), &cfg);
        let morph = simulate(&mut workload(name, &cfg), TreeConfig::morphtree(), &cfg);
        let ratio = morph.ipc() / sc64.ipc();
        assert!(
            (lo..hi).contains(&ratio),
            "{name}: morph/sc64 = {ratio} outside [{lo}, {hi})"
        );
    }
}
