//! Cross-crate security integration tests: the §V claims, demonstrated
//! end-to-end through the functional secure memory (crypto + counters +
//! tree working together).

use morphtree_core::counters::morph::{MorphLine, MorphMode};
use morphtree_core::counters::CounterLine;
use morphtree_core::functional::SecureMemory;
use morphtree_core::tree::TreeConfig;
use morphtree_core::IntegrityError;

const MEM: u64 = 1 << 22; // 4 MiB keeps the trees multi-level but fast

fn all_configs() -> Vec<TreeConfig> {
    vec![
        TreeConfig::sgx(),
        TreeConfig::vault(),
        TreeConfig::sc64(),
        TreeConfig::sc128(),
        TreeConfig::morphtree(),
        TreeConfig::morphtree_zcc_only(),
    ]
}

#[test]
fn every_config_detects_bit_flips_anywhere_in_a_line() {
    for config in all_configs() {
        let mut memory = SecureMemory::new(config.clone(), MEM, [1; 16]);
        memory.write(100, &[0x5a; 64]);
        for offset in [0usize, 13, 31, 63] {
            memory.tamper_raw(100, offset, 0x80).unwrap();
            assert!(memory.read(100).is_err(), "{} offset {offset}", config.name());
            memory.tamper_raw(100, offset, 0x80).unwrap(); // undo
            assert_eq!(memory.read(100).unwrap(), [0x5a; 64], "{}", config.name());
        }
    }
}

#[test]
fn replay_is_detected_even_after_many_interleaved_writes() {
    for config in [TreeConfig::sc64(), TreeConfig::morphtree()] {
        let mut memory = SecureMemory::new(config.clone(), MEM, [2; 16]);
        // Populate neighbours sharing the same counter line.
        for line in 0..32 {
            memory.write(line, &[line as u8; 64]);
        }
        let stale = memory.snapshot(7).unwrap();
        // Lots of unrelated activity, including writes that share line 7's
        // counter line.
        for round in 0..100u8 {
            memory.write(6, &[round; 64]);
            memory.write(8, &[round; 64]);
            memory.write(7, &[round ^ 0xff; 64]);
        }
        memory.replay(stale);
        assert!(
            matches!(memory.read(7), Err(IntegrityError::CounterMac { .. })),
            "{}",
            config.name()
        );
    }
}

#[test]
fn counter_overflows_do_not_break_integrity_of_unrelated_lines() {
    // Drive morphable counters through ZCC -> MCR -> overflow cycles while
    // continuously verifying all data.
    let mut memory = SecureMemory::new(TreeConfig::morphtree(), MEM, [3; 16]);
    for line in 0..128 {
        memory.write(line, &[line as u8; 64]);
    }
    // Hammer one line through thousands of writes (multiple overflows).
    for round in 0..5_000u32 {
        memory.write(5, &round.to_le_bytes().repeat(16).try_into().unwrap());
    }
    for line in 0..128u64 {
        if line != 5 {
            assert_eq!(memory.read(line).unwrap(), [line as u8; 64], "line {line}");
        }
    }
    // Effective counters may advance faster than the write count (§V:
    // overflow resets skip values to guarantee freshness) but never slower.
    assert!(memory.counter_of(5) > 5_000);
}

#[test]
fn pathological_dos_pattern_matches_the_papers_67_writes() {
    // §V: 52 distinct counters (width 4), then 15 writes to one.
    let mut line = MorphLine::new(MorphMode::ZccRebase);
    let mut writes = 0u32;
    let mut overflowed_at = None;
    'outer: for slot in 0..52 {
        writes += 1;
        if line.increment(slot).overflow().is_some() {
            overflowed_at = Some(writes);
            break 'outer;
        }
    }
    if overflowed_at.is_none() {
        loop {
            writes += 1;
            if line.increment(0).overflow().is_some() {
                overflowed_at = Some(writes);
                break;
            }
        }
    }
    assert_eq!(overflowed_at, Some(67));
}

#[test]
fn baseline_split_counters_are_even_more_vulnerable_to_dos() {
    // §V: "the baseline split counter design ... can overflow every 64
    // writes".
    use morphtree_core::counters::split::{SplitConfig, SplitLine};
    let mut line = SplitLine::new(SplitConfig::with_arity(64));
    let mut writes = 0;
    loop {
        writes += 1;
        if line.increment(0).overflow().is_some() {
            break;
        }
    }
    assert_eq!(writes, 64);
}

#[test]
fn effective_counters_never_repeat_under_interleaved_attack_workload() {
    // Counter uniqueness is the foundation of counter-mode security
    // (footnote 1). Track every effective value the memory ever uses for a
    // set of lines under a hostile write pattern and assert global
    // freshness per line.
    let mut memory = SecureMemory::new(TreeConfig::morphtree(), MEM, [4; 16]);
    let mut last_seen: Vec<u64> = vec![0; 128];
    let mut state = 0xdead_beefu64;
    for _ in 0..30_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let line = (state >> 33) % 128;
        memory.write(line, &[state as u8; 64]);
        let counter = memory.counter_of(line);
        assert!(
            counter > last_seen[line as usize],
            "counter reuse on line {line}: {counter} <= {}",
            last_seen[line as usize]
        );
        last_seen[line as usize] = counter;
    }
}

#[test]
fn wrong_key_cannot_forge_a_line() {
    let mut honest = SecureMemory::new(TreeConfig::morphtree(), MEM, [7; 16]);
    honest.write(1, &[9; 64]);
    // An attacker fabricates ciphertext+MAC with their own key and splices
    // it in (simulated by tampering both fields).
    honest.tamper_raw(1, 0, 0xff).unwrap();
    honest.tamper_mac(1, 0x1234_5678).unwrap();
    assert!(honest.read(1).is_err());
}
