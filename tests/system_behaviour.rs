//! End-to-end behavioural tests of the full system: the paper's headline
//! orderings must hold on small, fast simulation points, and the timing
//! and functional models must agree where they overlap.

use morphtree_core::metadata::{MacMode, MetadataEngine};
use morphtree_core::tree::{TreeConfig, TreeGeometry};
use morphtree_sim::system::{simulate, simulate_nonsecure, SimConfig};
use morphtree_trace::catalog::Benchmark;
use morphtree_trace::workload::SystemWorkload;

/// A small but density-consistent operating point (scale 64).
fn config() -> SimConfig {
    SimConfig {
        memory_bytes: (16 << 30) / 64,
        metadata_cache_bytes: 4096,
        warmup_instructions: 400_000,
        measure_instructions: 200_000,
        ..SimConfig::default()
    }
}

fn workload(name: &str, cfg: &SimConfig) -> SystemWorkload {
    SystemWorkload::rate_scaled(
        Benchmark::by_name(name).expect("catalog name"),
        cfg.cores,
        cfg.memory_bytes,
        42,
        64,
    )
}

#[test]
fn headline_ordering_on_a_random_access_workload() {
    let cfg = config();
    let base = simulate_nonsecure(&mut workload("omnetpp", &cfg), &cfg);
    let vault = simulate(&mut workload("omnetpp", &cfg), TreeConfig::vault(), &cfg);
    let sc64 = simulate(&mut workload("omnetpp", &cfg), TreeConfig::sc64(), &cfg);
    let morph = simulate(&mut workload("omnetpp", &cfg), TreeConfig::morphtree(), &cfg);

    // Fig 5/15: Non-Secure > MorphCtr > SC-64 > VAULT.
    assert!(base.ipc() > morph.ipc(), "security is not free");
    assert!(morph.ipc() > sc64.ipc(), "morph {} !> sc64 {}", morph.ipc(), sc64.ipc());
    assert!(sc64.ipc() > vault.ipc(), "sc64 {} !> vault {}", sc64.ipc(), vault.ipc());

    // Fig 16: traffic ordering mirrors performance.
    assert!(morph.traffic_per_data_access() < sc64.traffic_per_data_access());
    assert!(sc64.traffic_per_data_access() < vault.traffic_per_data_access());
}

#[test]
fn streaming_workloads_are_insensitive_to_the_tree() {
    // Fig 15: libquantum-like workloads see little difference — counters
    // enjoy high spatial reuse in the metadata cache.
    let cfg = config();
    let sc64 = simulate(&mut workload("libquantum", &cfg), TreeConfig::sc64(), &cfg);
    let morph = simulate(&mut workload("libquantum", &cfg), TreeConfig::morphtree(), &cfg);
    let ratio = morph.ipc() / sc64.ipc();
    assert!((0.95..1.10).contains(&ratio), "streaming ratio {ratio}");
}

#[test]
fn traffic_decomposition_is_complete() {
    use morphtree_core::metadata::AccessCategory;
    let cfg = config();
    let r = simulate(&mut workload("mcf", &cfg), TreeConfig::sc64(), &cfg);
    let total: f64 = AccessCategory::ALL
        .iter()
        .map(|&c| r.engine.category_per_data_access(c))
        .sum();
    assert!(
        (total - r.traffic_per_data_access()).abs() < 1e-9,
        "categories must partition the traffic"
    );
}

#[test]
fn timing_engine_and_functional_memory_agree_on_encryption_counters() {
    // The metadata engine (timing) and SecureMemory (functional) implement
    // the same architecture: for an identical write sequence, the
    // encryption counter of every line must match exactly.
    let memory_bytes = 1 << 22;
    let config = TreeConfig::morphtree();
    let mut engine =
        MetadataEngine::new(config.clone(), memory_bytes, 8192, MacMode::Inline);
    let mut functional =
        morphtree_core::functional::SecureMemory::new(config, memory_bytes, [5; 16]);

    let mut accesses = Vec::new();
    let mut state = 777u64;
    let mut touched = std::collections::HashSet::new();
    for _ in 0..20_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
        let line = (state >> 30) % 4096;
        accesses.clear();
        engine.write(line, &mut accesses);
        functional.write(line, &[state as u8; 64]);
        touched.insert(line);
    }
    for &line in &touched {
        assert_eq!(
            engine.counter_value(0, line),
            functional.counter_of(line),
            "line {line}"
        );
    }
}

#[test]
fn geometry_invariants_hold_across_sizes_and_configs() {
    for gib in [1u64, 4, 16, 64] {
        let memory = gib << 30;
        for config in [
            TreeConfig::sgx(),
            TreeConfig::vault(),
            TreeConfig::sc64(),
            TreeConfig::sc128(),
            TreeConfig::morphtree(),
        ] {
            let g = TreeGeometry::new(&config, memory);
            // Levels shrink strictly and end in a single root line.
            for pair in g.levels().windows(2) {
                assert!(pair[1].lines < pair[0].lines, "{} {gib}GiB", config.name());
            }
            assert_eq!(g.levels().last().unwrap().lines, 1);
            // Every level's span covers all of memory.
            let l0 = &g.levels()[0];
            assert!(l0.lines * l0.arity as u64 * 64 >= memory);
        }
    }
}

#[test]
fn higher_arity_always_means_smaller_trees() {
    let memory = 16u64 << 30;
    let sgx = TreeGeometry::new(&TreeConfig::sgx(), memory);
    let vault = TreeGeometry::new(&TreeConfig::vault(), memory);
    let sc64 = TreeGeometry::new(&TreeConfig::sc64(), memory);
    let morph = TreeGeometry::new(&TreeConfig::morphtree(), memory);
    assert!(sgx.tree_bytes() > vault.tree_bytes());
    assert!(vault.tree_bytes() > sc64.tree_bytes());
    assert!(sc64.tree_bytes() > morph.tree_bytes());
    assert!(sgx.height() > vault.height());
    assert!(vault.height() > sc64.height());
    assert!(sc64.height() > morph.height());
}

#[test]
fn separate_macs_cost_traffic_in_both_designs() {
    let cfg = config();
    let mut sep_cfg = config();
    sep_cfg.mac_mode = MacMode::Separate;
    for tree in [TreeConfig::sc64(), TreeConfig::morphtree()] {
        let inline = simulate(&mut workload("milc", &cfg), tree.clone(), &cfg);
        let separate = simulate(&mut workload("milc", &sep_cfg), tree, &sep_cfg);
        assert!(
            separate.traffic_per_data_access() > inline.traffic_per_data_access() + 0.5,
            "separate MACs must add ~1 access per data access"
        );
        assert!(separate.ipc() < inline.ipc());
    }
}

#[test]
fn morph_keeps_its_advantage_across_cache_sizes() {
    // The full Fig 19 sweep (regenerated by `experiments fig19` at the
    // standard scale) shows the advantage *growing* as the cache shrinks;
    // at this tiny test scale we assert the robust half: MorphCtr never
    // loses to SC-64 at either cache size, and both designs benefit from a
    // larger cache.
    let mut small = config();
    small.metadata_cache_bytes = 4096;
    let mut large = config();
    large.metadata_cache_bytes = 16 * 1024;

    let sc64_small = simulate(&mut workload("omnetpp", &small), TreeConfig::sc64(), &small);
    let sc64_large = simulate(&mut workload("omnetpp", &large), TreeConfig::sc64(), &large);
    let morph_small =
        simulate(&mut workload("omnetpp", &small), TreeConfig::morphtree(), &small);
    let morph_large =
        simulate(&mut workload("omnetpp", &large), TreeConfig::morphtree(), &large);

    assert!(morph_small.ipc() >= sc64_small.ipc(), "small-cache advantage");
    assert!(morph_large.ipc() >= sc64_large.ipc(), "large-cache advantage");
    assert!(sc64_large.ipc() > sc64_small.ipc(), "more cache helps SC-64");
    assert!(morph_large.ipc() > morph_small.ipc(), "more cache helps MorphCtr");
}
