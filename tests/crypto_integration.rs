//! Integration tests of the crypto substrate against the counter layer:
//! the properties counter-mode security rests on.

use morphtree_crypto::{CtrModeCipher, MacKey};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encryption round-trips for arbitrary payloads, addresses, counters.
    #[test]
    fn ctr_mode_roundtrips(
        key in any::<[u8; 16]>(),
        line_addr in any::<u64>(),
        counter in 0u64..(1 << 56),
        payload in any::<[u8; 32]>(),
    ) {
        let cipher = CtrModeCipher::new(key);
        let mut plaintext = [0u8; 64];
        plaintext[..32].copy_from_slice(&payload);
        plaintext[32..].copy_from_slice(&payload);
        let ciphertext = cipher.encrypt_line(line_addr, counter, &plaintext);
        prop_assert_eq!(cipher.decrypt_line(line_addr, counter, &ciphertext), plaintext);
        prop_assert_ne!(ciphertext, plaintext);
    }

    /// Pads for distinct (address, counter) pairs never coincide — the
    /// one-time property.
    #[test]
    fn pads_are_unique_per_address_and_counter(
        key in any::<[u8; 16]>(),
        addr_a in 0u64..1 << 40,
        addr_b in 0u64..1 << 40,
        ctr_a in 0u64..1 << 56,
        ctr_b in 0u64..1 << 56,
    ) {
        prop_assume!(addr_a != addr_b || ctr_a != ctr_b);
        let cipher = CtrModeCipher::new(key);
        prop_assert_ne!(
            cipher.one_time_pad(addr_a, ctr_a),
            cipher.one_time_pad(addr_b, ctr_b)
        );
    }

    /// MACs detect any single-byte corruption.
    #[test]
    fn macs_detect_any_byte_flip(
        key in any::<[u8; 16]>(),
        addr in any::<u64>(),
        counter in any::<u64>(),
        data in any::<[u8; 16]>(),
        position in 0usize..64,
        flip in 1u8..=255,
    ) {
        let mac_key = MacKey::new(key);
        let mut line = [0u8; 64];
        for (i, byte) in line.iter_mut().enumerate() {
            *byte = data[i % 16];
        }
        let tag = mac_key.mac_line(addr, counter, &line);
        line[position] ^= flip;
        prop_assert_ne!(mac_key.mac_line(addr, counter, &line), tag);
    }

    /// Truncated tags (the 54-bit ECC-chip variant) still bind the inputs.
    #[test]
    fn truncated_macs_still_distinguish_counters(
        key in any::<[u8; 16]>(),
        addr in any::<u64>(),
        counter in 0u64..u64::MAX - 1,
    ) {
        let mac_key = MacKey::new(key);
        let line = [0xa5u8; 64];
        let a = mac_key.mac_line(addr, counter, &line).truncated(54);
        let b = mac_key.mac_line(addr, counter + 1, &line).truncated(54);
        // 2^-54 collision probability: treat equality as failure.
        prop_assert_ne!(a, b);
    }
}

#[test]
fn distinct_keys_give_independent_pads() {
    let a = CtrModeCipher::new([0; 16]).one_time_pad(64, 1);
    let b = CtrModeCipher::new([1; 16]).one_time_pad(64, 1);
    assert_ne!(a, b);
    // ... and roughly half the bits differ.
    let differing: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
    assert!((150..360).contains(&differing), "{differing} bits differ");
}
