//! Property-based tests of the counter-line invariants (the §V security
//! argument, machine-checked over arbitrary write sequences).
#![allow(clippy::needless_range_loop)] // shadows are indexed in lockstep with lines

use proptest::prelude::*;

use morphtree_core::counters::morph::{MorphLine, MorphMode};
use morphtree_core::counters::split::{SplitConfig, SplitLine};
use morphtree_core::counters::{CounterLine, IncrementOutcome, Line};

fn arbitrary_line() -> impl Strategy<Value = Line> {
    prop_oneof![
        Just(Line::from(SplitLine::new(SplitConfig::with_arity(16)))),
        Just(Line::from(SplitLine::new(SplitConfig::with_arity(32)))),
        Just(Line::from(SplitLine::new(SplitConfig::with_arity(64)))),
        Just(Line::from(SplitLine::new(SplitConfig::with_arity(128)))),
        Just(Line::from(MorphLine::new(MorphMode::ZccOnly))),
        Just(Line::from(MorphLine::new(MorphMode::ZccRebase))),
        Just(Line::from(MorphLine::new(MorphMode::SingleBase))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1 (§V, "ensuring no counter reuse"): per slot, effective
    /// values strictly increase across any write sequence.
    #[test]
    fn effective_values_strictly_increase(
        mut line in arbitrary_line(),
        slots in proptest::collection::vec(0usize..128, 1..2_000),
    ) {
        let arity = line.arity();
        let mut last: Vec<u64> = (0..arity).map(|s| line.get(s)).collect();
        for raw in slots {
            let slot = raw % arity;
            let outcome = line.increment(slot);
            let now = line.get(slot);
            prop_assert!(now > last[slot], "slot {slot}: {now} <= {}", last[slot]);
            last[slot] = now;
            if let IncrementOutcome::Overflow(event) = outcome {
                for s in event.span.slots(arity) {
                    let v = line.get(s);
                    prop_assert!(v >= last[s], "span slot {s} went backwards");
                    last[s] = v;
                }
            }
        }
    }

    /// Invariant 2: an increment never disturbs the effective value of a
    /// slot outside the reported re-encryption span.
    #[test]
    fn non_span_slots_are_undisturbed(
        mut line in arbitrary_line(),
        slots in proptest::collection::vec(0usize..128, 1..1_000),
    ) {
        let arity = line.arity();
        let mut shadow: Vec<u64> = (0..arity).map(|s| line.get(s)).collect();
        for raw in slots {
            let slot = raw % arity;
            match line.increment(slot) {
                IncrementOutcome::Ok | IncrementOutcome::Rebased => {
                    shadow[slot] += 1;
                }
                IncrementOutcome::Overflow(event) => {
                    for s in event.span.slots(arity) {
                        shadow[s] = line.get(s);
                    }
                    shadow[slot] = line.get(slot);
                }
            }
            for s in 0..arity {
                prop_assert_eq!(line.get(s), shadow[s], "slot {} diverged", s);
            }
        }
    }

    /// Invariant 3: the 64-byte codec round-trips every reachable morphable
    /// state (formats, widths, bases, MAC field).
    #[test]
    fn morph_codec_roundtrips_reachable_states(
        mode in prop_oneof![
            Just(MorphMode::ZccOnly),
            Just(MorphMode::ZccRebase),
            Just(MorphMode::SingleBase),
        ],
        slots in proptest::collection::vec(0usize..128, 0..1_500),
        mac in any::<u64>(),
    ) {
        let mut line = MorphLine::new(mode);
        for slot in slots {
            line.increment(slot);
        }
        line.set_mac(mac);
        let decoded = MorphLine::decode(mode, &line.encode()).unwrap();
        prop_assert_eq!(&decoded, &line);
        // And the decoded line behaves identically.
        let mut a = line.clone();
        let mut b = decoded;
        for slot in [0usize, 64, 127] {
            prop_assert_eq!(a.increment(slot), b.increment(slot));
        }
        prop_assert_eq!(a, b);
    }

    /// Invariant 4: split-counter codec round-trips for every canonical
    /// arity.
    #[test]
    fn split_codec_roundtrips(
        arity in prop_oneof![Just(8usize), Just(16), Just(32), Just(64), Just(128)],
        slots in proptest::collection::vec(0usize..128, 0..500),
        mac in any::<u64>(),
    ) {
        let config = SplitConfig::with_arity(arity);
        let mut line = SplitLine::new(config);
        for raw in slots {
            line.increment(raw % arity);
        }
        line.set_mac(mac);
        prop_assert_eq!(SplitLine::decode(config, &line.encode()), line);
    }

    /// Invariant 5: `used_counters` never exceeds the arity and tracks
    /// zero/non-zero transitions sensibly.
    #[test]
    fn used_counters_is_bounded(
        mut line in arbitrary_line(),
        slots in proptest::collection::vec(0usize..128, 1..500),
    ) {
        let arity = line.arity();
        for raw in slots {
            line.increment(raw % arity);
            let used = line.used_counters();
            prop_assert!(used <= arity);
        }
    }

    /// Invariant 6: overflow events report spans covering the incremented
    /// slot, and used-counter counts within bounds.
    #[test]
    fn overflow_events_are_well_formed(
        mut line in arbitrary_line(),
        slots in proptest::collection::vec(0usize..128, 1..3_000),
    ) {
        let arity = line.arity();
        for raw in slots {
            let slot = raw % arity;
            if let IncrementOutcome::Overflow(event) = line.increment(slot) {
                prop_assert!(event.used_counters <= arity);
                prop_assert!(
                    event.span.slots(arity).contains(&slot),
                    "span must cover the overflowing slot"
                );
            }
        }
    }
}
