//! Trace capture/replay integration: a recorded trace must drive the
//! simulator to the *same* result as the live workload it was captured
//! from.

use morphtree_core::tree::TreeConfig;
use morphtree_sim::system::{simulate, SimConfig};
use morphtree_trace::catalog::Benchmark;
use morphtree_trace::io::RecordedTrace;
use morphtree_trace::workload::SystemWorkload;

fn config() -> SimConfig {
    // One core: with several cores the capture order (core-by-core) would
    // drive the shared physical-page allocator differently than the live
    // interleaved order, so physical placements — and thus timing — would
    // legitimately differ.
    SimConfig {
        cores: 1,
        memory_bytes: (16 << 30) / 64,
        metadata_cache_bytes: 4096,
        warmup_instructions: 100_000,
        measure_instructions: 100_000,
        ..SimConfig::default()
    }
}

#[test]
fn replayed_trace_reproduces_the_live_simulation_exactly() {
    let cfg = config();
    let bench = Benchmark::by_name("soplex").unwrap();

    // Capture comfortably more records than the simulation will consume.
    let mut capture_source =
        SystemWorkload::rate_scaled(bench, cfg.cores, cfg.memory_bytes, 9, 64);
    let records_needed =
        ((cfg.warmup_instructions + cfg.measure_instructions) as f64 / 1000.0
            * bench.total_pki()
            * 2.0) as usize;
    let trace = RecordedTrace::capture(&mut capture_source, records_needed).unwrap();

    // Round-trip the trace through the on-disk format.
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).unwrap();
    let mut replayed = RecordedTrace::read_from(bytes.as_slice()).unwrap();

    let mut live = SystemWorkload::rate_scaled(bench, cfg.cores, cfg.memory_bytes, 9, 64);
    let live_result = simulate(&mut live, TreeConfig::morphtree(), &cfg);
    let replay_result = simulate(&mut replayed, TreeConfig::morphtree(), &cfg);

    assert_eq!(live_result.cycles, replay_result.cycles);
    assert_eq!(live_result.instructions, replay_result.instructions);
    assert_eq!(live_result.dram, replay_result.dram);
    assert_eq!(
        live_result.engine.total_accesses(),
        replay_result.engine.total_accesses()
    );
}

#[test]
fn trace_survives_a_file_roundtrip() {
    let bench = Benchmark::by_name("lbm").unwrap();
    let mut source = SystemWorkload::rate(bench, 4, 16 << 30, 3);
    let trace = RecordedTrace::capture(&mut source, 500).unwrap();

    let path = std::env::temp_dir().join("morphtree-trace-test.mtrc");
    trace.save(&path).unwrap();
    let loaded = RecordedTrace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.num_cores(), 4);
    use morphtree_trace::workload::RecordSource;
    assert_eq!(loaded.name(), "lbm");
    for core in 0..4 {
        assert_eq!(loaded.len(core), 500);
    }
}
