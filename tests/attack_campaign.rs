//! Property-based attack campaign: *any* single-byte corruption of *any*
//! stored off-chip structure — data ciphertext, data MAC, counter-line
//! MAC, or counter content — is detected on the next read of a line it
//! protects, machine-checked over randomized targets on two tree
//! configurations. Plus end-to-end determinism of the seeded campaign
//! runner across all five paper configurations.

use proptest::prelude::*;

use morphtree_core::attack::{campaign_configs, run_campaign, CampaignConfig};
use morphtree_core::functional::SecureMemory;
use morphtree_core::tree::TreeConfig;

const MEM: u64 = 1 << 20;
const LINES: u64 = 64;

fn populated(config: TreeConfig) -> SecureMemory {
    let mut memory = SecureMemory::new(config, MEM, [0x5c; 16]);
    for line in 0..LINES {
        memory.write(line, &[line as u8 ^ 0xa5; 64]);
    }
    memory
}

/// The victim's covering counter line at `level`: the walk the verifier
/// itself performs, so the tampered line is guaranteed on-path.
fn covering(memory: &SecureMemory, level: usize, data_line: u64) -> (u64, usize) {
    let geom = memory.geometry();
    let mut child = data_line;
    for l in 0..level {
        child = geom.parent_of(l, child).0;
    }
    geom.parent_of(level, child)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flipping one bit of any stored structure fails the next read of a
    /// line under its protection — on both a split-counter and a
    /// morphable-counter tree.
    #[test]
    fn any_single_byte_flip_is_detected_on_next_read(
        config_idx in 0usize..2,
        line in 0u64..LINES,
        offset in 0usize..64,
        bit in 0u32..8,
        target in 0usize..4,
    ) {
        let config = if config_idx == 0 { TreeConfig::sc64() } else { TreeConfig::morphtree() };
        let name = config.name().to_owned();
        let mut memory = populated(config);
        let top = memory.geometry().top_level();
        // Off-chip levels are 0..top (the root at `top` is on-chip and
        // out of the attacker's reach by the threat model).
        let level = offset % top;
        let (line_idx, slot) = covering(&memory, level, line);
        let label = match target {
            0 => {
                memory.tamper_raw(line, offset, 1 << bit).unwrap();
                "data ciphertext"
            }
            1 => {
                memory.tamper_mac(line, 1u64 << (8 * (offset as u32 % 8) + bit)).unwrap();
                "data MAC"
            }
            2 => {
                memory.tamper_counter_mac(level, line_idx, 1u64 << (8 * (offset as u32 % 8) + bit)).unwrap();
                "counter-line MAC"
            }
            _ => {
                // Counter content is tampered semantically (one counter
                // advanced) rather than by raw image bit-flip: a flip in a
                // morphable line's format bits yields an *undecodable*
                // image, which the codec rejects before verification even
                // runs — the semantic change is the adversary's best case.
                memory.tamper_counter_slot(level, line_idx, slot).unwrap();
                "counter content"
            }
        };
        prop_assert!(
            memory.read(line).is_err(),
            "{name}: {label} corruption not detected (line {line}, level {level}, offset {offset}, bit {bit})"
        );
    }
}

#[test]
fn the_paper_campaign_is_deterministic_and_airtight() {
    let campaign = CampaignConfig { seed: 7, count: 40, ..CampaignConfig::default() };
    for (name, tree) in campaign_configs() {
        let first = run_campaign(&tree, &campaign).unwrap();
        let second = run_campaign(&tree, &campaign).unwrap();
        assert_eq!(first.render(), second.render(), "{name} not deterministic");
        assert!(first.all_detected(), "{name}: {}", first.render());
        assert_eq!(first.total_attempts(), 40, "{name}");
    }
}
