//! A tiny key-value store kept in replay-protected secure memory — the
//! "trusted data-center" scenario the paper's introduction motivates
//! (credit-card records, wallet keys in remote machines).
//!
//! Every record lives in encrypted, integrity-checked, replay-protected
//! memory; a compromised DMA device (simulated below) cannot roll back a
//! balance without detection.
//!
//! Run with: `cargo run --release --example secure_kv`

use morphtree_core::functional::SecureMemory;
use morphtree_core::tree::TreeConfig;

/// Fixed-size record: a 24-byte key and a u64 value, padded to a line.
struct SecureKv {
    memory: SecureMemory,
    capacity: u64,
}

impl SecureKv {
    fn new(capacity: u64) -> Self {
        let bytes = (capacity * 64).next_power_of_two().max(1 << 20);
        SecureKv {
            memory: SecureMemory::new(TreeConfig::morphtree(), bytes, *b"kv-store-demo-k!"),
            capacity,
        }
    }

    fn slot_of(key: &str) -> u64 {
        // FNV-1a for slot selection (not security relevant).
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    fn put(&mut self, key: &str, value: u64) {
        let slot = Self::slot_of(key) % self.capacity;
        let mut line = [0u8; 64];
        let key_bytes = key.as_bytes();
        assert!(key_bytes.len() <= 24, "key too long");
        line[..key_bytes.len()].copy_from_slice(key_bytes);
        line[24..32].copy_from_slice(&value.to_le_bytes());
        self.memory.write(slot, &line);
    }

    fn get(&self, key: &str) -> Result<Option<u64>, morphtree_core::IntegrityError> {
        let slot = Self::slot_of(key) % self.capacity;
        let line = self.memory.read(slot)?;
        if line[..key.len()] == *key.as_bytes() {
            Ok(Some(u64::from_le_bytes(line[24..32].try_into().expect("8 bytes"))))
        } else {
            Ok(None)
        }
    }
}

fn main() {
    let mut store = SecureKv::new(4096);

    // Normal operation.
    store.put("alice", 1_000);
    store.put("bob", 250);
    for _ in 0..10 {
        let balance = store.get("alice").expect("verified").expect("present");
        store.put("alice", balance + 100);
    }
    println!("alice: {:?}", store.get("alice").unwrap()); // 2000
    println!("bob:   {:?}", store.get("bob").unwrap()); // 250
    assert_eq!(store.get("alice").unwrap(), Some(2_000));

    // A malicious device snapshots alice's rich balance, waits for a
    // legitimate debit, then replays the stale state.
    let slot = SecureKv::slot_of("alice") % store.capacity;
    let stale = store.memory.snapshot(slot).expect("slot is occupied");
    store.put("alice", 0); // alice spends everything
    store.memory.replay(stale); // attacker restores the old 2000

    match store.get("alice") {
        Err(err) => println!("rollback attack detected: {err}"),
        Ok(balance) => unreachable!("stale balance {balance:?} accepted!"),
    }

    println!(
        "counter state after {} writes: counter(alice-slot) = {}, re-encryptions = {}",
        13,
        store.memory.counter_of(slot),
        store.memory.reencryptions()
    );
}
