//! Watch a morphable counter line morph through its representations as the
//! write pattern changes (§III–IV of the paper):
//!
//! 1. sparse writes → ZCC with wide counters,
//! 2. more distinct counters → ZCC narrows (utility-based allotment),
//! 3. dense usage → MCR double-base format,
//! 4. saturation under uniform writes → rebasing (no re-encryption),
//! 5. the §V pathological pattern → overflow after exactly 67 writes.
//!
//! Run with: `cargo run --release --example counter_morphing`

use morphtree_core::counters::morph::{MorphLine, MorphMode};
use morphtree_core::counters::{CounterLine, IncrementOutcome};

fn describe(line: &MorphLine) -> String {
    match line.zcc_counter_size() {
        Some(width) => format!(
            "format {:?}, {} non-zero counters, {width}-bit minors",
            line.format(),
            line.used_counters()
        ),
        None => format!(
            "format {:?}, {} non-zero counters, bases {:?}",
            line.format(),
            line.used_counters(),
            line.bases()
        ),
    }
}

fn main() {
    let mut line = MorphLine::new(MorphMode::ZccRebase);
    println!("fresh line:        {}", describe(&line));

    // 1. Sparse usage: ten hot counters get 16 bits each.
    for slot in 0..10 {
        for _ in 0..1000 {
            line.increment(slot);
        }
    }
    println!("10 hot counters:   {}", describe(&line));
    assert_eq!(line.get(3), 1000);

    // 2. Crossing the 16-counter threshold narrows everyone to 8 bits —
    //    which the 1000-valued counters cannot fit, so the line resets
    //    (a ZCC re-width overflow, the price of compression).
    for slot in 10..17 {
        if let IncrementOutcome::Overflow(event) = line.increment(slot) {
            println!(
                "17th counter:      overflow {:?} (re-encrypt {} children)",
                event.kind,
                event.span.len(128)
            );
        }
    }
    println!("after re-width:    {}", describe(&line));

    // 3. Dense usage: touch all 128 counters; the line morphs to MCR.
    for slot in 0..128 {
        line.increment(slot);
    }
    println!("all 128 touched:   {}", describe(&line));

    // 4. Uniform writes saturate a minor; rebasing absorbs it silently.
    let mut rebases = 0;
    let mut overflows = 0;
    for round in 0..40 {
        for slot in 0..128 {
            match line.increment(slot) {
                IncrementOutcome::Rebased => rebases += 1,
                IncrementOutcome::Overflow(_) => overflows += 1,
                IncrementOutcome::Ok => {}
            }
        }
        let _ = round;
    }
    println!(
        "40 uniform sweeps: {rebases} rebases, {overflows} overflows \
         (rebasing avoids {} re-encryptions)",
        rebases * 128
    );

    // 5. The §V pathological denial-of-service pattern: 52 distinct writes
    //    shrink the counters to 4 bits, then 15 writes to one counter.
    let mut dos = MorphLine::new(MorphMode::ZccRebase);
    let mut writes = 0;
    'outer: for slot in 0..52 {
        writes += 1;
        if dos.increment(slot).overflow().is_some() {
            break 'outer;
        }
    }
    loop {
        writes += 1;
        if dos.increment(0).overflow().is_some() {
            break;
        }
    }
    println!("pathological DoS:  overflow after {writes} writes (paper: 67)");
    assert_eq!(writes, 67);
}
