//! Explore integrity-tree geometry: for any memory size, print the levels,
//! per-level footprints, heights, and storage overheads of every design
//! the paper compares (Fig 1, Fig 17, Table III).
//!
//! Run with: `cargo run --release --example tree_geometry -- [memory-GiB]`

use morphtree_core::tree::{TreeConfig, TreeGeometry};

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

fn main() {
    let gib: u64 = std::env::args()
        .nth(1)
        .map(|arg| arg.parse().expect("memory size in GiB"))
        .unwrap_or(16);
    let memory = gib << 30;
    println!("integrity-tree geometry for {gib} GiB of protected memory\n");

    let configs = [
        TreeConfig::sgx(),
        TreeConfig::vault(),
        TreeConfig::sc64(),
        TreeConfig::sc128(),
        TreeConfig::morphtree(),
    ];
    for config in &configs {
        let geometry = TreeGeometry::new(config, memory);
        println!(
            "{:<16} {} tree levels | enc ctrs {:>9} ({:.3}%) | tree {:>9} ({:.4}%)",
            config.name(),
            geometry.height(),
            human(geometry.enc_bytes()),
            geometry.enc_overhead() * 100.0,
            human(geometry.tree_bytes()),
            geometry.tree_overhead() * 100.0,
        );
        print!("  levels: ");
        for level in &geometry.levels()[1..] {
            print!("{} ", human(level.bytes()));
        }
        println!("\n");
    }

    let sc64 = TreeGeometry::new(&TreeConfig::sc64(), memory);
    let morph = TreeGeometry::new(&TreeConfig::morphtree(), memory);
    let vault = TreeGeometry::new(&TreeConfig::vault(), memory);
    println!(
        "MorphTree is {:.1}x smaller than the SC-64 baseline and {:.1}x smaller than VAULT",
        sc64.tree_bytes() as f64 / morph.tree_bytes() as f64,
        vault.tree_bytes() as f64 / morph.tree_bytes() as f64,
    );
}
