//! Run the full-system timing simulator on one workload and compare the
//! secure-memory designs — a single-workload slice of Fig 15/16.
//!
//! Run with: `cargo run --release --example simulate_workload -- [workload]`
//! (default: `mcf`; any Table II name works, e.g. `omnetpp`, `pr-twit`).

use morphtree_core::metadata::AccessCategory;
use morphtree_core::tree::TreeConfig;
use morphtree_sim::system::{simulate, simulate_nonsecure, SimConfig};
use morphtree_trace::catalog::Benchmark;
use morphtree_trace::workload::SystemWorkload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_owned());
    let bench = Benchmark::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; see Table II names"));

    // The scaled operating point used throughout the reproduction:
    // memory, cache and footprints divided by 16 (see DESIGN.md).
    let scale = 16u64;
    let cfg = SimConfig {
        memory_bytes: (16 << 30) / scale,
        metadata_cache_bytes: (128 * 1024 / scale) as usize,
        warmup_instructions: 4_000_000,
        measure_instructions: 2_000_000,
        ..SimConfig::default()
    };
    println!(
        "workload {name}: {} read-PKI, {} write-PKI, {} GB footprint (Table II)\n",
        bench.read_pki, bench.write_pki, bench.footprint_gb
    );

    let mk = || SystemWorkload::rate_scaled(bench, cfg.cores, cfg.memory_bytes, 42, scale);
    let base = simulate_nonsecure(&mut mk(), &cfg);
    let configs = [
        TreeConfig::vault(),
        TreeConfig::sc64(),
        TreeConfig::sc128(),
        TreeConfig::morphtree(),
    ];
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "config", "IPC", "vs nonsec", "traffic", "ctr/acc", "ovfl/acc", "ovfl/M", "EDP(mJ*s)"
    );
    println!("{}", "-".repeat(80));
    println!(
        "{:<14} {:>7.3} {:>9.3} {:>9.3} {:>8} {:>8} {:>8} {:>9.3}",
        base.config,
        base.ipc(),
        1.0,
        1.0,
        "-",
        "-",
        "-",
        base.energy.edp().unwrap_or_default() * 1e3,
    );
    for tree in configs {
        let r = simulate(&mut mk(), tree, &cfg);
        let counters = [AccessCategory::CtrEncr, AccessCategory::Ctr1, AccessCategory::Ctr2,
                        AccessCategory::Ctr3Up]
            .iter()
            .map(|&c| r.engine.category_per_data_access(c))
            .sum::<f64>();
        println!(
            "{:<14} {:>7.3} {:>9.3} {:>9.3} {:>8.3} {:>8.3} {:>8.1} {:>9.3}",
            r.config,
            r.ipc(),
            r.ipc() / base.ipc(),
            r.traffic_per_data_access(),
            counters,
            r.engine.category_per_data_access(AccessCategory::Overflow),
            r.engine.overflows_per_million_accesses(),
            r.energy.edp().unwrap_or_default() * 1e3,
        );
    }
    println!(
        "\n(the paper's Fig 15/16 shape: MorphCtr-128 fastest with the least counter\n\
         traffic, SC-64 next, VAULT slowed by its 6-level tree, SC-128 hurt by overflows)"
    );
}
