//! Quickstart: protect a memory with a 128-ary MorphTree, read and write
//! through it, and watch tampering get caught.
//!
//! Run with: `cargo run --release --example quickstart`

use morphtree_core::functional::SecureMemory;
use morphtree_core::tree::{TreeConfig, TreeGeometry};

fn main() {
    // A 64 MiB protected memory using the paper's proposal: MorphCtr-128
    // for the encryption counters and every integrity-tree level.
    let config = TreeConfig::morphtree();
    let memory_bytes = 64 << 20;

    let geometry = TreeGeometry::new(&config, memory_bytes);
    println!("configuration: {}", config.name());
    println!(
        "protected: {} MiB | encryption counters: {} KiB | tree: {} KiB ({} levels)",
        memory_bytes >> 20,
        geometry.enc_bytes() >> 10,
        geometry.tree_bytes() >> 10,
        geometry.height(),
    );

    let mut memory = SecureMemory::new(config, memory_bytes, *b"quickstart-key!!");

    // Ordinary operation: writes are encrypted + MACed, reads verified.
    let secret = *b"attack at dawn! attack at dawn! attack at dawn! attack at dawn! ";
    memory.write(42, &secret);
    let read_back = memory.read(42).expect("verified read");
    assert_eq!(read_back, secret);
    println!("\nwrite/read round-trip: OK (counter = {})", memory.counter_of(42));

    // An adversary with physical access flips one bit of ciphertext.
    memory.tamper_raw(42, 7, 0x01).expect("line 42 exists");
    match memory.read(42) {
        Err(err) => println!("tampering detected: {err}"),
        Ok(_) => unreachable!("tampering must not go unnoticed"),
    }

    // Repair by rewriting, then mount a replay attack: capture the current
    // {ciphertext, MAC, counter} tuple, let the victim update, replay.
    memory.write(42, &secret);
    let stale = memory.snapshot(42).expect("line 42 exists");
    memory.write(42, b"retreat at once!retreat at once!retreat at once!retreat at once!");
    memory.replay(stale);
    match memory.read(42) {
        Err(err) => println!("replay detected:    {err}"),
        Ok(_) => unreachable!("replay must not go unnoticed"),
    }

    println!("\nre-encryptions so far (overflow cost): {}", memory.reencryptions());
}
