//! Crypto substrate benchmarks: AES-128 blocks, 64-byte one-time pads, and
//! SipHash-2-4 line MACs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use morphtree_crypto::{Aes128, CtrModeCipher, MacKey};

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes");
    group.throughput(Throughput::Bytes(16));
    let cipher = Aes128::new(&[7u8; 16]);
    let block = [0x3cu8; 16];
    group.bench_function("encrypt_block", |b| {
        b.iter(|| black_box(cipher.encrypt_block(black_box(&block))));
    });
    group.bench_function("key_schedule", |b| {
        b.iter(|| black_box(Aes128::new(black_box(&[9u8; 16]))));
    });
    group.finish();
}

fn bench_otp(c: &mut Criterion) {
    let mut group = c.benchmark_group("otp");
    group.throughput(Throughput::Bytes(64));
    let cipher = CtrModeCipher::new([1u8; 16]);
    let line = [0xa5u8; 64];
    group.bench_function("one_time_pad", |b| {
        b.iter(|| black_box(cipher.one_time_pad(black_box(0x1000), black_box(42))));
    });
    group.bench_function("encrypt_line", |b| {
        b.iter(|| black_box(cipher.encrypt_line(0x1000, 42, black_box(&line))));
    });
    group.finish();
}

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac");
    group.throughput(Throughput::Bytes(64));
    let key = MacKey::new([2u8; 16]);
    let line = [0x77u8; 64];
    group.bench_function("mac_line", |b| {
        b.iter(|| black_box(key.mac_line(black_box(0x40), black_box(7), black_box(&line))));
    });
    group.finish();
}

criterion_group!(benches, bench_aes, bench_otp, bench_mac);
criterion_main!(benches);
