//! Counter-line micro-benchmarks: increment and codec throughput for every
//! organization. These are the innermost operations of the secure-memory
//! controller; the paper argues decoding is negligible next to AES
//! (§III-B2) — compare with the `crypto` benchmarks to verify.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use morphtree_bench::SplitMix64;
use morphtree_core::counters::morph::{MorphLine, MorphMode};
use morphtree_core::counters::split::{SplitConfig, SplitLine};
use morphtree_core::counters::CounterLine;

fn bench_increments(c: &mut Criterion) {
    let mut group = c.benchmark_group("increment");

    group.bench_function("sc64_hot_slot", |b| {
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        b.iter(|| black_box(line.increment(black_box(7))));
    });

    group.bench_function("sc128_hot_slot", |b| {
        let mut line = SplitLine::new(SplitConfig::with_arity(128));
        b.iter(|| black_box(line.increment(black_box(7))));
    });

    group.bench_function("morph_sparse_zcc", |b| {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        for slot in 0..10 {
            line.increment(slot);
        }
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let slot = (rng.next_u64() % 10) as usize;
            black_box(line.increment(slot))
        });
    });

    group.bench_function("morph_dense_mcr_roundrobin", |b| {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        for slot in 0..128 {
            line.increment(slot);
        }
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % 128;
            black_box(line.increment(slot))
        });
    });

    group.bench_function("morph_random_all_formats", |b| {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            let slot = (rng.next_u64() % 128) as usize;
            black_box(line.increment(slot))
        });
    });

    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");

    let mut sparse = MorphLine::new(MorphMode::ZccRebase);
    for slot in 0..16 {
        for _ in 0..100 {
            sparse.increment(slot);
        }
    }
    group.bench_function("morph_encode_zcc", |b| {
        b.iter(|| black_box(sparse.encode()));
    });
    let image = sparse.encode();
    group.bench_function("morph_decode_zcc", |b| {
        b.iter(|| black_box(MorphLine::decode(MorphMode::ZccRebase, black_box(&image)).unwrap()));
    });

    let mut dense = MorphLine::new(MorphMode::ZccRebase);
    for slot in 0..128 {
        dense.increment(slot);
    }
    group.bench_function("morph_encode_mcr", |b| {
        b.iter(|| black_box(dense.encode()));
    });
    let image = dense.encode();
    group.bench_function("morph_decode_mcr", |b| {
        b.iter(|| black_box(MorphLine::decode(MorphMode::ZccRebase, black_box(&image)).unwrap()));
    });

    let config = SplitConfig::with_arity(64);
    let mut split = SplitLine::new(config);
    for slot in 0..64 {
        split.increment(slot);
    }
    group.bench_function("sc64_encode", |b| {
        b.iter(|| black_box(split.encode()));
    });
    let image = split.encode();
    group.bench_function("sc64_decode", |b| {
        b.iter(|| black_box(SplitLine::decode(config, black_box(&image))));
    });

    group.finish();
}

criterion_group!(benches, bench_increments, bench_codec);
criterion_main!(benches);
