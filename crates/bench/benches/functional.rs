//! Functional secure-memory benchmarks: the cost of real encryption + MAC
//! chains per write and verified read.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use morphtree_bench::SplitMix64;
use morphtree_core::functional::SecureMemory;
use morphtree_core::tree::TreeConfig;

fn bench_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("secure_memory");
    group.throughput(Throughput::Bytes(64));

    for config in [TreeConfig::sc64(), TreeConfig::morphtree()] {
        group.bench_function(format!("write_{}", config.name()), |b| {
            let mut memory = SecureMemory::new(config.clone(), 16 << 20, [3; 16]);
            let mut rng = SplitMix64::new(7);
            let payload = [0xabu8; 64];
            b.iter(|| {
                let line = rng.next_u64() % 4096;
                memory.write(black_box(line), black_box(&payload));
            });
        });

        group.bench_function(format!("verified_read_{}", config.name()), |b| {
            let mut memory = SecureMemory::new(config.clone(), 16 << 20, [3; 16]);
            for line in 0..4096 {
                memory.write(line, &[line as u8; 64]);
            }
            let mut rng = SplitMix64::new(8);
            b.iter(|| {
                let line = rng.next_u64() % 4096;
                black_box(memory.read(black_box(line)).expect("verified"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_functional);
criterion_main!(benches);
