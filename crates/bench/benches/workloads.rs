//! Trace-generation benchmarks: records per second for representative
//! pattern classes (the simulator's input side).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use morphtree_trace::catalog::Benchmark;
use morphtree_trace::workload::SystemWorkload;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    for name in ["mcf", "libquantum", "pr-twit", "GemsFDTD"] {
        group.bench_function(name, |b| {
            let bench = Benchmark::by_name(name).expect("catalog");
            let mut workload = SystemWorkload::rate(bench, 4, 16 << 30, 1);
            let mut core = 0;
            b.iter(|| {
                core = (core + 1) % 4;
                black_box(workload.next_record(core))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
