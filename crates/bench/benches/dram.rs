//! DDR3 model benchmarks: request throughput for row-friendly and
//! row-hostile streams.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use morphtree_bench::SplitMix64;
use morphtree_sim::dram::DramModel;

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_request");

    group.bench_function("sequential_row_hits", |b| {
        let mut dram = DramModel::default();
        let mut addr = 0u64;
        let mut at = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            at = at.wrapping_add(4);
            black_box(dram.request(at, addr, false))
        });
    });

    group.bench_function("random_conflicts", |b| {
        let mut dram = DramModel::default();
        let mut rng = SplitMix64::new(5);
        let mut at = 0u64;
        b.iter(|| {
            at = at.wrapping_add(4);
            let addr = (rng.next_u64() % (1 << 30)) & !63;
            black_box(dram.request(at, addr, false))
        });
    });

    group.bench_function("mixed_reads_writes", |b| {
        let mut dram = DramModel::default();
        let mut rng = SplitMix64::new(6);
        let mut at = 0u64;
        b.iter(|| {
            at = at.wrapping_add(4);
            let r = rng.next_u64();
            let addr = (r % (1 << 30)) & !63;
            black_box(dram.request(at, addr, r & 3 == 0))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
