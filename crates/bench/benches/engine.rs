//! Metadata-engine benchmarks: reads and writes through the tree walk,
//! per configuration — the per-access cost of the timing model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use morphtree_bench::SplitMix64;
use morphtree_core::metadata::{MacMode, MetadataEngine};
use morphtree_core::tree::TreeConfig;

const MEMORY: u64 = 256 << 20;
const CACHE: usize = 8 * 1024;
const FOOTPRINT_LINES: u64 = (64 << 20) / 64;

fn engine(config: TreeConfig) -> MetadataEngine {
    MetadataEngine::new(config, MEMORY, CACHE, MacMode::Inline)
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_read");
    for config in [TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()] {
        group.bench_function(config.name().to_owned(), |b| {
            let mut e = engine(config.clone());
            let mut rng = SplitMix64::new(3);
            let mut out = Vec::with_capacity(64);
            b.iter(|| {
                let line = rng.next_u64() % FOOTPRINT_LINES;
                out.clear();
                e.read(black_box(line), &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_write");
    for config in [TreeConfig::sc64(), TreeConfig::sc128(), TreeConfig::morphtree()] {
        group.bench_function(config.name().to_owned(), |b| {
            let mut e = engine(config.clone());
            let mut rng = SplitMix64::new(4);
            let mut out = Vec::with_capacity(512);
            b.iter(|| {
                // Hot writes: stress increments and overflow handling.
                let line = rng.next_u64() % 4096;
                out.clear();
                e.write(black_box(line), &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reads, bench_writes);
criterion_main!(benches);
