//! Shared helpers for the Criterion micro-benchmarks (see `benches/`).
//!
//! The benchmarks cover the hot paths of the reproduction:
//!
//! - `counters` — increment/encode/decode throughput of every counter
//!   organization (the innermost loop of the whole simulator);
//! - `crypto` — AES-128 blocks, one-time pads, SipHash line MACs;
//! - `engine` — metadata-engine reads/writes per tree configuration;
//! - `dram` — DDR3 model request throughput (row hits vs conflicts);
//! - `functional` — byte-level secure-memory writes and verified reads;
//! - `workloads` — synthetic trace-generation throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A tiny deterministic PRNG (splitmix64) for benchmark inputs, so results
/// are comparable across runs without pulling `rand` into the hot loop.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), 8);
    }
}
