//! Offline in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest's API its test suites use: the [`proptest!`]
//! macro, [`Strategy`] with ranges / tuples / [`strategy::Just`] /
//! [`prop_oneof!`] / [`any`] / [`collection::vec`], and the
//! `prop_assert*` family.
//!
//! Differences from the real crate, by design:
//!
//! - case generation is **deterministic**: the RNG is seeded from the
//!   test's module path and name, so failures reproduce exactly on rerun;
//! - there is **no shrinking** — a failure reports the case number and
//!   the assertion message instead of a minimized input;
//! - strategies are plain samplers (`fn sample(&self, rng)`), not
//!   value trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject,
}

/// A sampler of test-case inputs.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{SmallRng, Strategy};
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// A strategy producing clones of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn sample(&self, rng: &mut SmallRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`].
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut SmallRng) -> V {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].sample(rng)
        }
    }
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        use rand::Rng as _;
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut SmallRng) -> $ty {
                use rand::RngCore as _;
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut SmallRng) -> [u8; N] {
        use rand::RngCore as _;
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (`any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng as _;
    use std::ops::Range;

    /// A strategy producing `Vec`s of varying length.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    /// A vector strategy: length drawn from `size`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Support machinery used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng as _;

    /// A deterministic RNG derived from the test's full path, so every
    /// run of a given property replays the same case sequence.
    #[must_use]
    pub fn deterministic_rng(test_path: &str) -> SmallRng {
        // FNV-1a, 64-bit.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(hash)
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// item becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::deterministic_rng(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(100).max(1000),
                    "proptest: too many rejected cases ({} accepted of {})",
                    accepted,
                    config.cases,
                );
                $(let $binding = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            accepted + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform choice among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {left:?}\n right: {right:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {left:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  both: {left:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore as _;
        let mut a = crate::test_runner::deterministic_rng("x::y");
        let mut b = crate::test_runner::deterministic_rng("x::y");
        let mut c = crate::test_runner::deterministic_rng("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, tuples, vecs and `any` compose and respect bounds.
        #[test]
        fn strategies_respect_bounds(
            x in 3u64..17,
            (lo, flag) in (0usize..5, any::<bool>()),
            bytes in any::<[u8; 16]>(),
            items in crate::collection::vec(0u32..9, 1..40),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(lo < 5);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_eq!(bytes.len(), 16);
            prop_assert!(!items.is_empty() && items.len() < 40);
            prop_assert!(items.iter().all(|&v| v < 9));
        }

        /// `prop_oneof!` only yields listed alternatives; `prop_assume!`
        /// rejects without failing.
        #[test]
        fn oneof_and_assume_work(
            pick in prop_oneof![Just(1u8), Just(5), Just(9)],
            other in 0u8..=255,
        ) {
            prop_assume!(other != 3);
            prop_assert!(pick == 1 || pick == 5 || pick == 9);
            prop_assert_ne!(other, 3);
        }
    }

    #[test]
    fn failing_property_panics_with_case_context() {
        let failure = std::panic::catch_unwind(|| {
            let config = crate::ProptestConfig::with_cases(4);
            let mut rng = crate::test_runner::deterministic_rng("fail");
            let mut accepted = 0u32;
            while accepted < config.cases {
                let x = crate::Strategy::sample(&(0u64..10), &mut rng);
                let outcome = (move || -> Result<(), crate::TestCaseError> {
                    crate::prop_assert!(x < 5, "x was {x}");
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(crate::TestCaseError::Reject) => {}
                    Err(crate::TestCaseError::Fail(m)) => panic!("case failed: {m}"),
                }
            }
        });
        assert!(failure.is_err(), "a value >= 5 must appear within a few cases");
    }
}
