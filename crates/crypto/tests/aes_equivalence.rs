//! Property tests pinning the optimized crypto paths to their references:
//! the T-table AES round function must agree with the table-free scalar
//! formulation on arbitrary keys and blocks, and the batched counter-mode
//! one-time pad must agree with the per-block reference path.
//!
//! (The FIPS-197 known-answer vectors live in the `aes` unit tests; these
//! properties extend that agreement to random inputs.)

use proptest::prelude::*;

use morphtree_crypto::aes::{Aes128, AesBackend};
use morphtree_crypto::otp::CtrModeCipher;
use morphtree_crypto::MacKey;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// T-table and scalar AES are the same permutation for every key.
    #[test]
    fn ttable_matches_scalar_on_random_inputs(
        key in any::<[u8; 16]>(),
        block in any::<[u8; 16]>(),
    ) {
        let cipher = Aes128::new(&key);
        prop_assert_eq!(cipher.encrypt_block(&block), cipher.encrypt_block_scalar(&block));
    }

    /// The batched 64-byte OTP equals the four per-block reference pads.
    #[test]
    fn batched_otp_matches_reference(
        key in any::<[u8; 16]>(),
        line_addr in any::<u64>(),
        counter in any::<u64>(),
    ) {
        // Line addresses are cacheline-aligned; counters carry 56 bits.
        let line_addr = line_addr & !63;
        let counter = counter & ((1 << 56) - 1);
        let cipher = CtrModeCipher::new(key);
        prop_assert_eq!(
            cipher.one_time_pad(line_addr, counter),
            cipher.one_time_pad_reference(line_addr, counter)
        );
    }

    /// Every backend the host can run (scalar, T-table, AES-NI when
    /// detected) is the same AES permutation — through the single-block
    /// and the pipelined four-block entry points.
    #[test]
    fn all_backends_agree_on_random_inputs(
        key in any::<[u8; 16]>(),
        blocks in (any::<[u8; 16]>(), any::<[u8; 16]>(), any::<[u8; 16]>(), any::<[u8; 16]>()),
    ) {
        let blocks = [blocks.0, blocks.1, blocks.2, blocks.3];
        let reference = Aes128::with_backend(&key, AesBackend::Scalar);
        let expect4 = reference.encrypt_blocks4(&blocks);
        for backend in AesBackend::all_available() {
            let cipher = Aes128::with_backend(&key, backend);
            prop_assert_eq!(
                cipher.encrypt_block(&blocks[0]),
                reference.encrypt_block(&blocks[0]),
                "{} single block", backend
            );
            prop_assert_eq!(
                cipher.encrypt_blocks4(&blocks),
                expect4,
                "{} pipelined blocks", backend
            );
        }
    }

    /// Counter-mode pads and line ciphertexts are backend-independent,
    /// including the in-place variants.
    #[test]
    fn otp_and_line_encryption_agree_across_backends(
        key in any::<[u8; 16]>(),
        line_addr in any::<u64>(),
        counter in any::<u64>(),
        plaintext in any::<[u8; 64]>(),
    ) {
        let line_addr = line_addr & !63;
        let counter = counter & ((1 << 56) - 1);
        let reference = CtrModeCipher::with_backend(key, AesBackend::Scalar);
        let expect_pad = reference.one_time_pad(line_addr, counter);
        let expect_ct = reference.encrypt_line(line_addr, counter, &plaintext);
        for backend in AesBackend::all_available() {
            let cipher = CtrModeCipher::with_backend(key, backend);
            prop_assert_eq!(
                cipher.one_time_pad(line_addr, counter), expect_pad,
                "{} pad", backend
            );
            prop_assert_eq!(
                cipher.encrypt_line(line_addr, counter, &plaintext), expect_ct,
                "{} ciphertext", backend
            );
            let mut buf = [0u8; 64];
            cipher.encrypt_line_into(line_addr, counter, &plaintext, &mut buf);
            prop_assert_eq!(buf, expect_ct, "{} in-place ciphertext", backend);
            cipher.decrypt_line_into(line_addr, counter, &expect_ct, &mut buf);
            prop_assert_eq!(buf, plaintext, "{} in-place roundtrip", backend);
        }
    }

    /// The 16-block batch entry point equals sixteen single-block
    /// encryptions on every available backend (VAES lanes included).
    #[test]
    fn blocks16_matches_single_blocks_on_every_backend(
        key in any::<[u8; 16]>(),
        block_vec in proptest::collection::vec(any::<[u8; 16]>(), 16..17),
    ) {
        let mut blocks = [[0u8; 16]; 16];
        blocks.copy_from_slice(&block_vec);
        let reference = Aes128::with_backend(&key, AesBackend::Scalar);
        let expect: Vec<[u8; 16]> =
            blocks.iter().map(|b| reference.encrypt_block(b)).collect();
        for backend in AesBackend::all_available() {
            let cipher = Aes128::with_backend(&key, backend);
            let got = cipher.encrypt_blocks16(&blocks);
            prop_assert_eq!(
                got.as_slice(),
                expect.as_slice(),
                "{} 16-block batch", backend
            );
        }
    }

    /// Satellite bugfix pin: bulk pads are byte-identical to the
    /// per-line scalar reference for arbitrary batch shapes — sizes off
    /// the register width (the generator covers 0..=17, so empty, 1, 3,
    /// 5 and 17 all occur), duplicate pairs, and unsorted order — on
    /// every available backend.
    #[test]
    fn bulk_pads_match_per_line_for_arbitrary_batches(
        key in any::<[u8; 16]>(),
        lines in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..18),
    ) {
        // Line addresses are cacheline-aligned; counters carry 56 bits.
        let lines: Vec<(u64, u64)> = lines
            .iter()
            .map(|&(a, c)| (a & !63, c & ((1 << 56) - 1)))
            .collect();
        let reference = CtrModeCipher::with_backend(key, AesBackend::Scalar);
        for backend in AesBackend::all_available() {
            let cipher = CtrModeCipher::with_backend(key, backend);
            let pads = cipher.one_time_pads(&lines);
            prop_assert_eq!(pads.len(), lines.len());
            for (i, &(addr, ctr)) in lines.iter().enumerate() {
                prop_assert_eq!(
                    pads[i],
                    reference.one_time_pad_reference(addr, ctr),
                    "{} line {} of {}", backend, i, lines.len()
                );
            }
        }
    }

    /// Bulk line encryption/decryption round-trips and equals the
    /// per-line form entry by entry, for arbitrary batch shapes.
    #[test]
    fn bulk_line_encryption_matches_per_line(
        key in any::<[u8; 16]>(),
        entries in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<[u8; 64]>()), 0..10),
    ) {
        let lines: Vec<(u64, u64)> = entries
            .iter()
            .map(|&(a, c, _)| (a & !63, c & ((1 << 56) - 1)))
            .collect();
        let pts: Vec<[u8; 64]> = entries.iter().map(|&(_, _, d)| d).collect();
        let reference = CtrModeCipher::with_backend(key, AesBackend::Scalar);
        for backend in AesBackend::all_available() {
            let cipher = CtrModeCipher::with_backend(key, backend);
            let mut cts = vec![[0u8; 64]; lines.len()];
            cipher.encrypt_lines_into(&lines, &pts, &mut cts);
            for (i, &(addr, ctr)) in lines.iter().enumerate() {
                prop_assert_eq!(
                    cts[i],
                    reference.encrypt_line(addr, ctr, &pts[i]),
                    "{} ciphertext {}", backend, i
                );
            }
            let mut round = vec![[0u8; 64]; lines.len()];
            cipher.decrypt_lines_into(&lines, &cts, &mut round);
            prop_assert_eq!(&round, &pts, "{} roundtrip", backend);
        }
    }

    /// Batched MAC verification equals the per-line MAC for arbitrary
    /// batches (the AES backend is irrelevant to SipHash, but the batch
    /// interleaving must not change a single tag bit).
    #[test]
    fn batched_macs_match_per_line_on_random_batches(
        key in any::<[u8; 16]>(),
        lines in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<[u8; 64]>()), 0..9),
    ) {
        let mac = MacKey::new(key);
        let inputs: Vec<(u64, u64, &[u8; 64])> =
            lines.iter().map(|(a, c, d)| (*a, *c, d)).collect();
        let batch = mac.mac_lines(&inputs);
        for (i, (addr, ctr, data)) in lines.iter().enumerate() {
            prop_assert_eq!(batch[i], mac.mac_line(*addr, *ctr, data), "line {}", i);
        }
    }
}
