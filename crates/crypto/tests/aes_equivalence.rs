//! Property tests pinning the optimized crypto paths to their references:
//! the T-table AES round function must agree with the table-free scalar
//! formulation on arbitrary keys and blocks, and the batched counter-mode
//! one-time pad must agree with the per-block reference path.
//!
//! (The FIPS-197 known-answer vectors live in the `aes` unit tests; these
//! properties extend that agreement to random inputs.)

use proptest::prelude::*;

use morphtree_crypto::aes::Aes128;
use morphtree_crypto::otp::CtrModeCipher;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// T-table and scalar AES are the same permutation for every key.
    #[test]
    fn ttable_matches_scalar_on_random_inputs(
        key in any::<[u8; 16]>(),
        block in any::<[u8; 16]>(),
    ) {
        let cipher = Aes128::new(&key);
        prop_assert_eq!(cipher.encrypt_block(&block), cipher.encrypt_block_scalar(&block));
    }

    /// The batched 64-byte OTP equals the four per-block reference pads.
    #[test]
    fn batched_otp_matches_reference(
        key in any::<[u8; 16]>(),
        line_addr in any::<u64>(),
        counter in any::<u64>(),
    ) {
        // Line addresses are cacheline-aligned; counters carry 56 bits.
        let line_addr = line_addr & !63;
        let counter = counter & ((1 << 56) - 1);
        let cipher = CtrModeCipher::new(key);
        prop_assert_eq!(
            cipher.one_time_pad(line_addr, counter),
            cipher.one_time_pad_reference(line_addr, counter)
        );
    }
}
