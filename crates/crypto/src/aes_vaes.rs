//! Vectorized AES-128 encryption via VAES over 512-bit AVX-512 registers.
//!
//! This is the crate's **second audited `unsafe` module** (beside
//! [`crate::aes_ni`]; the crate is otherwise `#![deny(unsafe_code)]`):
//! `VAESENC` on a zmm register runs one AES round on **four independent
//! 128-bit lanes at once**, so a 512-bit register set of four zmm states
//! carries 16 blocks — four 64-byte cachelines — through the round
//! chain together. The scalar and T-table paths in [`crate::aes`] remain
//! the semantic reference; the FIPS-197 known-answer tests and the
//! cross-backend property tests pin this path bit-identical to both.
//!
//! # Feature gate: the full conjunction, not any one flag
//!
//! `cpuid` reports `vaes`, `avx512f` and `avx512vl` as *independent*
//! bits, and real parts ship every combination (Zen 3 has VAES with no
//! AVX-512 at all; early Xeon Phi had AVX512F with neither VL nor VAES).
//! The 512-bit form of `VAESENC` requires VAES *and* AVX512F, and once
//! those features are enabled on a function the compiler is free to pick
//! 128/256-bit VL encodings for the surrounding lane moves — so
//! [`available`] demands the conjunction `vaes && avx512f && avx512vl`,
//! matching exactly the `#[target_feature]` set the implementation
//! bodies enable. Probing any single bit would select a backend that
//! faults at the first zmm instruction on a partial-AVX-512 host.
//!
//! # Safety argument
//!
//! Every `unsafe` here is one of exactly two shapes, mirroring
//! [`crate::aes_ni`]:
//!
//! 1. **ISA availability.** The `#[target_feature(enable =
//!    "vaes,avx512f,avx512vl")]` functions execute zmm `VAESENC`/
//!    `VAESENCLAST`, which fault on CPUs without the full feature set.
//!    The safe wrappers ([`encrypt_blocks16`], [`encrypt_blocks4`])
//!    assert [`available`] — cached `cpuid` probes of all three bits —
//!    before entering the intrinsic body.
//! 2. **Loads/stores of caller-owned arrays.** All pointer traffic is
//!    `_mm512_loadu_si512`/`_mm512_storeu_si512` over `[[u8; 16]; N]`
//!    arrays received by reference: the arrays are contiguous by
//!    construction, each 64-byte access stays inside them, and the
//!    unaligned variants carry no alignment precondition.
//!
//! No other invariants are trusted: round keys arrive pre-expanded from
//! the shared portable FIPS-197 key schedule in [`crate::aes`], and
//! nothing here allocates, caches, or writes globals.
//!
//! # Lane layout
//!
//! A zmm register holds blocks `[4i, 4i+1, 4i+2, 4i+3]` of the input
//! array in its four 128-bit lanes, low lane first — i.e. plain memory
//! order, so one unaligned 64-byte load/store moves a whole cacheline's
//! four pad blocks and no cross-lane shuffle is ever needed. The round
//! key is broadcast to all four lanes once per round
//! (`_mm512_broadcast_i32x4`) and shared by all four states, so the
//! 16-block form issues 40 `VAESENC`s where AES-NI needs 160
//! `AESENC`s for the same work.

use core::arch::x86_64::{
    __m512i, _mm512_aesenc_epi128, _mm512_aesenclast_epi128, _mm512_broadcast_i32x4,
    _mm512_loadu_si512, _mm512_storeu_si512, _mm512_xor_si512, _mm_loadu_si128,
};

/// Rounds in AES-128, mirroring [`crate::aes`].
const ROUNDS: usize = 10;

/// Runtime detection of the **full** 512-bit VAES feature set: `vaes`
/// for the instruction, `avx512f` for the zmm form, `avx512vl` for the
/// 128/256-bit encodings the compiler may mix in. Each probe is cached
/// by `std` after the first `cpuid`.
#[must_use]
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("vaes")
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

/// Encrypts four independent blocks — one 64-byte cacheline's pads — in
/// a single zmm register (one `VAESENC` per round for all four lanes).
///
/// # Panics
///
/// Panics if the CPU lacks any of `vaes`/`avx512f`/`avx512vl`
/// ([`available`] is false); backend selection never routes here in
/// that case.
#[must_use]
pub fn encrypt_blocks4(
    round_keys: &[[u8; 16]; ROUNDS + 1],
    blocks: &[[u8; 16]; 4],
) -> [[u8; 16]; 4] {
    assert!(available(), "VAES backend selected without CPU support");
    // SAFETY: the assert above proves `vaes`, `avx512f` and `avx512vl`
    // are all available on this CPU.
    unsafe { encrypt_blocks4_impl(round_keys, blocks) }
}

/// Encrypts sixteen independent blocks — four cachelines' pads — as four
/// zmm states sharing each broadcast round key, with the four round
/// chains interleaved to cover `VAESENC` latency.
///
/// # Panics
///
/// Panics if the CPU lacks any of `vaes`/`avx512f`/`avx512vl`
/// ([`available`] is false); backend selection never routes here in
/// that case.
#[must_use]
pub fn encrypt_blocks16(
    round_keys: &[[u8; 16]; ROUNDS + 1],
    blocks: &[[u8; 16]; 16],
) -> [[u8; 16]; 16] {
    assert!(available(), "VAES backend selected without CPU support");
    // SAFETY: the assert above proves `vaes`, `avx512f` and `avx512vl`
    // are all available on this CPU.
    unsafe { encrypt_blocks16_impl(round_keys, blocks) }
}

/// Broadcasts one 16-byte round key to all four 128-bit lanes.
///
/// # Safety
///
/// Requires `avx512f` (checked by the public wrappers). The inner load
/// reads exactly the 16 bytes of the array.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn broadcast_key(key: &[u8; 16]) -> __m512i {
    // SAFETY: `key` is a valid 16-byte array; loadu has no alignment
    // requirement.
    unsafe { _mm512_broadcast_i32x4(_mm_loadu_si128(key.as_ptr().cast())) }
}

/// Loads blocks `[4i .. 4i+4]` of `blocks` into one zmm register, lanes
/// in memory order.
///
/// # Safety
///
/// Requires `avx512f` (checked by the public wrappers). `i` must be in
/// bounds so the 64-byte load stays inside the array.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn load4(blocks: &[[u8; 16]], i: usize) -> __m512i {
    debug_assert!((i + 1) * 4 <= blocks.len());
    // SAFETY: the caller keeps `4i + 4 <= blocks.len()`, so the 64 bytes
    // read are inside the contiguous array; loadu has no alignment
    // requirement.
    unsafe { _mm512_loadu_si512(blocks.as_ptr().add(4 * i).cast()) }
}

/// Stores one zmm register to blocks `[4i .. 4i+4]` of `out`.
///
/// # Safety
///
/// Requires `avx512f` (checked by the public wrappers). `i` must be in
/// bounds so the 64-byte store stays inside the array.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn store4(out: &mut [[u8; 16]], i: usize, value: __m512i) {
    debug_assert!((i + 1) * 4 <= out.len());
    // SAFETY: the caller keeps `4i + 4 <= out.len()`, so the 64 bytes
    // written are inside the contiguous array; storeu has no alignment
    // requirement.
    unsafe { _mm512_storeu_si512(out.as_mut_ptr().add(4 * i).cast(), value) }
}

/// One-register form: four lanes, ten shared-key rounds.
///
/// # Safety
///
/// The CPU must support `vaes`, `avx512f` and `avx512vl` (checked by
/// the public wrappers).
#[target_feature(enable = "vaes,avx512f,avx512vl")]
unsafe fn encrypt_blocks4_impl(
    round_keys: &[[u8; 16]; ROUNDS + 1],
    blocks: &[[u8; 16]; 4],
) -> [[u8; 16]; 4] {
    // SAFETY: the target features hold for the whole body per the
    // function's own target_feature contract; all loads/stores stay
    // inside the caller's arrays.
    unsafe {
        let mut state = _mm512_xor_si512(load4(blocks, 0), broadcast_key(&round_keys[0]));
        for rk in round_keys.iter().take(ROUNDS).skip(1) {
            state = _mm512_aesenc_epi128(state, broadcast_key(rk));
        }
        state = _mm512_aesenclast_epi128(state, broadcast_key(&round_keys[ROUNDS]));
        let mut out = [[0u8; 16]; 4];
        store4(&mut out, 0, state);
        out
    }
}

/// Four-register form: 16 lanes total, round chains interleaved so the
/// four dependent chains hide each other's `VAESENC` latency (the same
/// software pipelining as [`crate::aes_ni::encrypt_blocks4`], one
/// register width up).
///
/// # Safety
///
/// The CPU must support `vaes`, `avx512f` and `avx512vl` (checked by
/// the public wrappers).
#[target_feature(enable = "vaes,avx512f,avx512vl")]
unsafe fn encrypt_blocks16_impl(
    round_keys: &[[u8; 16]; ROUNDS + 1],
    blocks: &[[u8; 16]; 16],
) -> [[u8; 16]; 16] {
    // SAFETY: the target features hold for the whole body per the
    // function's own target_feature contract; all loads/stores stay
    // inside the caller's arrays (indices 0..4 cover exactly 16 blocks).
    unsafe {
        let k0 = broadcast_key(&round_keys[0]);
        let mut s0 = _mm512_xor_si512(load4(blocks, 0), k0);
        let mut s1 = _mm512_xor_si512(load4(blocks, 1), k0);
        let mut s2 = _mm512_xor_si512(load4(blocks, 2), k0);
        let mut s3 = _mm512_xor_si512(load4(blocks, 3), k0);
        for rk in round_keys.iter().take(ROUNDS).skip(1) {
            let k = broadcast_key(rk);
            s0 = _mm512_aesenc_epi128(s0, k);
            s1 = _mm512_aesenc_epi128(s1, k);
            s2 = _mm512_aesenc_epi128(s2, k);
            s3 = _mm512_aesenc_epi128(s3, k);
        }
        let k = broadcast_key(&round_keys[ROUNDS]);
        s0 = _mm512_aesenclast_epi128(s0, k);
        s1 = _mm512_aesenclast_epi128(s1, k);
        s2 = _mm512_aesenclast_epi128(s2, k);
        s3 = _mm512_aesenclast_epi128(s3, k);
        let mut out = [[0u8; 16]; 16];
        store4(&mut out, 0, s0);
        store4(&mut out, 1, s1);
        store4(&mut out, 2, s2);
        store4(&mut out, 3, s3);
        out
    }
}
