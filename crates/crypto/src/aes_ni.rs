//! Hardware AES-128 encryption via the x86-64 AES-NI instruction set.
//!
//! This is one of the crate's **two audited `unsafe` modules** (with
//! [`crate::aes_vaes`]; the crate is otherwise `#![deny(unsafe_code)]`),
//! following the same
//! pattern as the metadata cache's AVX2 kernels: a runtime-probed fast
//! path whose semantic specification is the portable code it replaces.
//! The scalar and T-table paths in [`crate::aes`] remain the reference;
//! the FIPS-197 known-answer tests and the cross-backend property tests
//! pin this path bit-identical to both.
//!
//! # Safety argument
//!
//! Every `unsafe` here is one of exactly two shapes:
//!
//! 1. **ISA availability.** The `#[target_feature(enable = "aes,sse2")]`
//!    functions execute `AESENC`/`AESENCLAST`, which fault on CPUs
//!    without the AES extension. The safe wrappers ([`encrypt_block`],
//!    [`encrypt_blocks4`]) assert [`available`] — a cached `cpuid` probe —
//!    before entering the intrinsic body, so the feature precondition is
//!    checked on every public entry, not assumed from the backend enum.
//! 2. **Loads/stores of caller-owned arrays.** All pointer traffic is
//!    `_mm_loadu_si128`/`_mm_storeu_si128` on `[u8; 16]` values received
//!    by reference, so the 16 bytes are valid by construction and the
//!    unaligned variants carry no alignment precondition.
//!
//! No other invariants are trusted: the round keys arrive pre-expanded
//! from the shared portable FIPS-197 key schedule in [`crate::aes`]
//! (one audited source of truth for the schedule), and nothing here
//! allocates, caches, or writes globals.
//!
//! # Why four blocks at a time
//!
//! `AESENC` has a multi-cycle latency but single-cycle throughput on
//! every AES-NI implementation since Westmere. A single 16-byte block is
//! a serial chain of 10 dependent rounds, so one block at a time leaves
//! the AES unit ~75% idle. Counter-mode pads are embarrassingly parallel
//! — the four sub-block seeds of a 64-byte cacheline are independent —
//! so [`encrypt_blocks4`] interleaves four round chains and keeps the
//! unit's pipeline full. That software pipelining, not the instruction
//! itself, is where most of the >10x over the T-table path comes from.

use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
    _mm_xor_si128,
};

/// Rounds in AES-128, mirroring [`crate::aes`].
const ROUNDS: usize = 10;

/// Runtime AES-NI detection (cached by `std` after the first `cpuid`).
#[must_use]
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Encrypts one block with AES-NI.
///
/// # Panics
///
/// Panics if the CPU does not support AES-NI ([`available`] is false);
/// backend selection never routes here in that case.
#[must_use]
pub fn encrypt_block(round_keys: &[[u8; 16]; ROUNDS + 1], block: &[u8; 16]) -> [u8; 16] {
    assert!(available(), "AES-NI backend selected without CPU support");
    // SAFETY: the assert above proves the `aes` target feature is
    // available on this CPU; `sse2` is part of the x86-64 baseline.
    unsafe { encrypt_block_impl(round_keys, block) }
}

/// Encrypts four independent blocks with interleaved round chains (see
/// the module docs for the pipelining rationale).
///
/// # Panics
///
/// Panics if the CPU does not support AES-NI ([`available`] is false);
/// backend selection never routes here in that case.
#[must_use]
pub fn encrypt_blocks4(
    round_keys: &[[u8; 16]; ROUNDS + 1],
    blocks: &[[u8; 16]; 4],
) -> [[u8; 16]; 4] {
    assert!(available(), "AES-NI backend selected without CPU support");
    // SAFETY: the assert above proves the `aes` target feature is
    // available on this CPU; `sse2` is part of the x86-64 baseline.
    unsafe { encrypt_blocks4_impl(round_keys, blocks) }
}

/// Loads a 16-byte array into a vector register.
///
/// # Safety
///
/// Requires SSE2 (x86-64 baseline). The load is unaligned and reads
/// exactly the 16 bytes of the array, which are valid by construction.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn load(bytes: &[u8; 16]) -> __m128i {
    // SAFETY: `bytes` is a valid 16-byte array; loadu has no alignment
    // requirement.
    unsafe { _mm_loadu_si128(bytes.as_ptr().cast()) }
}

/// Stores a vector register to a 16-byte array.
///
/// # Safety
///
/// Requires SSE2 (x86-64 baseline). The store is unaligned and writes
/// exactly the 16 bytes of the array.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn store(out: &mut [u8; 16], value: __m128i) {
    // SAFETY: `out` is a valid 16-byte array; storeu has no alignment
    // requirement.
    unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), value) }
}

/// One-block AES-128: whiten, 9 full rounds, final round.
///
/// # Safety
///
/// The CPU must support the `aes` feature (checked by the public
/// wrappers).
#[target_feature(enable = "aes,sse2")]
unsafe fn encrypt_block_impl(round_keys: &[[u8; 16]; ROUNDS + 1], block: &[u8; 16]) -> [u8; 16] {
    // SAFETY: `aes`/`sse2` hold for the whole body per the function's
    // own target_feature contract.
    unsafe {
        let mut state = _mm_xor_si128(load(block), load(&round_keys[0]));
        for rk in round_keys.iter().take(ROUNDS).skip(1) {
            state = _mm_aesenc_si128(state, load(rk));
        }
        state = _mm_aesenclast_si128(state, load(&round_keys[ROUNDS]));
        let mut out = [0u8; 16];
        store(&mut out, state);
        out
    }
}

/// Four-block pipelined AES-128: the four round chains are interleaved
/// so consecutive `AESENC`s are independent and issue back-to-back.
///
/// # Safety
///
/// The CPU must support the `aes` feature (checked by the public
/// wrappers).
#[target_feature(enable = "aes,sse2")]
unsafe fn encrypt_blocks4_impl(
    round_keys: &[[u8; 16]; ROUNDS + 1],
    blocks: &[[u8; 16]; 4],
) -> [[u8; 16]; 4] {
    // SAFETY: `aes`/`sse2` hold for the whole body per the function's
    // own target_feature contract.
    unsafe {
        let k0 = load(&round_keys[0]);
        let mut s0 = _mm_xor_si128(load(&blocks[0]), k0);
        let mut s1 = _mm_xor_si128(load(&blocks[1]), k0);
        let mut s2 = _mm_xor_si128(load(&blocks[2]), k0);
        let mut s3 = _mm_xor_si128(load(&blocks[3]), k0);
        for rk in round_keys.iter().take(ROUNDS).skip(1) {
            let k = load(rk);
            s0 = _mm_aesenc_si128(s0, k);
            s1 = _mm_aesenc_si128(s1, k);
            s2 = _mm_aesenc_si128(s2, k);
            s3 = _mm_aesenc_si128(s3, k);
        }
        let k = load(&round_keys[ROUNDS]);
        s0 = _mm_aesenclast_si128(s0, k);
        s1 = _mm_aesenclast_si128(s1, k);
        s2 = _mm_aesenclast_si128(s2, k);
        s3 = _mm_aesenclast_si128(s3, k);
        let mut out = [[0u8; 16]; 4];
        store(&mut out[0], s0);
        store(&mut out[1], s1);
        store(&mut out[2], s2);
        store(&mut out[3], s3);
        out
    }
}
