//! Counter-mode encryption of 64-byte cachelines (the paper's Fig 2–3).
//!
//! A one-time pad is derived from `(line address, effective counter)` by
//! running AES-128 over four seed blocks (one per 16-byte sub-block of the
//! cacheline). Encryption and decryption are both a single XOR with the pad,
//! so the pad can be precomputed while the data access is in flight — the
//! latency-hiding property counter-mode is chosen for.
//!
//! Counter *uniqueness* is what makes the pad one-time: the counter crates
//! guarantee (and property-test) that effective counter values never repeat
//! for a given line.

use crate::aes::{Aes128, AesBackend};
use crate::{CachelineBytes, CACHELINE_BYTES};

/// Counter-mode cipher over 64-byte cachelines.
#[derive(Debug, Clone)]
pub struct CtrModeCipher {
    aes: Aes128,
}

impl CtrModeCipher {
    /// Creates a cipher with the given 128-bit key, using the backend
    /// selected by [`crate::aes::selected_backend`].
    pub fn new(key: [u8; 16]) -> Self {
        Self { aes: Aes128::new(&key) }
    }

    /// Creates a cipher pinned to an explicit AES backend (A/B benchmarking
    /// and cross-backend equivalence tests).
    pub fn with_backend(key: [u8; 16], backend: AesBackend) -> Self {
        Self { aes: Aes128::with_backend(&key, backend) }
    }

    /// The AES backend this cipher dispatches to.
    pub fn backend(&self) -> AesBackend {
        self.aes.backend()
    }

    /// Generates the 64-byte one-time pad for `(line_addr, counter)`.
    ///
    /// Each 16-byte block's seed is `line_addr ‖ counter ‖ block-index`,
    /// so pads for different lines, counters, or sub-blocks never collide.
    ///
    /// The seed is built once; between blocks only its final byte changes
    /// (the block index lives in the top byte of the little-endian counter
    /// half — effective counters are at most 56 bits wide per §V, so that
    /// byte is always free). Identical output to
    /// [`CtrModeCipher::one_time_pad_reference`], without the per-block
    /// seed rebuild.
    pub fn one_time_pad(&self, line_addr: u64, counter: u64) -> CachelineBytes {
        let blocks = self.pad_blocks(line_addr, counter);
        let mut pad = [0u8; CACHELINE_BYTES];
        for (chunk, block) in pad.chunks_exact_mut(16).zip(&blocks) {
            chunk.copy_from_slice(block);
        }
        pad
    }

    /// The four 16-byte pad blocks of a line, generated in one pipelined
    /// [`crate::aes::Aes128::encrypt_blocks4`] call. The four seeds are
    /// independent, so the hardware backend overlaps their round chains
    /// instead of running four serial encryptions.
    fn pad_blocks(&self, line_addr: u64, counter: u64) -> [[u8; 16]; 4] {
        self.aes.encrypt_blocks4(&Self::line_seeds(line_addr, counter))
    }

    /// The four seed blocks of one line: `line_addr ‖ counter` with the
    /// block index in the counter's top byte (see
    /// [`CtrModeCipher::one_time_pad`]). Shared by the per-line and the
    /// bulk paths so both encrypt exactly the same seed bytes.
    fn line_seeds(line_addr: u64, counter: u64) -> [[u8; 16]; 4] {
        let mut seed = [0u8; 16];
        seed[0..8].copy_from_slice(&line_addr.to_le_bytes());
        seed[8..16].copy_from_slice(&counter.to_le_bytes());
        let counter_top = (counter >> 56) as u8;
        let mut seeds = [seed; 4];
        for (block, seed) in seeds.iter_mut().enumerate() {
            seed[15] = counter_top | block as u8;
        }
        seeds
    }

    /// Generates the pads for a whole batch of `(line_addr, counter)`
    /// pairs into `pads`, four lines (16 blocks) per
    /// [`crate::aes::Aes128::encrypt_blocks16`] call.
    ///
    /// This is the cross-line batching hot path: on the `vaes` backend a
    /// group of four lines runs as four 512-bit register states, so a
    /// 16-line batch issues four `encrypt_blocks16` calls instead of
    /// sixteen `encrypt_blocks4` calls. The remainder (batch length mod
    /// 4) goes through the per-line [`CtrModeCipher::one_time_pad`]
    /// formulation — bit-identical by construction, and pinned so by the
    /// remainder property tests. Entries may repeat and appear in any
    /// order; each output pad depends only on its own `(addr, counter)`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` and `pads` have different lengths.
    pub fn pad_lines(&self, lines: &[(u64, u64)], pads: &mut [CachelineBytes]) {
        assert_eq!(
            lines.len(),
            pads.len(),
            "pad_lines: {} line(s) but {} output buffer(s)",
            lines.len(),
            pads.len()
        );
        let full = lines.len() / 4 * 4;
        for (quad, outs) in lines[..full]
            .chunks_exact(4)
            .zip(pads[..full].chunks_exact_mut(4))
        {
            let mut seeds = [[0u8; 16]; 16];
            for (i, &(addr, ctr)) in quad.iter().enumerate() {
                seeds[4 * i..4 * i + 4].copy_from_slice(&Self::line_seeds(addr, ctr));
            }
            let blocks = self.aes.encrypt_blocks16(&seeds);
            for (i, out) in outs.iter_mut().enumerate() {
                for (chunk, block) in
                    out.chunks_exact_mut(16).zip(&blocks[4 * i..4 * i + 4])
                {
                    chunk.copy_from_slice(block);
                }
            }
        }
        for (&(addr, ctr), out) in lines[full..].iter().zip(pads[full..].iter_mut()) {
            for (chunk, block) in
                out.chunks_exact_mut(16).zip(&self.pad_blocks(addr, ctr))
            {
                chunk.copy_from_slice(block);
            }
        }
    }

    /// Allocating form of [`CtrModeCipher::pad_lines`]: one pad per
    /// input pair, in input order.
    pub fn one_time_pads(&self, lines: &[(u64, u64)]) -> Vec<CachelineBytes> {
        let mut pads = vec![[0u8; CACHELINE_BYTES]; lines.len()];
        self.pad_lines(lines, &mut pads);
        pads
    }

    /// Bulk [`CtrModeCipher::encrypt_line_into`]: encrypts
    /// `plaintexts[i]` under `lines[i]` into `outs[i]`, generating the
    /// pads four lines per AES call via [`CtrModeCipher::pad_lines`].
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn encrypt_lines_into(
        &self,
        lines: &[(u64, u64)],
        plaintexts: &[CachelineBytes],
        outs: &mut [CachelineBytes],
    ) {
        self.xor_lines_into(lines, plaintexts, outs);
    }

    /// Bulk [`CtrModeCipher::decrypt_line_into`] (identical to
    /// [`CtrModeCipher::encrypt_lines_into`] in counter mode).
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn decrypt_lines_into(
        &self,
        lines: &[(u64, u64)],
        ciphertexts: &[CachelineBytes],
        outs: &mut [CachelineBytes],
    ) {
        self.xor_lines_into(lines, ciphertexts, outs);
    }

    fn xor_lines_into(
        &self,
        lines: &[(u64, u64)],
        inputs: &[CachelineBytes],
        outs: &mut [CachelineBytes],
    ) {
        assert_eq!(
            lines.len(),
            inputs.len(),
            "bulk xor: {} line(s) but {} input line(s)",
            lines.len(),
            inputs.len()
        );
        // Pads land in `outs` first, then the inputs XOR over them: the
        // extra 64-byte pass is noise next to the ten AES rounds per
        // block, and it keeps one pad-generation path for all bulk APIs.
        self.pad_lines(lines, outs);
        for (out, input) in outs.iter_mut().zip(inputs) {
            for (o, i) in out.iter_mut().zip(input) {
                *o ^= i;
            }
        }
    }

    /// The seed formulation of [`CtrModeCipher::one_time_pad`]: per-block
    /// seed construction over the scalar AES path. Kept as the equivalence
    /// reference and the `morphtree perf` baseline.
    pub fn one_time_pad_reference(&self, line_addr: u64, counter: u64) -> CachelineBytes {
        let mut pad = [0u8; CACHELINE_BYTES];
        for block in 0..CACHELINE_BYTES / 16 {
            let mut seed = [0u8; 16];
            seed[0..8].copy_from_slice(&line_addr.to_le_bytes());
            let tweaked = counter | ((block as u64) << 56);
            seed[8..16].copy_from_slice(&tweaked.to_le_bytes());
            let ct = self.aes.encrypt_block_scalar(&seed);
            pad[block * 16..block * 16 + 16].copy_from_slice(&ct);
        }
        pad
    }

    /// Encrypts a plaintext line: `ciphertext = plaintext XOR OTP`.
    pub fn encrypt_line(
        &self,
        line_addr: u64,
        counter: u64,
        plaintext: &CachelineBytes,
    ) -> CachelineBytes {
        self.xor_line(line_addr, counter, plaintext)
    }

    /// Decrypts a ciphertext line (identical to encryption in counter mode).
    pub fn decrypt_line(
        &self,
        line_addr: u64,
        counter: u64,
        ciphertext: &CachelineBytes,
    ) -> CachelineBytes {
        self.xor_line(line_addr, counter, ciphertext)
    }

    /// [`CtrModeCipher::encrypt_line`] writing into a caller-provided
    /// buffer: the pad blocks are XORed straight into `out` as they come
    /// off the AES pipeline, so no intermediate 64-byte pad is
    /// materialized. Hot paths that reuse one line buffer per chain use
    /// this form.
    pub fn encrypt_line_into(
        &self,
        line_addr: u64,
        counter: u64,
        plaintext: &CachelineBytes,
        out: &mut CachelineBytes,
    ) {
        self.xor_line_into(line_addr, counter, plaintext, out);
    }

    /// [`CtrModeCipher::decrypt_line`] writing into a caller-provided
    /// buffer (identical to [`CtrModeCipher::encrypt_line_into`] in
    /// counter mode).
    pub fn decrypt_line_into(
        &self,
        line_addr: u64,
        counter: u64,
        ciphertext: &CachelineBytes,
        out: &mut CachelineBytes,
    ) {
        self.xor_line_into(line_addr, counter, ciphertext, out);
    }

    fn xor_line(&self, line_addr: u64, counter: u64, input: &CachelineBytes) -> CachelineBytes {
        let mut out = [0u8; CACHELINE_BYTES];
        self.xor_line_into(line_addr, counter, input, &mut out);
        out
    }

    fn xor_line_into(
        &self,
        line_addr: u64,
        counter: u64,
        input: &CachelineBytes,
        out: &mut CachelineBytes,
    ) {
        let blocks = self.pad_blocks(line_addr, counter);
        for (block_idx, block) in blocks.iter().enumerate() {
            let base = block_idx * 16;
            for (offset, pad_byte) in block.iter().enumerate() {
                out[base + offset] = input[base + offset] ^ pad_byte;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> CtrModeCipher {
        CtrModeCipher::new([0x42u8; 16])
    }

    #[test]
    fn roundtrip() {
        let c = cipher();
        let pt: CachelineBytes = core::array::from_fn(|i| i as u8);
        let ct = c.encrypt_line(0x8000, 99, &pt);
        assert_ne!(ct, pt);
        assert_eq!(c.decrypt_line(0x8000, 99, &ct), pt);
    }

    #[test]
    fn pads_differ_by_address_and_counter() {
        let c = cipher();
        let a = c.one_time_pad(0x40, 1);
        assert_ne!(a, c.one_time_pad(0x80, 1), "address must vary the pad");
        assert_ne!(a, c.one_time_pad(0x40, 2), "counter must vary the pad");
    }

    #[test]
    fn sub_blocks_of_pad_differ() {
        let pad = cipher().one_time_pad(0, 0);
        assert_ne!(pad[0..16], pad[16..32]);
        assert_ne!(pad[16..32], pad[32..48]);
        assert_ne!(pad[32..48], pad[48..64]);
    }

    #[test]
    fn batched_pad_matches_the_reference_formulation() {
        let c = cipher();
        for (addr, ctr) in [
            (0u64, 0u64),
            (0x40, 1),
            (!0x3f, (1 << 56) - 1), // top-aligned address, widest legal counter
            (0x1234_5678_9abc_def0, 0x00aa_bb00_11ff_7701),
        ] {
            assert_eq!(
                c.one_time_pad(addr, ctr),
                c.one_time_pad_reference(addr, ctr),
                "addr={addr:#x} ctr={ctr:#x}"
            );
        }
    }

    #[test]
    fn in_place_variants_match_the_allocating_ones() {
        let c = cipher();
        let pt: CachelineBytes = core::array::from_fn(|i| (i as u8).wrapping_mul(3));
        let ct = c.encrypt_line(0x2040, 17, &pt);
        let mut buf = [0u8; CACHELINE_BYTES];
        c.encrypt_line_into(0x2040, 17, &pt, &mut buf);
        assert_eq!(buf, ct);
        c.decrypt_line_into(0x2040, 17, &ct, &mut buf);
        assert_eq!(buf, pt);
    }

    #[test]
    fn every_backend_produces_the_same_pad_and_ciphertext() {
        let key = [0x42u8; 16];
        let reference = CtrModeCipher::with_backend(key, crate::aes::AesBackend::Scalar);
        let pt: CachelineBytes = core::array::from_fn(|i| i as u8 ^ 0x5c);
        for backend in crate::aes::AesBackend::all_available() {
            let c = CtrModeCipher::with_backend(key, backend);
            assert_eq!(c.backend(), backend);
            assert_eq!(
                c.one_time_pad(0x40, 9),
                reference.one_time_pad(0x40, 9),
                "{backend} pad"
            );
            assert_eq!(
                c.encrypt_line(0x40, 9, &pt),
                reference.encrypt_line(0x40, 9, &pt),
                "{backend} ciphertext"
            );
        }
    }

    /// Satellite bugfix: the bulk APIs must be byte-identical to the
    /// per-line path for batch sizes off the register width (0, 1, 3,
    /// 5, 17) and for duplicate/unsorted entries — the remainder loop
    /// and the quad loop share one seed formulation, and this pins it.
    #[test]
    fn bulk_pads_match_per_line_for_every_remainder_shape() {
        let c = cipher();
        for n in [0usize, 1, 3, 4, 5, 16, 17] {
            let lines: Vec<(u64, u64)> = (0..n)
                .map(|i| ((i as u64) * 64, (i as u64).wrapping_mul(0x9e37) & ((1 << 56) - 1)))
                .collect();
            let pads = c.one_time_pads(&lines);
            assert_eq!(pads.len(), n);
            for (i, &(addr, ctr)) in lines.iter().enumerate() {
                assert_eq!(pads[i], c.one_time_pad(addr, ctr), "n={n} line {i}");
            }
        }
        // Duplicates and unsorted order: each pad depends only on its
        // own pair, wherever (and however often) it sits in the batch.
        let lines = [(0x200u64, 9u64), (0x40, 1), (0x200, 9), (0x100, 7), (0x40, 2)];
        let pads = c.one_time_pads(&lines);
        for (i, &(addr, ctr)) in lines.iter().enumerate() {
            assert_eq!(pads[i], c.one_time_pad(addr, ctr), "line {i}");
        }
        assert_eq!(pads[0], pads[2], "duplicate pairs yield duplicate pads");
    }

    #[test]
    fn bulk_encrypt_and_decrypt_match_the_per_line_forms() {
        let c = cipher();
        let lines: Vec<(u64, u64)> = (0..7).map(|i| (0x40 * i as u64, 3 + i as u64)).collect();
        let pts: Vec<CachelineBytes> = (0..7)
            .map(|i| core::array::from_fn(|j| (i * 64 + j) as u8))
            .collect();
        let mut cts = vec![[0u8; CACHELINE_BYTES]; 7];
        c.encrypt_lines_into(&lines, &pts, &mut cts);
        for i in 0..7 {
            let (addr, ctr) = lines[i];
            assert_eq!(cts[i], c.encrypt_line(addr, ctr, &pts[i]), "line {i}");
        }
        let mut round = vec![[0u8; CACHELINE_BYTES]; 7];
        c.decrypt_lines_into(&lines, &cts, &mut round);
        assert_eq!(round, pts);
    }

    #[test]
    fn bulk_pads_agree_across_every_available_backend() {
        let key = [0x42u8; 16];
        let lines: Vec<(u64, u64)> = (0..9).map(|i| (64 * i as u64, i as u64)).collect();
        let reference = CtrModeCipher::with_backend(key, crate::aes::AesBackend::Scalar);
        let expect = reference.one_time_pads(&lines);
        for backend in crate::aes::AesBackend::all_available() {
            let c = CtrModeCipher::with_backend(key, backend);
            assert_eq!(c.one_time_pads(&lines), expect, "{backend} bulk pads");
        }
    }

    #[test]
    #[should_panic(expected = "pad_lines")]
    fn mismatched_bulk_lengths_panic() {
        let c = cipher();
        let mut pads = [[0u8; CACHELINE_BYTES]; 2];
        c.pad_lines(&[(0, 0)], &mut pads);
    }

    #[test]
    fn counter_reuse_leaks_xor_of_plaintexts() {
        // This is the vulnerability the paper's footnote 1 warns about; the
        // test documents *why* counters must never repeat.
        let c = cipher();
        let p1: CachelineBytes = [0x11; 64];
        let p2: CachelineBytes = [0x2e; 64];
        let c1 = c.encrypt_line(0x100, 7, &p1);
        let c2 = c.encrypt_line(0x100, 7, &p2);
        for i in 0..64 {
            assert_eq!(c1[i] ^ c2[i], p1[i] ^ p2[i]);
        }
    }

    #[test]
    fn decrypt_with_wrong_counter_garbles() {
        let c = cipher();
        let pt = [0xaau8; 64];
        let ct = c.encrypt_line(0x40, 3, &pt);
        assert_ne!(c.decrypt_line(0x40, 4, &ct), pt);
    }
}
