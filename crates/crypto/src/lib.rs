//! Cryptographic substrate for the morphtree secure-memory reproduction.
//!
//! Secure memories (§II of the paper) need three primitives:
//!
//! 1. A block cipher to generate one-time pads for counter-mode encryption
//!    ([`aes::Aes128`], used by [`otp`]).
//! 2. A keyed MAC to authenticate data lines and counter lines
//!    ([`mac`], a from-scratch SipHash-2-4).
//! 3. Counter-mode encryption of 64-byte cachelines ([`otp::CtrModeCipher`]).
//!
//! Everything is implemented from scratch (no external crypto crates) because
//! the reproduction must be self-contained. AES-128 is validated against the
//! FIPS-197 vectors and SipHash-2-4 against the reference vectors from the
//! SipHash paper.
//!
//! AES dispatches through a runtime-selected backend ([`aes::AesBackend`]):
//! hardware AES-NI where the CPU supports it ([`aes_ni`]) plus an opt-in
//! 512-bit VAES path for cross-line batching ([`aes_vaes`]) — the crate's
//! two audited `unsafe` modules — with the portable T-table and scalar
//! paths kept as always-available references pinned bit-identical by
//! known-answer and property tests.
//!
//! # Example
//!
//! ```
//! use morphtree_crypto::otp::CtrModeCipher;
//!
//! let cipher = CtrModeCipher::new([7u8; 16]);
//! let plaintext = [0x5a_u8; 64];
//! let line_addr = 0x1234_5678;
//! let counter = 42;
//!
//! let ciphertext = cipher.encrypt_line(line_addr, counter, &plaintext);
//! assert_ne!(ciphertext, plaintext);
//! assert_eq!(cipher.decrypt_line(line_addr, counter, &ciphertext), plaintext);
//! ```

// `deny` rather than `forbid` so the two audited hardware-intrinsics modules
// below can opt back in; everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod aes_ni;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod aes_vaes;
pub mod mac;
pub mod otp;

pub use aes::{Aes128, AesBackend};
pub use mac::{MacKey, MacTag};
pub use otp::CtrModeCipher;

/// Size of a cacheline in bytes, the protection granularity of secure memory.
pub const CACHELINE_BYTES: usize = 64;

/// A 64-byte cacheline payload.
pub type CachelineBytes = [u8; CACHELINE_BYTES];
