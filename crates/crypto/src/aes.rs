//! AES-128 block cipher (encryption direction only), implemented from scratch
//! per FIPS-197.
//!
//! Counter-mode encryption (the paper's Fig 2) only ever runs the cipher in
//! the forward direction — the pad is XORed for both encryption and
//! decryption — so the inverse cipher is deliberately not implemented.
//!
//! Two equivalent paths are provided:
//!
//! - [`Aes128::encrypt_block`] — the default **T-table** path: SubBytes,
//!   ShiftRows and MixColumns of a full round collapse into four 256-entry
//!   u32 lookup tables (built at compile time from the S-box), so a round
//!   is 16 table loads and a handful of XORs. This is the classic software
//!   AES formulation (Rijndael reference code, OpenSSL's `aes_core.c`).
//! - [`Aes128::encrypt_block_scalar`] — the original table-free path: the
//!   S-box as a byte table, `MixColumns` via xtime arithmetic. Kept as the
//!   independently-auditable reference; a property test asserts both paths
//!   agree on random keys and blocks, and both are pinned to the FIPS-197
//!   vectors.
//!
//! Neither software path is constant-time — the simulator models *when*
//! pads are generated, and the functional secure memory only needs
//! correctness — but OTP generation sits on the hot path of every
//! functional-memory access, so the fast path matters for sweep
//! wall-clock.
//!
//! # Backends
//!
//! [`Aes128::new`] selects a [`AesBackend`] once, at key-expansion time:
//! the hardware [`AesBackend::AesNi`] path ([`crate::aes_ni`], runtime
//! `cpuid`-probed) when the CPU has it, else [`AesBackend::TTable`]. The
//! [`AesBackend::Scalar`] path is never auto-selected; it exists as the
//! independently-auditable specification the other two are property-
//! tested against. A process-wide override ([`force_backend`]) pins the
//! choice for A/B measurement (`morphtree perf --crypto-backend ...`)
//! and for keeping equivalence oracles honest on AES-NI hosts. All
//! backends are bit-identical by construction and by test; the override
//! can therefore never change observable behaviour, only speed.

use core::sync::atomic::{AtomicU8, Ordering};

/// An AES-128 implementation strategy, fixed per [`Aes128`] instance at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesBackend {
    /// Table-free FIPS-197 formulation (S-box bytes + xtime MixColumns).
    /// The semantic reference; never auto-selected.
    Scalar,
    /// Four 256-entry u32 tables fold SubBytes/ShiftRows/MixColumns into
    /// lookups. The portable fast path and non-x86 default.
    TTable,
    /// Hardware `AESENC` via [`crate::aes_ni`], with four-block software
    /// pipelining. Auto-selected when the CPU supports it.
    AesNi,
    /// 512-bit `VAESENC` via [`crate::aes_vaes`]: four blocks per
    /// register, sixteen per pipelined register set. Requires the full
    /// `vaes && avx512f && avx512vl` conjunction (see the module docs
    /// for why any single bit is not enough) and is opt-in
    /// (`--crypto-backend vaes`): its win over AES-NI is cross-line
    /// batch throughput, not per-line latency, so automatic selection
    /// keeps the AES-NI default.
    Vaes,
}

impl AesBackend {
    /// The CLI/JSON name of the backend.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AesBackend::Scalar => "scalar",
            AesBackend::TTable => "ttable",
            AesBackend::AesNi => "aesni",
            AesBackend::Vaes => "vaes",
        }
    }

    /// Parses a CLI/JSON backend name.
    #[must_use]
    pub fn parse(name: &str) -> Option<AesBackend> {
        match name {
            "scalar" => Some(AesBackend::Scalar),
            "ttable" => Some(AesBackend::TTable),
            "aesni" | "aes-ni" => Some(AesBackend::AesNi),
            "vaes" => Some(AesBackend::Vaes),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU.
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            AesBackend::Scalar | AesBackend::TTable => true,
            AesBackend::AesNi => aes_ni_available(),
            AesBackend::Vaes => vaes_available(),
        }
    }

    /// Every backend runnable on the current CPU, reference first.
    #[must_use]
    pub fn all_available() -> Vec<AesBackend> {
        [AesBackend::Scalar, AesBackend::TTable, AesBackend::AesNi, AesBackend::Vaes]
            .into_iter()
            .filter(|b| b.available())
            .collect()
    }
}

impl core::fmt::Display for AesBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(target_arch = "x86_64")]
fn aes_ni_available() -> bool {
    crate::aes_ni::available()
}

#[cfg(not(target_arch = "x86_64"))]
fn aes_ni_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn vaes_available() -> bool {
    crate::aes_vaes::available()
}

#[cfg(not(target_arch = "x86_64"))]
fn vaes_available() -> bool {
    false
}

/// Process-wide backend override: 0 = auto, else `AesBackend` + 1.
/// Relaxed ordering suffices — every value the cell can hold selects a
/// bit-identical permutation, so racing readers can never observe
/// different *behaviour*, only different speed.
static FORCED_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Forces every subsequent [`Aes128::new`] onto `backend` (process-wide),
/// or restores automatic selection with `None`.
///
/// Already-constructed ciphers keep their backend. Forcing an
/// unavailable backend is the caller's error: such ciphers panic on
/// first use (the CLI validates availability before forcing).
pub fn force_backend(backend: Option<AesBackend>) {
    let encoded = match backend {
        None => 0,
        Some(AesBackend::Scalar) => 1,
        Some(AesBackend::TTable) => 2,
        Some(AesBackend::AesNi) => 3,
        Some(AesBackend::Vaes) => 4,
    };
    FORCED_BACKEND.store(encoded, Ordering::Relaxed);
}

/// The currently forced backend, if any.
#[must_use]
pub fn forced_backend() -> Option<AesBackend> {
    match FORCED_BACKEND.load(Ordering::Relaxed) {
        1 => Some(AesBackend::Scalar),
        2 => Some(AesBackend::TTable),
        3 => Some(AesBackend::AesNi),
        4 => Some(AesBackend::Vaes),
        _ => None,
    }
}

/// What automatic selection resolves to on this CPU (ignoring any
/// [`force_backend`] override): AES-NI when available, else T-tables.
#[must_use]
pub fn detected_backend() -> AesBackend {
    if aes_ni_available() {
        AesBackend::AesNi
    } else {
        AesBackend::TTable
    }
}

/// The backend [`Aes128::new`] will pick right now (override, else
/// detection).
#[must_use]
pub fn selected_backend() -> AesBackend {
    forced_backend().unwrap_or_else(detected_backend)
}

/// Comma-separated list of the probed CPU features relevant to the
/// crypto hot path, for the BENCH.json record (e.g. `"aes,vaes,avx2"`;
/// `"none"` when nothing relevant is present).
#[must_use]
pub fn cpu_features() -> String {
    let mut features: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        // The three bits backing the `vaes` backend are probed
        // independently here — `cpuid` reports them independently and
        // real parts ship every combination — but backend availability
        // requires the conjunction of all three (see
        // [`crate::aes_vaes::available`]); any single bit is not enough
        // to run 512-bit VAES code.
        if std::arch::is_x86_feature_detected!("aes") {
            features.push("aes");
        }
        if std::arch::is_x86_feature_detected!("vaes") {
            features.push("vaes");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        if std::arch::is_x86_feature_detected!("avx512vl") {
            features.push("avx512vl");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            features.push("pclmulqdq");
        }
    }
    if features.is_empty() {
        "none".to_owned()
    } else {
        features.join(",")
    }
}

/// The AES S-box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Number of rounds for AES-128.
const ROUNDS: usize = 10;

/// Multiply a field element by `x` (i.e. `{02}`) in GF(2^8).
#[inline]
const fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// Builds the base encryption T-table: entry `i` is the MixColumns product
/// `S[i] · (02, 01, 01, 03)ᵀ` packed as a big-endian column, so one round's
/// SubBytes + MixColumns for one byte is a single lookup.
const fn build_te0() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s); // {02}·S
        let s3 = s2 ^ s; // {03}·S
        table[i] =
            ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    table
}

/// Byte-rotates every entry of `table` right by `bytes` positions — TE1–TE3
/// are rotations of TE0, one per MixColumns row.
const fn rotate_table(table: [u32; 256], bytes: u32) -> [u32; 256] {
    let mut out = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        out[i] = table[i].rotate_right(8 * bytes);
        i += 1;
    }
    out
}

/// T-tables, generated from the S-box at compile time (no opaque constants
/// to audit: `TE0[i]` is provably `S[i] · (02,01,01,03)ᵀ`).
const TE0: [u32; 256] = build_te0();
const TE1: [u32; 256] = rotate_table(TE0, 1);
const TE2: [u32; 256] = rotate_table(TE0, 2);
const TE3: [u32; 256] = rotate_table(TE0, 3);

/// AES-128 with a pre-expanded key schedule.
///
/// # Example
///
/// ```
/// use morphtree_crypto::Aes128;
///
/// // FIPS-197 Appendix B example.
/// let key = [
///     0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
/// ];
/// let plaintext = [
///     0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///     0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
/// ];
/// let cipher = Aes128::new(&key);
/// let ct = cipher.encrypt_block(&plaintext);
/// assert_eq!(ct[0], 0x39);
/// assert_eq!(ct[15], 0x32);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
    /// The same schedule as big-endian u32 column words, pre-packed for the
    /// T-table path.
    round_keys_w: [[u32; 4]; ROUNDS + 1],
    /// Implementation strategy, chosen once at construction (see
    /// [`selected_backend`]).
    backend: AesBackend,
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys, selecting the fastest
    /// available backend (subject to any [`force_backend`] override).
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, selected_backend())
    }

    /// Expands `key` with an explicit backend (perf A/B runs and the
    /// cross-backend equivalence tests).
    ///
    /// The key schedule is always the shared portable FIPS-197 expansion
    /// below — one audited source of truth; backends differ only in how
    /// they run the rounds.
    pub fn with_backend(key: &[u8; 16], backend: AesBackend) -> Self {
        let mut words = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, word) in words.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                // RotWord + SubWord + Rcon.
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        let mut round_keys_w = [[0u32; 4]; ROUNDS + 1];
        for (round, round_key) in round_keys.iter_mut().enumerate() {
            for j in 0..4 {
                round_key[4 * j..4 * j + 4].copy_from_slice(&words[4 * round + j]);
                round_keys_w[round][j] = u32::from_be_bytes(words[4 * round + j]);
            }
        }
        Self { round_keys, round_keys_w, backend }
    }

    /// The backend this cipher dispatches to.
    #[must_use]
    pub fn backend(&self) -> AesBackend {
        self.backend
    }

    /// Encrypts one 16-byte block on the selected backend.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        match self.backend {
            AesBackend::Scalar => self.encrypt_block_scalar(block),
            AesBackend::TTable => self.encrypt_block_ttable(block),
            #[cfg(target_arch = "x86_64")]
            AesBackend::AesNi => crate::aes_ni::encrypt_block(&self.round_keys, block),
            #[cfg(target_arch = "x86_64")]
            AesBackend::Vaes => {
                // VAES has no scalar form here; run the block through
                // one four-lane register and keep lane 0. Single-block
                // encryption is off the hot path for this backend.
                crate::aes_vaes::encrypt_blocks4(&self.round_keys, &[*block; 4])[0]
            }
            #[cfg(not(target_arch = "x86_64"))]
            AesBackend::AesNi | AesBackend::Vaes => self.encrypt_block_ttable(block),
        }
    }

    /// Encrypts four independent 16-byte blocks, pipelined on hardware.
    ///
    /// This is the counter-mode hot path: the four sub-block pads of a
    /// 64-byte cacheline have no data dependence, so the AES-NI backend
    /// interleaves their round chains to fill the AES unit's pipeline
    /// (see [`crate::aes_ni`]). Software backends encrypt sequentially —
    /// the output is bit-identical either way.
    pub fn encrypt_blocks4(&self, blocks: &[[u8; 16]; 4]) -> [[u8; 16]; 4] {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            AesBackend::AesNi => crate::aes_ni::encrypt_blocks4(&self.round_keys, blocks),
            #[cfg(target_arch = "x86_64")]
            AesBackend::Vaes => crate::aes_vaes::encrypt_blocks4(&self.round_keys, blocks),
            _ => [
                self.encrypt_block(&blocks[0]),
                self.encrypt_block(&blocks[1]),
                self.encrypt_block(&blocks[2]),
                self.encrypt_block(&blocks[3]),
            ],
        }
    }

    /// Encrypts sixteen independent 16-byte blocks — four cachelines'
    /// worth of counter-mode pads — in one call.
    ///
    /// This is the cross-line batching entry point: the VAES backend
    /// runs all sixteen blocks as four 512-bit register states sharing
    /// each broadcast round key ([`crate::aes_vaes::encrypt_blocks16`]),
    /// AES-NI falls back to four pipelined four-block calls, and the
    /// software backends encrypt sequentially — the output is
    /// bit-identical on every backend by construction and by test.
    pub fn encrypt_blocks16(&self, blocks: &[[u8; 16]; 16]) -> [[u8; 16]; 16] {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            AesBackend::Vaes => crate::aes_vaes::encrypt_blocks16(&self.round_keys, blocks),
            _ => {
                let mut out = [[0u8; 16]; 16];
                for (quad_out, quad_in) in
                    out.chunks_exact_mut(4).zip(blocks.chunks_exact(4))
                {
                    let quad: [[u8; 16]; 4] =
                        [quad_in[0], quad_in[1], quad_in[2], quad_in[3]];
                    quad_out.copy_from_slice(&self.encrypt_blocks4(&quad));
                }
                out
            }
        }
    }

    /// Encrypts one 16-byte block via the T-table path (portable fast
    /// path; non-x86 default).
    pub fn encrypt_block_ttable(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.round_keys_w;
        // Big-endian column words: bits 31..24 are row 0 of the column.
        let mut c0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0][0];
        let mut c1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[0][1];
        let mut c2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[0][2];
        let mut c3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[0][3];
        // ShiftRows is folded into the table indexing: output column j draws
        // row r from input column j + r (mod 4).
        for round in rk.iter().take(ROUNDS).skip(1) {
            let t0 = TE0[(c0 >> 24) as usize]
                ^ TE1[((c1 >> 16) & 0xff) as usize]
                ^ TE2[((c2 >> 8) & 0xff) as usize]
                ^ TE3[(c3 & 0xff) as usize]
                ^ round[0];
            let t1 = TE0[(c1 >> 24) as usize]
                ^ TE1[((c2 >> 16) & 0xff) as usize]
                ^ TE2[((c3 >> 8) & 0xff) as usize]
                ^ TE3[(c0 & 0xff) as usize]
                ^ round[1];
            let t2 = TE0[(c2 >> 24) as usize]
                ^ TE1[((c3 >> 16) & 0xff) as usize]
                ^ TE2[((c0 >> 8) & 0xff) as usize]
                ^ TE3[(c1 & 0xff) as usize]
                ^ round[2];
            let t3 = TE0[(c3 >> 24) as usize]
                ^ TE1[((c0 >> 16) & 0xff) as usize]
                ^ TE2[((c1 >> 8) & 0xff) as usize]
                ^ TE3[(c2 & 0xff) as usize]
                ^ round[3];
            c0 = t0;
            c1 = t1;
            c2 = t2;
            c3 = t3;
        }
        // Final round: SubBytes + ShiftRows only (no MixColumns).
        let last = &rk[ROUNDS];
        let o0 = final_round_word(c0, c1, c2, c3) ^ last[0];
        let o1 = final_round_word(c1, c2, c3, c0) ^ last[1];
        let o2 = final_round_word(c2, c3, c0, c1) ^ last[2];
        let o3 = final_round_word(c3, c0, c1, c2) ^ last[3];
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_be_bytes());
        out[4..8].copy_from_slice(&o1.to_be_bytes());
        out[8..12].copy_from_slice(&o2.to_be_bytes());
        out[12..16].copy_from_slice(&o3.to_be_bytes());
        out
    }

    /// Encrypts one 16-byte block via the original table-free scalar path
    /// (S-box + xtime MixColumns). Bit-identical to
    /// [`Aes128::encrypt_block`]; kept as the equivalence-test reference
    /// and perf baseline.
    pub fn encrypt_block_scalar(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }
}

/// SubBytes + ShiftRows for one output column of the final round: row `r`
/// of the output comes from input column `r` positions to the right.
#[inline]
fn final_round_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(d & 0xff) as usize] as u32)
}

#[inline]
fn add_round_key(state: &mut [u8; 16], round_key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(round_key) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for byte in state.iter_mut() {
        *byte = SBOX[*byte as usize];
    }
}

/// The state is column-major: byte `state[4*c + r]` is row `r`, column `c`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: rotate left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: rotate left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: rotate left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let all = col[0] ^ col[1] ^ col[2] ^ col[3];
        for r in 0..4 {
            state[4 * c + r] = col[r] ^ all ^ xtime(col[r] ^ col[(r + 1) % 4]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: full example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&pt), expect);
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&pt), expect);
    }

    /// Satellite: the FIPS-197 known-answer vectors must hold on *every*
    /// backend the host can run — scalar, T-table, and AES-NI when the
    /// CPU has it — through both the single-block and the pipelined
    /// four-block entry points.
    #[test]
    fn fips197_vectors_hold_on_every_available_backend() {
        let appendix_b = (
            [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09,
                0xcf, 0x4f, 0x3c,
            ],
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0,
                0x37, 0x07, 0x34,
            ],
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19,
                0x6a, 0x0b, 0x32,
            ],
        );
        let appendix_c1 = (
            core::array::from_fn(|i| i as u8),
            core::array::from_fn(|i| (i as u8) * 0x11),
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                0xb4, 0xc5, 0x5a,
            ],
        );
        for backend in AesBackend::all_available() {
            for (key, pt, expect) in [appendix_b, appendix_c1] {
                let cipher = Aes128::with_backend(&key, backend);
                assert_eq!(cipher.backend(), backend);
                assert_eq!(cipher.encrypt_block(&pt), expect, "{backend} single block");
                assert_eq!(
                    cipher.encrypt_blocks4(&[pt; 4]),
                    [expect; 4],
                    "{backend} pipelined blocks"
                );
                assert_eq!(
                    cipher.encrypt_blocks16(&[pt; 16]),
                    [expect; 16],
                    "{backend} 16-block batch"
                );
            }
        }
    }

    #[test]
    fn forced_backend_overrides_selection() {
        // Process-global override: assert and restore in one test so no
        // other test observes the forced state's *selection* (backends are
        // bit-identical, so even a racing construction behaves the same).
        force_backend(Some(AesBackend::Scalar));
        assert_eq!(forced_backend(), Some(AesBackend::Scalar));
        assert_eq!(selected_backend(), AesBackend::Scalar);
        assert_eq!(Aes128::new(&[0u8; 16]).backend(), AesBackend::Scalar);
        force_backend(None);
        assert_eq!(forced_backend(), None);
        assert_eq!(selected_backend(), detected_backend());
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in
            [AesBackend::Scalar, AesBackend::TTable, AesBackend::AesNi, AesBackend::Vaes]
        {
            assert_eq!(AesBackend::parse(backend.as_str()), Some(backend));
        }
        assert_eq!(AesBackend::parse("aes-ni"), Some(AesBackend::AesNi));
        assert_eq!(AesBackend::parse("hardware"), None);
    }

    /// Satellite bugfix: `vaes` availability is the conjunction of all
    /// three feature bits, never any single probe — a host with (say)
    /// VAES but no AVX-512, or AVX512F without VL, must report the
    /// backend unavailable so selection can reject it instead of
    /// faulting at the first zmm instruction.
    #[test]
    fn vaes_availability_requires_the_full_feature_conjunction() {
        #[cfg(target_arch = "x86_64")]
        {
            let conjunction = std::arch::is_x86_feature_detected!("vaes")
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl");
            assert_eq!(AesBackend::Vaes.available(), conjunction);
            // The recorded feature list stays per-bit (that is the point
            // of recording it), so availability must never be inferred
            // from any one listed bit.
            let features = cpu_features();
            if features.contains("vaes") && !conjunction {
                assert!(!AesBackend::Vaes.available());
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!AesBackend::Vaes.available());
        assert_eq!(
            AesBackend::all_available().contains(&AesBackend::Vaes),
            AesBackend::Vaes.available()
        );
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let pt = [0u8; 16];
        let a = Aes128::new(&[0u8; 16]).encrypt_block(&pt);
        let b = Aes128::new(&[1u8; 16]).encrypt_block(&pt);
        assert_ne!(a, b);
    }

    #[test]
    fn encryption_is_deterministic() {
        let cipher = Aes128::new(&[9u8; 16]);
        let pt = [0xabu8; 16];
        assert_eq!(cipher.encrypt_block(&pt), cipher.encrypt_block(&pt));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let cipher = Aes128::new(&[0x55u8; 16]);
        let s = format!("{cipher:?}");
        assert!(s.contains("Aes128"));
        assert!(!s.contains("55"));
    }

    /// The FIPS vectors pin the T-table path; the scalar reference must
    /// agree on them too (the proptest suite covers random inputs).
    #[test]
    fn scalar_path_matches_fips_vectors() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let cipher = Aes128::new(&key);
        assert_eq!(cipher.encrypt_block_scalar(&pt), cipher.encrypt_block(&pt));
    }

    #[test]
    fn t_tables_derive_from_the_sbox() {
        // Spot-check the compile-time tables against the defining formula.
        for i in [0usize, 1, 0x53, 0xca, 0xff] {
            let s = SBOX[i];
            let s2 = xtime(s);
            let s3 = s2 ^ s;
            let expect =
                ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
            assert_eq!(TE0[i], expect);
            assert_eq!(TE1[i], expect.rotate_right(8));
            assert_eq!(TE2[i], expect.rotate_right(16));
            assert_eq!(TE3[i], expect.rotate_right(24));
        }
    }

    #[test]
    fn single_bit_key_change_diffuses() {
        let pt = [0u8; 16];
        let mut key = [0u8; 16];
        let base = Aes128::new(&key).encrypt_block(&pt);
        key[15] ^= 1;
        let flipped = Aes128::new(&key).encrypt_block(&pt);
        let differing: u32 = base
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        // Expect avalanche: roughly half of the 128 bits flip.
        assert!(differing > 30, "only {differing} bits differ");
    }
}
