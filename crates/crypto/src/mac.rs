//! Keyed message-authentication codes for secure memory.
//!
//! The paper's designs store a 64-bit MAC per 64-byte line (and a 54–56-bit
//! truncated MAC when the code shares an ECC chip with a SEC code — §II-A3).
//! Commercial SGX uses a Carter–Wegman construction; any keyed PRF with the
//! same output size preserves the storage and traffic behaviour, so we use a
//! from-scratch SipHash-2-4, validated against the reference vectors from the
//! SipHash paper (Aumasson & Bernstein, 2012).
//!
//! [`MacKey::mac_line`] binds a MAC to the *(address, counter, payload)*
//! triple, which is exactly the binding integrity trees rely on: replaying an
//! old `{data, MAC}` pair fails because the live counter differs.

/// Output of a MAC computation: a 64-bit tag.
///
/// `MacTag::truncated` produces the 54-bit variant used when the tag is
/// co-located with a SEC code in the ECC chip (§II-A3, footnote 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacTag(pub u64);

impl MacTag {
    /// Returns the tag truncated to `bits` bits (e.g. 54 for the
    /// SEC+MAC-in-ECC-chip layout).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    #[must_use]
    pub fn truncated(self, bits: u32) -> MacTag {
        assert!((1..=64).contains(&bits), "tag width must be in 1..=64");
        if bits == 64 {
            self
        } else {
            MacTag(self.0 & ((1u64 << bits) - 1))
        }
    }
}

impl core::fmt::LowerHex for MacTag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A 128-bit MAC key.
///
/// # Example
///
/// ```
/// use morphtree_crypto::MacKey;
///
/// let key = MacKey::new([3u8; 16]);
/// let data = [0u8; 64];
/// let tag = key.mac_line(0x40, 7, &data);
/// // Same inputs, same tag; changing the counter changes the tag.
/// assert_eq!(tag, key.mac_line(0x40, 7, &data));
/// assert_ne!(tag, key.mac_line(0x40, 8, &data));
/// ```
#[derive(Clone)]
pub struct MacKey {
    k0: u64,
    k1: u64,
}

impl core::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MacKey").finish_non_exhaustive()
    }
}

impl MacKey {
    /// Creates a key from 16 bytes (little-endian word order, as in the
    /// SipHash reference implementation).
    pub fn new(key: [u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        Self { k0, k1 }
    }

    /// SipHash-2-4 over an arbitrary message.
    pub fn mac_bytes(&self, message: &[u8]) -> MacTag {
        MacTag(siphash24(self.k0, self.k1, message))
    }

    /// MAC of a 64-byte line bound to its address and encryption counter.
    ///
    /// This is the per-line MAC of §II-A3: `MAC = H_K(addr ‖ counter ‖ data)`.
    ///
    /// The message is always exactly 80 bytes (ten SipHash words), so this
    /// path absorbs the words directly instead of materializing the buffer
    /// and re-chunking it; [`MacKey::mac_bytes`] over the concatenation is
    /// the pinned reference.
    pub fn mac_line(&self, line_addr: u64, counter: u64, data: &[u8; 64]) -> MacTag {
        let words = line_words(line_addr, counter, data);
        let mut v = sip_init(self.k0, self.k1);
        for &word in &words {
            sip_absorb(&mut v, word);
        }
        sip_absorb(&mut v, LINE_LEN_BLOCK);
        MacTag(sip_finalize(v))
    }

    /// MACs a batch of lines — a whole fetched counter chain in one pass.
    ///
    /// Output is bit-identical to calling [`MacKey::mac_line`] per entry
    /// (pinned by test); the batch form exists for throughput: lines are
    /// processed in pairs with the two SipHash states interleaved round by
    /// round, so the serial add-rotate-xor dependency chain of one state
    /// overlaps the other's and fills the ALU ports a single chain leaves
    /// idle.
    pub fn mac_lines(&self, inputs: &[(u64, u64, &[u8; 64])]) -> Vec<MacTag> {
        let mut out = vec![MacTag(0); inputs.len()];
        self.mac_lines_into(inputs, &mut out);
        out
    }

    /// [`MacKey::mac_lines`] writing into a caller-provided slice, for hot
    /// paths that reuse one tag buffer across batches.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != inputs.len()`.
    pub fn mac_lines_into(&self, inputs: &[(u64, u64, &[u8; 64])], out: &mut [MacTag]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "tag buffer must match the batch length"
        );
        let mut pairs = inputs.chunks_exact(2);
        let mut tags = out.chunks_exact_mut(2);
        for (pair, tag_pair) in (&mut pairs).zip(&mut tags) {
            let wa = line_words(pair[0].0, pair[0].1, pair[0].2);
            let wb = line_words(pair[1].0, pair[1].1, pair[1].2);
            let mut va = sip_init(self.k0, self.k1);
            let mut vb = sip_init(self.k0, self.k1);
            for (&a, &b) in wa.iter().zip(&wb) {
                sip_absorb2(&mut va, a, &mut vb, b);
            }
            sip_absorb2(&mut va, LINE_LEN_BLOCK, &mut vb, LINE_LEN_BLOCK);
            tag_pair[0] = MacTag(sip_finalize(va));
            tag_pair[1] = MacTag(sip_finalize(vb));
        }
        if let ([(addr, ctr, data)], [tag]) = (pairs.remainder(), tags.into_remainder()) {
            *tag = self.mac_line(*addr, *ctr, data);
        }
    }
}

/// Length block of the fixed 80-byte `mac_line` message:
/// `(len & 0xff) << 56` with no remainder bytes.
const LINE_LEN_BLOCK: u64 = 80 << 56;

/// The ten message words of `addr ‖ counter ‖ data` in little-endian order.
fn line_words(line_addr: u64, counter: u64, data: &[u8; 64]) -> [u64; 10] {
    let mut words = [0u64; 10];
    words[0] = line_addr;
    words[1] = counter;
    for (word, chunk) in words[2..].iter_mut().zip(data.chunks_exact(8)) {
        *word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
    }
    words
}

#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// The SipHash initial state for a key.
#[inline]
fn sip_init(k0: u64, k1: u64) -> [u64; 4] {
    [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ]
}

/// Absorbs one message word (two compression rounds).
#[inline]
fn sip_absorb(v: &mut [u64; 4], m: u64) {
    v[3] ^= m;
    sip_round(v);
    sip_round(v);
    v[0] ^= m;
}

/// Absorbs one word into each of two independent states with the round
/// bodies interleaved, so the two serial ARX chains overlap in the
/// pipeline. Equivalent to two [`sip_absorb`] calls.
#[inline]
fn sip_absorb2(va: &mut [u64; 4], ma: u64, vb: &mut [u64; 4], mb: u64) {
    va[3] ^= ma;
    vb[3] ^= mb;
    sip_round(va);
    sip_round(vb);
    sip_round(va);
    sip_round(vb);
    va[0] ^= ma;
    vb[0] ^= mb;
}

/// Finalization: 4 rounds over the xored state.
#[inline]
fn sip_finalize(mut v: [u64; 4]) -> u64 {
    v[2] ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// SipHash-2-4 (2 compression rounds, 4 finalization rounds).
fn siphash24(k0: u64, k1: u64, message: &[u8]) -> u64 {
    let mut v = sip_init(k0, k1);

    let mut chunks = message.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        sip_absorb(&mut v, m);
    }

    // Final block: remaining bytes plus the message length in the top byte.
    let remainder = chunks.remainder();
    let mut last = (message.len() as u64 & 0xff) << 56;
    for (i, &byte) in remainder.iter().enumerate() {
        last |= (byte as u64) << (8 * i);
    }
    sip_absorb(&mut v, last);

    sip_finalize(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper: key = 00..0f, message =
    /// 00..len-1, expected tags for len 0..64 (we spot-check several).
    #[test]
    fn siphash_reference_vectors() {
        const VECTORS: [(usize, u64); 9] = [
            (0, 0x726f_db47_dd0e_0e31),
            (1, 0x74f8_39c5_93dc_67fd),
            (2, 0x0d6c_8009_d9a9_4f5a),
            (3, 0x8567_6696_d7fb_7e2d),
            (4, 0xcf27_94e0_2771_87b7),
            (5, 0x1876_5564_cd99_a68d),
            (6, 0xcbc9_466e_58fe_e3ce),
            (7, 0xab02_00f5_8b01_d137),
            (8, 0x93f5_f579_9a93_2462),
        ];
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mac = MacKey::new(key);
        for (len, expect) in VECTORS {
            let message: Vec<u8> = (0..len as u8).collect();
            assert_eq!(mac.mac_bytes(&message).0, expect, "length {len}");
        }
    }

    #[test]
    fn mac_binds_address_counter_and_data() {
        let key = MacKey::new([1u8; 16]);
        let data = [0x77u8; 64];
        let base = key.mac_line(0x1000, 5, &data);
        assert_ne!(base, key.mac_line(0x1040, 5, &data), "address must matter");
        assert_ne!(base, key.mac_line(0x1000, 6, &data), "counter must matter");
        let mut tampered = data;
        tampered[63] ^= 1;
        assert_ne!(base, key.mac_line(0x1000, 5, &tampered), "data must matter");
    }

    #[test]
    fn mac_line_fast_path_matches_the_general_hash() {
        let key = MacKey::new(core::array::from_fn(|i| (31 * i) as u8));
        for (addr, ctr) in [(0u64, 0u64), (0x40, 1), (u64::MAX, (1 << 56) - 1)] {
            let data: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(7) ^ addr as u8);
            let mut message = [0u8; 80];
            message[0..8].copy_from_slice(&addr.to_le_bytes());
            message[8..16].copy_from_slice(&ctr.to_le_bytes());
            message[16..80].copy_from_slice(&data);
            assert_eq!(
                key.mac_line(addr, ctr, &data),
                key.mac_bytes(&message),
                "addr={addr:#x} ctr={ctr:#x}"
            );
        }
    }

    #[test]
    fn batched_macs_match_per_line_macs() {
        let key = MacKey::new([0x5au8; 16]);
        let lines: Vec<(u64, u64, [u8; 64])> = (0..7)
            .map(|i| {
                (
                    0x40 * i,
                    1000 + i,
                    core::array::from_fn(|j| (i as u8).wrapping_mul(13).wrapping_add(j as u8)),
                )
            })
            .collect();
        // Odd and even batch lengths exercise both the paired loop and the
        // single-line remainder.
        for len in [0usize, 1, 2, 3, 6, 7] {
            let inputs: Vec<(u64, u64, &[u8; 64])> =
                lines[..len].iter().map(|(a, c, d)| (*a, *c, d)).collect();
            let batch = key.mac_lines(&inputs);
            let individual: Vec<MacTag> = lines[..len]
                .iter()
                .map(|(a, c, d)| key.mac_line(*a, *c, d))
                .collect();
            assert_eq!(batch, individual, "batch length {len}");
        }
    }

    #[test]
    #[should_panic(expected = "tag buffer")]
    fn mac_lines_into_rejects_mismatched_buffer() {
        let key = MacKey::new([0u8; 16]);
        let data = [0u8; 64];
        let mut out = [MacTag(0); 1];
        key.mac_lines_into(&[(0, 0, &data), (0x40, 1, &data)], &mut out);
    }

    #[test]
    fn different_keys_disagree() {
        let data = [0u8; 64];
        let a = MacKey::new([0u8; 16]).mac_line(0, 0, &data);
        let b = MacKey::new([1u8; 16]).mac_line(0, 0, &data);
        assert_ne!(a, b);
    }

    #[test]
    fn truncation_masks_high_bits() {
        let tag = MacTag(u64::MAX);
        assert_eq!(tag.truncated(54).0, (1u64 << 54) - 1);
        assert_eq!(tag.truncated(64), tag);
        assert_eq!(tag.truncated(1).0, 1);
    }

    #[test]
    #[should_panic(expected = "tag width")]
    fn truncation_rejects_zero_width() {
        let _ = MacTag(0).truncated(0);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = MacKey::new([0xaau8; 16]);
        let s = format!("{key:?}");
        assert!(!s.contains("aa") && !s.contains("170"));
    }
}
