//! Smoke tests for the figure generators: the analytic ones run exactly
//! and instantly; the simulation-backed ones are exercised at a tiny
//! operating point to prove they produce well-formed reports end-to-end.

use morphtree_experiments::figures::{extensions, fig06, fig10, fig17, table3};
use morphtree_experiments::{Lab, Setup};

fn lab() -> Lab {
    let mut lab = Lab::new(Setup {
        scale: 256,
        warmup_instructions: 20_000,
        measure_instructions: 20_000,
        seed: 7,
    });
    lab.verbose = false;
    lab
}

#[test]
fn table3_reports_the_paper_numbers() {
    let out = table3::run(&mut lab());
    assert!(out.contains("Commercial-SGX"));
    assert!(out.contains("292.6 MB"));
    assert!(out.contains("2.0 GB"));
    assert!(out.contains("128.0 MB"));
}

#[test]
fn fig17_reports_heights_6_4_3() {
    let out = fig17::run(&mut lab());
    assert!(out.contains("VAULT — 6 tree levels"));
    assert!(out.contains("SC-64 — 4 tree levels"));
    assert!(out.contains("MorphCtr-128 — 3 tree levels"));
}

#[test]
fn fig06_shows_the_8x_gap() {
    let out = fig06::run(&mut lab());
    // SC-64 worst case 64 writes; fully-used 4096.
    assert!(out.contains("64"));
    assert!(out.contains("4096"));
}

#[test]
fn fig10_shows_the_zcc_crossover() {
    let out = fig10::run(&mut lab());
    // Sparse usage: 16-bit counters (65536 writes each); dense usage: the
    // 8x penalty vs SC-64 appears around quarter usage.
    assert!(out.contains("65536"), "16-bit ZCC counters:\n{out}");
    assert!(out.contains("8.00x"), "the 8x advantage near 25% usage:\n{out}");
}

#[test]
fn scaling_extension_is_scale_invariant() {
    let out = extensions::scaling(&mut lab());
    let fours = out.matches("4.0x").count();
    assert!(fours >= 5, "every memory size shows the 4x ratio:\n{out}");
}

#[test]
fn simulation_backed_figure_runs_at_tiny_scale() {
    // End-to-end: a Lab at scale 256 drives real simulations quickly.
    let mut lab = lab();
    let result = lab.result("libquantum", Some(morphtree_core::tree::TreeConfig::sc64()));
    assert!(result.ipc() > 0.0);
    let base = result.cycles;
    // Memoization: second call returns the identical result.
    assert_eq!(
        lab.result("libquantum", Some(morphtree_core::tree::TreeConfig::sc64())).cycles,
        base
    );
}
