//! Determinism regression suite for the parallel sweep engine.
//!
//! The guarantee under test: a sweep prefetched across worker threads
//! produces *byte-identical* results to the same sweep run serially, and
//! the same `Setup::seed` reproduces identical `EngineStats` across
//! independent labs. Both hold by construction — every run rebuilds its
//! workload from the setup seed and executes through the same
//! `execute_sim`/`execute_engine` path — and this suite keeps it that way.

use morphtree_core::tree::TreeConfig;
use morphtree_experiments::figures;
use morphtree_experiments::{Lab, Setup, Sweep};

/// A heavily scaled-down operating point so the suite stays fast while
/// still exercising allocation sparsity, cache pressure, and overflows.
fn tiny_setup() -> Setup {
    Setup { scale: 256, warmup_instructions: 20_000, measure_instructions: 20_000, seed: 7 }
}

/// A representative run-set: a real figure's plan (ext_sgx: a 7-workload
/// subset under two tree configs) plus a non-secure baseline and two
/// engine studies, so every executor job kind is covered.
fn representative_sweep(setup: &Setup) -> Sweep {
    let mut sweep = Sweep::new();
    let sgx = figures::catalog()
        .into_iter()
        .find(|f| f.name == "ext_sgx")
        .expect("ext_sgx in catalog");
    (sgx.plan)(setup, &mut sweep);
    sweep.sim(setup, "mcf", None);
    sweep.engine("mcf", TreeConfig::morphtree(), 20_000);
    sweep.engine("libquantum", TreeConfig::sc64(), 20_000);
    sweep
}

fn prefetched_lab(threads: usize) -> Lab {
    let setup = tiny_setup();
    let sweep = representative_sweep(&setup);
    assert!(!sweep.is_empty());
    let mut lab = Lab::new(setup);
    lab.verbose = false;
    lab.set_threads(threads);
    lab.prefetch(&sweep);
    lab
}

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let serial = prefetched_lab(1);
    let parallel = prefetched_lab(4);

    assert_eq!(serial.sim_results().len(), parallel.sim_results().len());
    assert!(!serial.sim_results().is_empty());
    for (key, result) in serial.sim_results() {
        let other = parallel
            .sim_results()
            .get(key)
            .unwrap_or_else(|| panic!("parallel sweep missing {key:?}"));
        // SimResult is PartialEq over every field, f64 cycle counts and
        // energy included: equality here means byte-identical results.
        assert_eq!(other, result, "diverged on {key:?}");
    }

    assert_eq!(serial.engine_results().len(), parallel.engine_results().len());
    assert!(!serial.engine_results().is_empty());
    for (key, stats) in serial.engine_results() {
        let other = parallel
            .engine_results()
            .get(key)
            .unwrap_or_else(|| panic!("parallel sweep missing {key:?}"));
        assert_eq!(other, stats, "diverged on {key:?}");
    }
}

#[test]
fn same_seed_reproduces_identical_engine_stats() {
    let mut first = Lab::new(tiny_setup());
    let mut second = Lab::new(tiny_setup());
    first.verbose = false;
    second.verbose = false;

    let a = first.engine_stats("omnetpp", TreeConfig::morphtree(), 20_000).clone();
    let b = second.engine_stats("omnetpp", TreeConfig::morphtree(), 20_000).clone();
    assert_eq!(a, b, "same seed must reproduce identical EngineStats");

    // Teeth: a different seed must actually change the access stream.
    let mut reseeded = Lab::new(Setup { seed: 8, ..tiny_setup() });
    reseeded.verbose = false;
    let c = reseeded.engine_stats("omnetpp", TreeConfig::morphtree(), 20_000).clone();
    assert_ne!(a, c, "seed is not reaching the workload RNG");
}

#[test]
fn prefetched_results_match_the_serial_api_path() {
    // The on-demand serial path (`Lab::result`) and the prefetched
    // parallel path must agree run-for-run…
    let mut on_demand = Lab::new(tiny_setup());
    on_demand.verbose = false;
    let serial = on_demand.result("gcc", Some(TreeConfig::sc64())).clone();

    let setup = tiny_setup();
    let mut sweep = Sweep::new();
    sweep.sim(&setup, "gcc", Some(TreeConfig::sc64()));
    let mut prefetched = Lab::new(setup);
    prefetched.verbose = false;
    prefetched.set_threads(4);
    prefetched.prefetch(&sweep);

    let runs_before = prefetched.sim_results().len();
    assert_eq!(runs_before, 1);
    let fetched = prefetched.result("gcc", Some(TreeConfig::sc64())).clone();
    assert_eq!(fetched, serial);
    // …and reading it back must be served from the memo, not re-run.
    assert_eq!(prefetched.sim_results().len(), runs_before);
}
