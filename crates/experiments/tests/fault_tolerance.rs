//! End-to-end checks of the sweep engine's panic isolation: an injected
//! per-run panic is retried once, a persistent fault is recorded as a
//! [`RunFailure`] while the rest of the sweep completes, and a typed
//! error (unknown workload) fails fast without a retry.
//!
//! The fault-injection arm/disarm state is process-global, so every test
//! serializes on a file-local mutex and disarms before returning.

use std::sync::Mutex;

use morphtree_core::tree::TreeConfig;
use morphtree_experiments::runner::fault_injection;
use morphtree_experiments::{Lab, Setup, Sweep};

/// Serializes the tests in this file: they share the global
/// fault-injection arming state.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn tiny_setup() -> Setup {
    Setup { scale: 256, warmup_instructions: 20_000, measure_instructions: 20_000, seed: 7 }
}

/// Three runs: two secure sims and one engine study, so the surviving
/// runs span both executor kinds.
fn small_sweep(setup: &Setup) -> Sweep {
    let mut sweep = Sweep::new();
    sweep.sim(setup, "libquantum", Some(TreeConfig::sc64()));
    sweep.sim(setup, "mcf", Some(TreeConfig::sc64()));
    sweep.engine("mcf", TreeConfig::morphtree(), 20_000);
    sweep
}

fn prefetch_armed(pattern: &str, times: u32) -> Lab {
    let setup = tiny_setup();
    let sweep = small_sweep(&setup);
    let mut lab = Lab::new(setup);
    lab.verbose = false;
    lab.set_threads(2);
    fault_injection::arm(pattern, times);
    lab.prefetch(&sweep);
    fault_injection::disarm();
    lab
}

#[test]
fn a_run_that_panics_once_is_retried_and_recovers() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let lab = prefetch_armed("libquantum", 1);

    assert!(lab.failures().is_empty(), "retry should have absorbed the fault: {:?}", lab.failures());
    assert_eq!(lab.recovered(), ["libquantum / SC-64"]);
    // The memo is complete: both sims and the engine study landed.
    assert_eq!(lab.sim_results().len(), 2);
    assert_eq!(lab.engine_results().len(), 1);
}

#[test]
fn a_persistent_fault_is_recorded_while_the_rest_of_the_sweep_completes() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let lab = prefetch_armed("libquantum", 2);

    assert_eq!(lab.failures().len(), 1, "{:?}", lab.failures());
    let failure = &lab.failures()[0];
    assert_eq!(failure.label, "libquantum / SC-64");
    assert_eq!(failure.attempts, 2, "panics get one retry");
    assert!(failure.error.contains("injected fault"), "{failure}");
    assert!(lab.recovered().is_empty());
    // The other two runs still completed.
    assert_eq!(lab.sim_results().len(), 1);
    assert_eq!(lab.engine_results().len(), 1);
}

#[test]
fn a_typed_error_fails_fast_without_a_retry() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let setup = tiny_setup();
    let mut sweep = Sweep::new();
    sweep.sim(&setup, "ghost", Some(TreeConfig::sc64()));
    sweep.sim(&setup, "mcf", Some(TreeConfig::sc64()));
    let mut lab = Lab::new(setup);
    lab.verbose = false;
    lab.prefetch(&sweep);

    assert_eq!(lab.failures().len(), 1, "{:?}", lab.failures());
    let failure = &lab.failures()[0];
    assert_eq!(failure.label, "ghost / SC-64");
    assert_eq!(failure.attempts, 1, "typed errors are deterministic; no retry");
    assert!(failure.error.contains("unknown workload `ghost`"), "{failure}");
    assert!(failure.error.contains("mcf"), "error lists the known names: {failure}");
    // The healthy run still completed.
    assert_eq!(lab.sim_results().len(), 1);
}
