//! Shared experiment infrastructure: the scaled operating point, workload
//! construction by name, and a memoizing run cache so `runall` never
//! simulates the same configuration twice.

use std::collections::HashMap;

use morphtree_core::metadata::{EngineStats, MacMode, MetadataEngine};
use morphtree_core::tree::TreeConfig;
use morphtree_sim::system::{simulate, simulate_nonsecure, SimConfig, SimResult};
use morphtree_trace::catalog::{Benchmark, MIXES};
use morphtree_trace::workload::SystemWorkload;

/// The scaled operating point (see the crate docs for the rationale).
#[derive(Debug, Clone)]
pub struct Setup {
    /// Uniform scale factor: memory, metadata cache and footprints are all
    /// divided by this.
    pub scale: u64,
    /// Warm-up instructions per core.
    pub warmup_instructions: u64,
    /// Measured instructions per core.
    pub measure_instructions: u64,
    /// Deterministic base seed.
    pub seed: u64,
}

impl Default for Setup {
    fn default() -> Self {
        Setup {
            scale: 16,
            warmup_instructions: 4_000_000,
            measure_instructions: 2_000_000,
            seed: 42,
        }
    }
}

impl Setup {
    /// Physical memory at this scale (paper: 16 GB).
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        (16 << 30) / self.scale
    }

    /// Metadata cache at this scale (paper: 128 KB).
    #[must_use]
    pub fn metadata_cache_bytes(&self) -> usize {
        ((128 * 1024) / self.scale).max(4096) as usize
    }

    /// Scales another cache size consistently (for the Fig 19 sweep).
    #[must_use]
    pub fn scaled_cache(&self, paper_bytes: u64) -> usize {
        (paper_bytes / self.scale).max(4096) as usize
    }

    /// The simulator configuration at this scale.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            memory_bytes: self.memory_bytes(),
            metadata_cache_bytes: self.metadata_cache_bytes(),
            warmup_instructions: self.warmup_instructions,
            measure_instructions: self.measure_instructions,
            ..SimConfig::default()
        }
    }

    /// Builds the workload named `name` (a Table II benchmark or
    /// `mix1`..`mix6`).
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    #[must_use]
    pub fn workload(&self, name: &str) -> SystemWorkload {
        if let Some(mix) = MIXES.iter().find(|m| m.name == name) {
            // Mixes use the same footprint divisor as rate mode.
            return SystemWorkload::mix(mix, self.memory_bytes(), self.seed);
        }
        let bench = Benchmark::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload {name}"));
        SystemWorkload::rate_scaled(bench, 4, self.memory_bytes(), self.seed, self.scale)
    }

    /// The 22 rate-mode workloads (Table II order).
    #[must_use]
    pub fn rate_workloads() -> Vec<&'static str> {
        Benchmark::all().iter().map(|b| b.name).collect()
    }

    /// All 28 workloads of Fig 15/16: 16 SPEC, 6 mixes, 6 GAP — in the
    /// paper's figure order (SPEC, MIX, GAP).
    #[must_use]
    pub fn all_workloads() -> Vec<&'static str> {
        let mut names: Vec<&'static str> =
            Benchmark::spec().iter().map(|b| b.name).collect();
        names.extend(MIXES.iter().map(|m| m.name));
        names.extend(Benchmark::gap().iter().map(|b| b.name));
        names
    }
}

/// Key identifying one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RunKey {
    workload: String,
    config: String,
    cache_bytes: usize,
    mac: MacMode,
}

/// Key identifying one engine-only (timing-free) run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EngineKey {
    workload: String,
    config: String,
    instructions: u64,
}

/// A memoizing experiment driver.
pub struct Lab {
    setup: Setup,
    runs: HashMap<RunKey, SimResult>,
    engine_runs: HashMap<EngineKey, EngineStats>,
    /// Progress lines are printed when true (default).
    pub verbose: bool,
}

impl Lab {
    /// Creates a lab at the given operating point.
    #[must_use]
    pub fn new(setup: Setup) -> Self {
        Lab { setup, runs: HashMap::new(), engine_runs: HashMap::new(), verbose: true }
    }

    /// The operating point.
    #[must_use]
    pub fn setup(&self) -> &Setup {
        &self.setup
    }

    /// Full-system result for `workload` under `tree` (None = non-secure),
    /// at the default cache size and inline MACs. Memoized.
    pub fn result(&mut self, workload: &str, tree: Option<TreeConfig>) -> &SimResult {
        let cache = self.setup.metadata_cache_bytes();
        self.result_with(workload, tree, cache, MacMode::Inline)
    }

    /// Full-system result with explicit cache size and MAC mode. Memoized.
    pub fn result_with(
        &mut self,
        workload: &str,
        tree: Option<TreeConfig>,
        cache_bytes: usize,
        mac: MacMode,
    ) -> &SimResult {
        let config_name = tree
            .as_ref()
            .map_or_else(|| "Non-Secure".to_owned(), |t| t.name().to_owned());
        let key = RunKey {
            workload: workload.to_owned(),
            config: config_name,
            cache_bytes,
            mac,
        };
        if !self.runs.contains_key(&key) {
            if self.verbose {
                eprintln!(
                    "[run] {} / {} (cache {} KB, {:?})",
                    key.workload,
                    key.config,
                    cache_bytes / 1024,
                    mac
                );
            }
            let mut cfg = self.setup.sim_config();
            cfg.metadata_cache_bytes = cache_bytes;
            cfg.mac_mode = mac;
            let mut w = self.setup.workload(workload);
            let result = match tree {
                Some(t) => simulate(&mut w, t, &cfg),
                None => simulate_nonsecure(&mut w, &cfg),
            };
            self.runs.insert(key.clone(), result);
        }
        &self.runs[&key]
    }

    /// Timing-free engine statistics for `workload` under `tree`, measured
    /// over `instructions` per core after an equal warm-up — used by the
    /// counter-behaviour figures (Fig 7/11/14), which need longer windows
    /// than full-timing runs afford. Memoized.
    pub fn engine_stats(
        &mut self,
        workload: &str,
        tree: TreeConfig,
        instructions: u64,
    ) -> &EngineStats {
        let key = EngineKey {
            workload: workload.to_owned(),
            config: tree.name().to_owned(),
            instructions,
        };
        if !self.engine_runs.contains_key(&key) {
            if self.verbose {
                eprintln!("[engine] {} / {}", key.workload, key.config);
            }
            let mut workload = self.setup.workload(&key.workload);
            let mut engine = MetadataEngine::new(
                tree,
                self.setup.memory_bytes(),
                self.setup.metadata_cache_bytes(),
                MacMode::Inline,
            );
            let mut accesses = Vec::with_capacity(512);
            let cores = workload.num_cores();
            // Warm-up then measure, round-robin across cores.
            for phase in 0..2u8 {
                if phase == 1 {
                    engine.reset_stats();
                }
                let mut instrs = vec![0u64; cores];
                while instrs.iter().any(|&i| i < instructions) {
                    for core in 0..cores {
                        if instrs[core] >= instructions {
                            continue;
                        }
                        let rec = workload.next_record(core);
                        *instrs.get_mut(core).expect("core index") += u64::from(rec.gap) + 1;
                        accesses.clear();
                        if rec.is_write {
                            engine.write(rec.line, &mut accesses);
                        } else {
                            engine.read(rec.line, &mut accesses);
                        }
                    }
                }
            }
            self.engine_runs.insert(key.clone(), engine.stats().clone());
        }
        &self.engine_runs[&key]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_setup() -> Setup {
        Setup {
            scale: 64,
            warmup_instructions: 50_000,
            measure_instructions: 50_000,
            seed: 1,
        }
    }

    #[test]
    fn setup_scales_consistently() {
        let s = Setup::default();
        assert_eq!(s.memory_bytes(), 1 << 30);
        assert_eq!(s.metadata_cache_bytes(), 8 * 1024);
        assert_eq!(s.scaled_cache(256 * 1024), 16 * 1024);
        // The floor.
        assert_eq!(Setup { scale: 1024, ..s }.metadata_cache_bytes(), 4096);
    }

    #[test]
    fn workload_lists_cover_the_paper() {
        assert_eq!(Setup::rate_workloads().len(), 22);
        let all = Setup::all_workloads();
        assert_eq!(all.len(), 28);
        assert!(all.contains(&"mix3"));
        assert_eq!(all[16], "mix1", "mixes sit between SPEC and GAP");
    }

    #[test]
    fn lab_memoizes_runs() {
        let mut lab = Lab::new(quick_setup());
        lab.verbose = false;
        let a = lab.result("libquantum", Some(TreeConfig::sc64())).cycles;
        let before = lab.runs.len();
        let b = lab.result("libquantum", Some(TreeConfig::sc64())).cycles;
        assert_eq!(a, b);
        assert_eq!(lab.runs.len(), before);
    }

    #[test]
    fn engine_stats_accumulate_data_accesses() {
        let mut lab = Lab::new(quick_setup());
        lab.verbose = false;
        let stats = lab.engine_stats("lbm", TreeConfig::morphtree(), 50_000);
        assert!(stats.data_accesses() > 0);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = quick_setup().workload("not-a-benchmark");
    }
}
