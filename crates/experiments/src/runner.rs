//! Shared experiment infrastructure: the scaled operating point, workload
//! construction by name, a memoizing run cache so `runall` never simulates
//! the same configuration twice — and a parallel sweep engine that fans
//! independent runs out across worker threads.
//!
//! # Parallel sweeps
//!
//! Figures declare the full set of runs they need up front by implementing
//! a `plan` hook that fills a [`Sweep`]; [`Lab::prefetch`] then executes
//! every not-yet-memoized run on a work queue over
//! `std::thread::available_parallelism()` scoped threads. Results land in
//! the same memo the serial [`Lab::result`] path uses, so figure `run`
//! functions are unchanged: they read their runs back out of the cache.
//!
//! # Determinism
//!
//! Parallel execution provably cannot change any result: every run is
//! keyed by a [`RunKey`]/[`EngineKey`], rebuilds its own
//! [`SystemWorkload`] from the [`Setup`] seed (per-core RNG streams are
//! derived from the seed alone), and shares no mutable state with other
//! runs. Serial and parallel paths call the same [`execute_sim`] /
//! [`execute_engine`] functions; the `determinism` integration test
//! asserts byte-identical results per key across thread counts.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use morphtree_core::metadata::{
    EngineStats, MacMode, MetadataEngine, ReplacementPolicy, VerificationMode,
};
use morphtree_core::obs::Timeline;
use morphtree_core::tree::TreeConfig;
use morphtree_sim::system::{simulate, simulate_nonsecure, SimConfig, SimResult};
use morphtree_trace::catalog::{Benchmark, MIXES};
use morphtree_trace::workload::SystemWorkload;

/// A workload name that is neither a Table II benchmark nor a mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The requested name.
    pub name: String,
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload `{}` (known: {})",
            self.name,
            Setup::all_workloads().join(" ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// The scaled operating point (see the crate docs for the rationale).
#[derive(Debug, Clone)]
pub struct Setup {
    /// Uniform scale factor: memory, metadata cache and footprints are all
    /// divided by this.
    pub scale: u64,
    /// Warm-up instructions per core.
    pub warmup_instructions: u64,
    /// Measured instructions per core.
    pub measure_instructions: u64,
    /// Deterministic base seed.
    pub seed: u64,
}

impl Default for Setup {
    fn default() -> Self {
        Setup {
            scale: 16,
            warmup_instructions: 4_000_000,
            measure_instructions: 2_000_000,
            seed: 42,
        }
    }
}

impl Setup {
    /// Physical memory at this scale (paper: 16 GB).
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        (16 << 30) / self.scale
    }

    /// Metadata cache at this scale (paper: 128 KB).
    #[must_use]
    pub fn metadata_cache_bytes(&self) -> usize {
        ((128 * 1024) / self.scale).max(4096) as usize
    }

    /// Scales another cache size consistently (for the Fig 19 sweep).
    #[must_use]
    pub fn scaled_cache(&self, paper_bytes: u64) -> usize {
        (paper_bytes / self.scale).max(4096) as usize
    }

    /// The simulator configuration at this scale.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            memory_bytes: self.memory_bytes(),
            metadata_cache_bytes: self.metadata_cache_bytes(),
            warmup_instructions: self.warmup_instructions,
            measure_instructions: self.measure_instructions,
            ..SimConfig::default()
        }
    }

    /// Builds the workload named `name` (a Table II benchmark or
    /// `mix1`..`mix6`).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkload`] (listing the known names) if `name` is
    /// neither a benchmark nor a mix.
    pub fn workload(&self, name: &str) -> Result<SystemWorkload, UnknownWorkload> {
        if let Some(mix) = MIXES.iter().find(|m| m.name == name) {
            // Mixes use the same footprint divisor as rate mode.
            return Ok(SystemWorkload::mix(mix, self.memory_bytes(), self.seed));
        }
        let bench = Benchmark::by_name(name)
            .ok_or_else(|| UnknownWorkload { name: name.to_owned() })?;
        Ok(SystemWorkload::rate_scaled(bench, 4, self.memory_bytes(), self.seed, self.scale))
    }

    /// The 22 rate-mode workloads (Table II order).
    #[must_use]
    pub fn rate_workloads() -> Vec<&'static str> {
        Benchmark::all().iter().map(|b| b.name).collect()
    }

    /// All 28 workloads of Fig 15/16: 16 SPEC, 6 mixes, 6 GAP — in the
    /// paper's figure order (SPEC, MIX, GAP).
    #[must_use]
    pub fn all_workloads() -> Vec<&'static str> {
        let mut names: Vec<&'static str> =
            Benchmark::spec().iter().map(|b| b.name).collect();
        names.extend(MIXES.iter().map(|m| m.name));
        names.extend(Benchmark::gap().iter().map(|b| b.name));
        names
    }
}

/// Key identifying one full-system simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload name (Table II benchmark or `mix1`..`mix6`).
    pub workload: String,
    /// Tree configuration name (`Non-Secure` for the baseline).
    pub config: String,
    /// Metadata-cache capacity in bytes.
    pub cache_bytes: usize,
    /// MAC organization.
    pub mac: MacMode,
    /// Verification mode (strict vs PoisonIvy-style speculative).
    pub verification: VerificationMode,
    /// Metadata-cache victim selection.
    pub replacement: ReplacementPolicy,
}

impl RunKey {
    /// Builds the key for `workload` under `tree` (None = non-secure).
    #[must_use]
    pub fn new(
        workload: &str,
        tree: Option<&TreeConfig>,
        cache_bytes: usize,
        mac: MacMode,
        verification: VerificationMode,
        replacement: ReplacementPolicy,
    ) -> Self {
        RunKey {
            workload: workload.to_owned(),
            config: tree.map_or_else(|| "Non-Secure".to_owned(), |t| t.name().to_owned()),
            cache_bytes,
            mac,
            verification,
            replacement,
        }
    }

    fn label(&self) -> String {
        format!("{} / {}", self.workload, self.config)
    }
}

/// Key identifying one engine-only (timing-free) run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineKey {
    /// Workload name.
    pub workload: String,
    /// Tree configuration name.
    pub config: String,
    /// Measured instructions per core (warm-up is the same length).
    pub instructions: u64,
}

impl EngineKey {
    /// Builds the key for `workload` under `tree`.
    #[must_use]
    pub fn new(workload: &str, tree: &TreeConfig, instructions: u64) -> Self {
        EngineKey {
            workload: workload.to_owned(),
            config: tree.name().to_owned(),
            instructions,
        }
    }

    fn label(&self) -> String {
        format!("{} / {} [engine]", self.workload, self.config)
    }
}

/// A planned set of runs, collected up front so [`Lab::prefetch`] can
/// batch them across worker threads.
///
/// Duplicate declarations are deduplicated by key, and insertion order is
/// preserved — the work queue is deterministic for a given plan.
#[derive(Default)]
pub struct Sweep {
    sims: Vec<(RunKey, Option<TreeConfig>)>,
    sim_keys: HashSet<RunKey>,
    engines: Vec<(EngineKey, TreeConfig)>,
    engine_keys: HashSet<EngineKey>,
}

impl Sweep {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Declares a run at the setup's default cache size, inline MACs,
    /// strict verification, and LRU replacement — the operating point of
    /// [`Lab::result`].
    pub fn sim(&mut self, setup: &Setup, workload: &str, tree: Option<TreeConfig>) {
        self.sim_with(workload, tree, setup.metadata_cache_bytes(), MacMode::Inline);
    }

    /// Declares a run with explicit cache size and MAC mode
    /// ([`Lab::result_with`]'s operating point).
    pub fn sim_with(
        &mut self,
        workload: &str,
        tree: Option<TreeConfig>,
        cache_bytes: usize,
        mac: MacMode,
    ) {
        self.sim_full(
            workload,
            tree,
            cache_bytes,
            mac,
            VerificationMode::default(),
            ReplacementPolicy::default(),
        );
    }

    /// Declares a run with every key dimension explicit
    /// ([`Lab::result_full`]'s operating point).
    pub fn sim_full(
        &mut self,
        workload: &str,
        tree: Option<TreeConfig>,
        cache_bytes: usize,
        mac: MacMode,
        verification: VerificationMode,
        replacement: ReplacementPolicy,
    ) {
        let key = RunKey::new(workload, tree.as_ref(), cache_bytes, mac, verification, replacement);
        if self.sim_keys.insert(key.clone()) {
            self.sims.push((key, tree));
        }
    }

    /// Declares a timing-free engine run ([`Lab::engine_stats`]'s
    /// operating point).
    pub fn engine(&mut self, workload: &str, tree: TreeConfig, instructions: u64) {
        let key = EngineKey::new(workload, &tree, instructions);
        if self.engine_keys.insert(key.clone()) {
            self.engines.push((key, tree));
        }
    }

    /// Number of distinct planned runs (simulations + engine studies).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sims.len() + self.engines.len()
    }

    /// True when nothing is planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty() && self.engines.is_empty()
    }
}

/// Test-only fault injection: arms a one-shot (or N-shot) panic inside
/// the next runs whose label contains a pattern, so the sweep-isolation
/// machinery can be exercised end-to-end. Hidden from docs; no-op unless
/// armed.
#[doc(hidden)]
pub mod fault_injection {
    use std::sync::Mutex;

    static ARMED: Mutex<Option<(String, u32)>> = Mutex::new(None);

    /// Panics the next `times` runs whose label contains `pattern`.
    pub fn arm(pattern: &str, times: u32) {
        *ARMED.lock().expect("fault-injection lock") = Some((pattern.to_owned(), times));
    }

    /// Clears any armed fault.
    pub fn disarm() {
        *ARMED.lock().expect("fault-injection lock") = None;
    }

    pub(crate) fn maybe_panic(label: &str) {
        let mut armed = ARMED.lock().expect("fault-injection lock");
        if let Some((pattern, times)) = armed.as_mut() {
            if *times > 0 && label.contains(pattern.as_str()) {
                *times -= 1;
                let t = *times;
                drop(armed); // do not poison the lock with the panic below
                panic!("injected fault for `{label}` ({t} charges left)");
            }
        }
    }
}

/// Executes one full-system simulation for `key`. Both the serial
/// [`Lab::result_full`] path and the parallel [`Lab::prefetch`] workers
/// call this, so the two are identical by construction: the workload (and
/// its RNG streams) is rebuilt from the setup seed on every call.
///
/// # Errors
///
/// Returns [`UnknownWorkload`] if the key names a workload that does not
/// exist.
pub fn execute_sim(
    setup: &Setup,
    key: &RunKey,
    tree: Option<&TreeConfig>,
) -> Result<SimResult, UnknownWorkload> {
    fault_injection::maybe_panic(&key.label());
    let mut cfg = setup.sim_config();
    cfg.metadata_cache_bytes = key.cache_bytes;
    cfg.mac_mode = key.mac;
    cfg.verification = key.verification;
    cfg.replacement = key.replacement;
    let mut workload = setup.workload(&key.workload)?;
    Ok(match tree {
        Some(t) => simulate(&mut workload, t.clone(), &cfg),
        None => simulate_nonsecure(&mut workload, &cfg),
    })
}

/// Executes one timing-free engine study for `key` (warm-up then measure,
/// round-robin across cores). Shared by the serial and parallel paths.
///
/// # Errors
///
/// Returns [`UnknownWorkload`] if the key names a workload that does not
/// exist.
pub fn execute_engine(
    setup: &Setup,
    key: &EngineKey,
    tree: &TreeConfig,
) -> Result<EngineStats, UnknownWorkload> {
    fault_injection::maybe_panic(&key.label());
    let mut workload = setup.workload(&key.workload)?;
    let mut engine = MetadataEngine::new(
        tree.clone(),
        setup.memory_bytes(),
        setup.metadata_cache_bytes(),
        MacMode::Inline,
    );
    let mut accesses = Vec::with_capacity(512);
    let cores = workload.num_cores();
    for phase in 0..2u8 {
        if phase == 1 {
            engine.reset_stats();
        }
        let mut instrs = vec![0u64; cores];
        while instrs.iter().any(|&i| i < key.instructions) {
            for core in 0..cores {
                if instrs[core] >= key.instructions {
                    continue;
                }
                let rec = workload.next_record(core);
                *instrs.get_mut(core).expect("core index") += u64::from(rec.gap) + 1;
                accesses.clear();
                if rec.is_write {
                    engine.write(rec.line, &mut accesses);
                } else {
                    engine.read(rec.line, &mut accesses);
                }
            }
        }
    }
    Ok(engine.stats().clone())
}

/// Record of one run the sweep could not complete.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// `workload / config` label of the failed run.
    pub label: String,
    /// The panic message or typed error that killed it.
    pub error: String,
    /// Attempts made (2 = the retry failed too).
    pub attempts: u32,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed after {} attempt(s): {}", self.label, self.attempts, self.error)
    }
}

/// Renders a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Maximum attempts per sweep run: the first try plus one retry. A retry
/// is only useful against nondeterministic faults (the runs themselves are
/// deterministic), but it is cheap insurance and the ISSUE-level contract.
const RUN_ATTEMPTS: u32 = 2;

/// Runs `f` inside panic isolation with one retry. Returns the value and
/// the number of attempts used, or a [`RunFailure`]. Typed errors fail
/// immediately (they are deterministic); only panics are retried.
fn run_isolated<T>(
    label: &str,
    f: impl Fn() -> Result<T, UnknownWorkload>,
) -> Result<(T, u32), RunFailure> {
    let mut last_panic = String::new();
    for attempt in 1..=RUN_ATTEMPTS {
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(Ok(value)) => return Ok((value, attempt)),
            Ok(Err(error)) => {
                return Err(RunFailure {
                    label: label.to_owned(),
                    error: error.to_string(),
                    attempts: attempt,
                })
            }
            Err(payload) => last_panic = panic_message(payload.as_ref()),
        }
    }
    Err(RunFailure { label: label.to_owned(), error: last_panic, attempts: RUN_ATTEMPTS })
}

/// Minimum interval between progress lines during a sweep.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(100);

/// Completion counter shared by sweep workers; holding the lock while
/// printing keeps the output ordered (counts are monotone) and the
/// interval check keeps it rate-limited.
struct Progress {
    done: usize,
    last_print: Option<Instant>,
}

impl Progress {
    fn note(progress: &Mutex<Progress>, total: usize, label: &str) {
        let mut p = progress.lock().expect("progress lock");
        p.done += 1;
        let now = Instant::now();
        let due = p
            .last_print
            .is_none_or(|t| now.duration_since(t) >= PROGRESS_INTERVAL);
        if due || p.done == total {
            eprintln!("[sweep {}/{}] {}", p.done, total, label);
            p.last_print = Some(now);
        }
    }
}

/// A memoizing experiment driver.
pub struct Lab {
    setup: Setup,
    runs: HashMap<RunKey, SimResult>,
    engine_runs: HashMap<EngineKey, EngineStats>,
    /// Worker threads for [`Lab::prefetch`]; 0 = automatic
    /// (`MORPHTREE_THREADS` env var, else `available_parallelism`).
    threads: usize,
    /// Runs no sweep could complete (panicked twice, or a typed error).
    failures: Vec<RunFailure>,
    /// Labels of runs that panicked once but succeeded on retry.
    recovered: Vec<String>,
    /// Progress lines are printed when true (default).
    pub verbose: bool,
    /// Figure reports are saved under `results/` when true (default);
    /// tests render in-memory only.
    pub emit_reports: bool,
    /// Wall-time span trace of every run executed so far. Wall-clock data
    /// lives only here — never in the deterministic metrics registry — so
    /// sweep metrics files stay byte-identical across thread counts.
    timeline: Timeline,
    /// Reference instant for the timeline's micro-second clock.
    epoch: Instant,
}

impl Lab {
    /// Creates a lab at the given operating point.
    #[must_use]
    pub fn new(setup: Setup) -> Self {
        Lab {
            setup,
            runs: HashMap::new(),
            engine_runs: HashMap::new(),
            threads: 0,
            failures: Vec::new(),
            recovered: Vec::new(),
            verbose: true,
            emit_reports: true,
            timeline: Timeline::new(),
            epoch: Instant::now(),
        }
    }

    /// Micro-seconds since this lab was created (the timeline clock).
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Wall-time span trace: one `run:<label>` span per executed run, and
    /// one enclosing `sweep` span per [`Lab::prefetch`] batch (worker
    /// spans nest under it at depth 1). Retried runs carry `attempts > 1`.
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Drains the span trace (the CLI exports it once per invocation).
    pub fn take_timeline(&mut self) -> Timeline {
        std::mem::take(&mut self.timeline)
    }

    /// The operating point.
    #[must_use]
    pub fn setup(&self) -> &Setup {
        &self.setup
    }

    /// Pins the sweep worker count (0 restores automatic selection).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Worker threads a sweep of `jobs` runs would use: the pinned count
    /// if set, else `MORPHTREE_THREADS`, else the machine's available
    /// parallelism — never more than there are jobs.
    #[must_use]
    pub fn worker_count(&self, jobs: usize) -> usize {
        let configured = if self.threads > 0 {
            self.threads
        } else {
            std::env::var("MORPHTREE_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        let count = if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        count.clamp(1, jobs.max(1))
    }

    /// Executes every planned run that is not already memoized, fanning
    /// them out across worker threads, and merges the results into the
    /// memo — after this, the figure `run` functions find all their runs
    /// cached and never simulate.
    ///
    /// Deterministic by construction: each job rebuilds its workload from
    /// the setup seed and shares no state with other jobs (see
    /// [`execute_sim`]), so the results are identical to running the same
    /// keys serially, in any order, on any thread count.
    pub fn prefetch(&mut self, sweep: &Sweep) {
        let sim_jobs: Vec<&(RunKey, Option<TreeConfig>)> = sweep
            .sims
            .iter()
            .filter(|(key, _)| !self.runs.contains_key(key))
            .collect();
        let engine_jobs: Vec<&(EngineKey, TreeConfig)> = sweep
            .engines
            .iter()
            .filter(|(key, _)| !self.engine_runs.contains_key(key))
            .collect();
        let total = sim_jobs.len() + engine_jobs.len();
        if total == 0 {
            return;
        }
        let workers = self.worker_count(total);
        if self.verbose {
            eprintln!(
                "[sweep] {} runs ({} sim, {} engine) on {} threads",
                total,
                sim_jobs.len(),
                engine_jobs.len(),
                workers,
            );
        }

        let next = AtomicUsize::new(0);
        let sim_results: Mutex<HashMap<RunKey, SimResult>> = Mutex::new(HashMap::new());
        let engine_results: Mutex<HashMap<EngineKey, EngineStats>> =
            Mutex::new(HashMap::new());
        let failures: Mutex<Vec<RunFailure>> = Mutex::new(Vec::new());
        let recovered: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let progress = Mutex::new(Progress { done: 0, last_print: None });
        // Workers collect pre-measured (label, start, duration, attempts)
        // tuples; they are folded into the timeline after the barrier so
        // the tracer itself needs no cross-thread synchronization.
        let worker_spans: Mutex<Vec<(String, u64, u64, u32)>> = Mutex::new(Vec::new());
        self.timeline.start_span("sweep", self.now_us());
        let epoch = self.epoch;
        let setup = &self.setup;
        let verbose = self.verbose;

        // Each run executes under `run_isolated`: a panicking or failing
        // run is retried once, then recorded as a failure — it never takes
        // the sweep (or the other runs) down with it.
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let begun = Instant::now();
                    let started =
                        u64::try_from(begun.duration_since(epoch).as_micros())
                            .unwrap_or(u64::MAX);
                    let (label, attempts) = if index < sim_jobs.len() {
                        let (key, tree) = sim_jobs[index];
                        let label = key.label();
                        match run_isolated(&label, || execute_sim(setup, key, tree.as_ref()))
                        {
                            Ok((result, attempts)) => {
                                sim_results
                                    .lock()
                                    .expect("sim results lock")
                                    .insert(key.clone(), result);
                                (label, Some(attempts))
                            }
                            Err(failure) => {
                                failures.lock().expect("failures lock").push(failure);
                                (label, None)
                            }
                        }
                    } else {
                        let (key, tree) = engine_jobs[index - sim_jobs.len()];
                        let label = key.label();
                        match run_isolated(&label, || execute_engine(setup, key, tree)) {
                            Ok((stats, attempts)) => {
                                engine_results
                                    .lock()
                                    .expect("engine results lock")
                                    .insert(key.clone(), stats);
                                (label, Some(attempts))
                            }
                            Err(failure) => {
                                failures.lock().expect("failures lock").push(failure);
                                (label, None)
                            }
                        }
                    };
                    let duration =
                        u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
                    worker_spans.lock().expect("worker spans lock").push((
                        format!("run:{label}"),
                        started,
                        duration,
                        attempts.unwrap_or(RUN_ATTEMPTS),
                    ));
                    if attempts.is_some_and(|a| a > 1) {
                        recovered.lock().expect("recovered lock").push(label.clone());
                    }
                    if verbose {
                        Progress::note(&progress, total, &label);
                    }
                });
            }
        });

        // Fold worker spans in under the still-open `sweep` scope (depth
        // 1), then close it; the final sort makes span order independent
        // of worker interleaving.
        for (name, start, duration, attempts) in
            worker_spans.into_inner().expect("worker spans lock")
        {
            self.timeline.record_span(&name, start, duration, attempts);
        }
        self.timeline.end_span(self.now_us());
        self.timeline.sort();

        self.runs
            .extend(sim_results.into_inner().expect("sim results lock"));
        self.engine_runs
            .extend(engine_results.into_inner().expect("engine results lock"));
        let mut new_failures = failures.into_inner().expect("failures lock");
        // Worker interleaving is nondeterministic; keep the record stable.
        new_failures.sort_by(|a, b| a.label.cmp(&b.label));
        if self.verbose {
            for failure in &new_failures {
                eprintln!("[sweep] FAILED: {failure}");
            }
        }
        self.failures.extend(new_failures);
        let mut new_recovered = recovered.into_inner().expect("recovered lock");
        new_recovered.sort();
        self.recovered.extend(new_recovered);
    }

    /// Runs no sweep could complete so far (in stable label order per
    /// sweep).
    #[must_use]
    pub fn failures(&self) -> &[RunFailure] {
        &self.failures
    }

    /// Labels of runs that panicked once and succeeded on retry.
    #[must_use]
    pub fn recovered(&self) -> &[String] {
        &self.recovered
    }

    /// Drains the failure record (the driver folds it into its sweep
    /// outcome so a later sweep on the same lab starts clean).
    pub fn take_failures(&mut self) -> Vec<RunFailure> {
        std::mem::take(&mut self.failures)
    }

    /// Drains the recovered-by-retry record.
    pub fn take_recovered(&mut self) -> Vec<String> {
        std::mem::take(&mut self.recovered)
    }

    /// Full-system result for `workload` under `tree` (None = non-secure),
    /// at the default cache size and inline MACs. Memoized.
    pub fn result(&mut self, workload: &str, tree: Option<TreeConfig>) -> &SimResult {
        let cache = self.setup.metadata_cache_bytes();
        self.result_with(workload, tree, cache, MacMode::Inline)
    }

    /// Full-system result with explicit cache size and MAC mode. Memoized.
    pub fn result_with(
        &mut self,
        workload: &str,
        tree: Option<TreeConfig>,
        cache_bytes: usize,
        mac: MacMode,
    ) -> &SimResult {
        self.result_full(
            workload,
            tree,
            cache_bytes,
            mac,
            VerificationMode::default(),
            ReplacementPolicy::default(),
        )
    }

    /// Full-system result with every key dimension explicit (the
    /// extension studies vary verification and replacement). Memoized.
    pub fn result_full(
        &mut self,
        workload: &str,
        tree: Option<TreeConfig>,
        cache_bytes: usize,
        mac: MacMode,
        verification: VerificationMode,
        replacement: ReplacementPolicy,
    ) -> &SimResult {
        let key =
            RunKey::new(workload, tree.as_ref(), cache_bytes, mac, verification, replacement);
        if !self.runs.contains_key(&key) {
            if self.verbose {
                eprintln!(
                    "[run] {} (cache {} KB, {:?})",
                    key.label(),
                    cache_bytes / 1024,
                    key.mac,
                );
            }
            // The serial path serves figure `run` functions, which cannot
            // propagate errors; surface the typed error as a panic that the
            // driver's per-figure isolation turns into a failure-summary
            // entry.
            let started = self.now_us();
            let begun = Instant::now();
            let result = execute_sim(&self.setup, &key, tree.as_ref())
                .unwrap_or_else(|e| panic!("{e}"));
            let duration = u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.timeline
                .record_span(&format!("run:{}", key.label()), started, duration, 1);
            self.runs.insert(key.clone(), result);
        }
        &self.runs[&key]
    }

    /// Timing-free engine statistics for `workload` under `tree`, measured
    /// over `instructions` per core after an equal warm-up — used by the
    /// counter-behaviour figures (Fig 7/11/14), which need longer windows
    /// than full-timing runs afford. Memoized.
    pub fn engine_stats(
        &mut self,
        workload: &str,
        tree: TreeConfig,
        instructions: u64,
    ) -> &EngineStats {
        let key = EngineKey::new(workload, &tree, instructions);
        if !self.engine_runs.contains_key(&key) {
            if self.verbose {
                eprintln!("[engine] {} / {}", key.workload, key.config);
            }
            // Same contract as `result_full`: typed errors become panics
            // for the driver's per-figure isolation to catch.
            let started = self.now_us();
            let begun = Instant::now();
            let stats = execute_engine(&self.setup, &key, &tree)
                .unwrap_or_else(|e| panic!("{e}"));
            let duration = u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.timeline
                .record_span(&format!("run:{}", key.label()), started, duration, 1);
            self.engine_runs.insert(key.clone(), stats);
        }
        &self.engine_runs[&key]
    }

    /// All memoized full-system results (for the determinism tests).
    #[must_use]
    pub fn sim_results(&self) -> &HashMap<RunKey, SimResult> {
        &self.runs
    }

    /// All memoized engine-study results (for the determinism tests).
    #[must_use]
    pub fn engine_results(&self) -> &HashMap<EngineKey, EngineStats> {
        &self.engine_runs
    }

    /// Seeds the memo with a previously computed full-system result, as
    /// when resuming from a [`crate::checkpoint`] file. Subsequent
    /// requests for `key` are served from the memo without simulating.
    pub fn import_sim(&mut self, key: RunKey, result: SimResult) {
        self.runs.insert(key, result);
    }

    /// Seeds the memo with a previously computed engine study (the
    /// engine-only counterpart of [`Lab::import_sim`]).
    pub fn import_engine(&mut self, key: EngineKey, stats: EngineStats) {
        self.engine_runs.insert(key, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_setup() -> Setup {
        Setup {
            scale: 64,
            warmup_instructions: 50_000,
            measure_instructions: 50_000,
            seed: 1,
        }
    }

    #[test]
    fn setup_scales_consistently() {
        let s = Setup::default();
        assert_eq!(s.memory_bytes(), 1 << 30);
        assert_eq!(s.metadata_cache_bytes(), 8 * 1024);
        assert_eq!(s.scaled_cache(256 * 1024), 16 * 1024);
        // The floor.
        assert_eq!(Setup { scale: 1024, ..s }.metadata_cache_bytes(), 4096);
    }

    #[test]
    fn workload_lists_cover_the_paper() {
        assert_eq!(Setup::rate_workloads().len(), 22);
        let all = Setup::all_workloads();
        assert_eq!(all.len(), 28);
        assert!(all.contains(&"mix3"));
        assert_eq!(all[16], "mix1", "mixes sit between SPEC and GAP");
    }

    #[test]
    fn lab_memoizes_runs() {
        let mut lab = Lab::new(quick_setup());
        lab.verbose = false;
        let a = lab.result("libquantum", Some(TreeConfig::sc64())).cycles;
        let before = lab.runs.len();
        let b = lab.result("libquantum", Some(TreeConfig::sc64())).cycles;
        assert_eq!(a, b);
        assert_eq!(lab.runs.len(), before);
    }

    #[test]
    fn engine_stats_accumulate_data_accesses() {
        let mut lab = Lab::new(quick_setup());
        lab.verbose = false;
        let stats = lab.engine_stats("lbm", TreeConfig::morphtree(), 50_000);
        assert!(stats.data_accesses() > 0);
    }

    #[test]
    fn unknown_workload_is_a_typed_error_listing_known_names() {
        let err = quick_setup().workload("not-a-benchmark").unwrap_err();
        assert_eq!(err.name, "not-a-benchmark");
        let message = err.to_string();
        assert!(message.contains("unknown workload `not-a-benchmark`"), "{message}");
        assert!(message.contains("mcf"), "{message}");
        assert!(message.contains("mix6"), "{message}");
    }

    #[test]
    fn run_isolated_retries_panics_once_and_reports_typed_errors() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        let (value, attempts) = run_isolated("flaky", || {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            Ok(7)
        })
        .unwrap();
        assert_eq!((value, attempts), (7, 2));

        let failure = run_isolated("doomed", || -> Result<(), UnknownWorkload> {
            panic!("always");
        })
        .unwrap_err();
        assert_eq!(failure.attempts, 2);
        assert!(failure.error.contains("always"), "{}", failure.error);

        let failure = run_isolated("typo", || {
            Err::<(), _>(UnknownWorkload { name: "typo".into() })
        })
        .unwrap_err();
        assert_eq!(failure.attempts, 1, "typed errors are not retried");
        assert!(failure.error.contains("unknown workload"), "{}", failure.error);
    }

    #[test]
    fn sweep_deduplicates_declarations() {
        let setup = quick_setup();
        let mut sweep = Sweep::new();
        assert!(sweep.is_empty());
        sweep.sim(&setup, "mcf", Some(TreeConfig::sc64()));
        sweep.sim(&setup, "mcf", Some(TreeConfig::sc64()));
        sweep.sim_with(
            "mcf",
            Some(TreeConfig::sc64()),
            setup.metadata_cache_bytes(),
            MacMode::Inline,
        );
        assert_eq!(sweep.len(), 1, "identical declarations collapse");
        sweep.sim(&setup, "mcf", None);
        sweep.sim_with("mcf", Some(TreeConfig::sc64()), 4096, MacMode::Separate);
        sweep.engine("mcf", TreeConfig::sc64(), 1000);
        sweep.engine("mcf", TreeConfig::sc64(), 1000);
        sweep.engine("mcf", TreeConfig::sc64(), 2000);
        assert_eq!(sweep.len(), 5);
    }

    #[test]
    fn prefetch_populates_the_memo() {
        let setup = Setup {
            scale: 256,
            warmup_instructions: 20_000,
            measure_instructions: 20_000,
            seed: 7,
        };
        let mut sweep = Sweep::new();
        sweep.sim(&setup, "libquantum", Some(TreeConfig::sc64()));
        sweep.sim(&setup, "libquantum", None);
        sweep.engine("libquantum", TreeConfig::sc64(), 20_000);
        let mut lab = Lab::new(setup);
        lab.verbose = false;
        lab.set_threads(2);
        lab.prefetch(&sweep);
        assert_eq!(lab.runs.len(), 2);
        assert_eq!(lab.engine_runs.len(), 1);
        // Serving the planned runs hits the memo: no new entries appear.
        let _ = lab.result("libquantum", Some(TreeConfig::sc64()));
        let _ = lab.result("libquantum", None);
        assert_eq!(lab.runs.len(), 2);
        // Prefetching the same plan again is a no-op.
        lab.prefetch(&sweep);
        assert_eq!(lab.runs.len(), 2);
        assert_eq!(lab.engine_runs.len(), 1);
    }

    #[test]
    fn timeline_traces_sweeps_and_serial_runs() {
        let setup = Setup {
            scale: 256,
            warmup_instructions: 20_000,
            measure_instructions: 20_000,
            seed: 7,
        };
        let mut sweep = Sweep::new();
        sweep.sim(&setup, "libquantum", Some(TreeConfig::sc64()));
        sweep.engine("libquantum", TreeConfig::sc64(), 20_000);
        let mut lab = Lab::new(setup);
        lab.verbose = false;
        lab.set_threads(2);
        lab.prefetch(&sweep);

        let spans = lab.timeline().spans();
        let batch = spans.iter().find(|s| s.name == "sweep").expect("sweep span");
        assert_eq!(batch.depth, 0);
        let runs: Vec<_> = spans.iter().filter(|s| s.name.starts_with("run:")).collect();
        assert_eq!(runs.len(), 2, "one span per executed run");
        assert!(runs.iter().all(|s| s.depth == 1), "runs nest under the sweep");
        assert!(runs.iter().all(|s| s.attempts == 1));

        // The serial path records a top-level span per fresh run, and
        // memo hits record nothing.
        let _ = lab.result("libquantum", None);
        let serial = lab
            .timeline()
            .spans()
            .iter()
            .find(|s| s.name == "run:libquantum / Non-Secure")
            .expect("serial span");
        assert_eq!(serial.depth, 0);
        let count = lab.timeline().len();
        let _ = lab.result("libquantum", None);
        assert_eq!(lab.timeline().len(), count, "memoized runs add no spans");

        let drained = lab.take_timeline();
        assert!(!drained.is_empty());
        assert!(lab.timeline().is_empty());
    }

    #[test]
    fn worker_count_clamps_to_jobs() {
        let mut lab = Lab::new(quick_setup());
        lab.set_threads(8);
        assert_eq!(lab.worker_count(3), 3);
        assert_eq!(lab.worker_count(100), 8);
        assert_eq!(lab.worker_count(0), 1);
        lab.set_threads(0);
        assert!(lab.worker_count(usize::MAX) >= 1);
    }
}
