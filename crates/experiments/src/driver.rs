//! Batch figure driver: plans the union of the selected figures'
//! run-sets, prefetches it across worker threads ([`Lab::prefetch`]),
//! then renders each figure serially from the shared memo.
//!
//! Because figures share runs (Fig 15/16/18 read the same simulations),
//! planning the union before prefetching both deduplicates work across
//! figures and gives the work queue its full width up front.

use crate::figures::{self, Figure};
use crate::report;
use crate::runner::{Lab, Setup, Sweep};

/// The names of every reproducible figure, in `runall` order.
#[must_use]
pub fn figure_names() -> Vec<&'static str> {
    figures::catalog().iter().map(|f| f.name).collect()
}

/// Plans, prefetches, and renders the named figures; each report is
/// printed and saved under `results/`. Returns the combined report.
///
/// # Errors
///
/// Errors on unknown figure names (nothing is simulated in that case).
pub fn run_figures(lab: &mut Lab, names: &[&str]) -> Result<String, String> {
    let catalog = figures::catalog();
    let mut selected: Vec<&Figure> = Vec::with_capacity(names.len());
    for name in names {
        let figure = catalog.iter().find(|f| f.name == *name).ok_or_else(|| {
            format!("unknown figure `{name}` (known: {})", figure_names().join(" "))
        })?;
        selected.push(figure);
    }

    let mut sweep = Sweep::new();
    for figure in &selected {
        (figure.plan)(lab.setup(), &mut sweep);
    }
    lab.prefetch(&sweep);

    let mut combined = String::new();
    for figure in &selected {
        if lab.verbose {
            eprintln!("==== {} ====", figure.name);
        }
        let output = (figure.run)(lab);
        report::emit(figure.name, &output);
        combined.push_str(&format!("\n==== {} ====\n\n{output}\n", figure.name));
    }
    Ok(combined)
}

/// Entry point shared by the figure binaries: parses `--threads N` from
/// the command line and regenerates the named figures at the default
/// operating point. Returns the combined report.
///
/// # Panics
///
/// Exits the process (status 2) on bad flags or unknown figure names.
pub fn figure_main(names: &[&str]) -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            threads = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threads needs a number");
                std::process::exit(2);
            });
        } else {
            eprintln!("unknown flag `{arg}` (supported: --threads N)");
            std::process::exit(2);
        }
    }
    let mut lab = Lab::new(Setup::default());
    lab.set_threads(threads);
    match run_figures(&mut lab, names) {
        Ok(combined) => combined,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figures_are_rejected_before_simulating() {
        let mut lab = Lab::new(Setup::default());
        lab.verbose = false;
        let err = run_figures(&mut lab, &["not-a-figure"]).unwrap_err();
        assert!(err.contains("unknown figure `not-a-figure`"), "{err}");
        assert!(lab.sim_results().is_empty(), "nothing should have run");
    }

    #[test]
    fn figure_names_match_the_catalog() {
        let names = figure_names();
        assert_eq!(names.len(), 19);
        assert_eq!(names[0], "table3");
        assert!(names.contains(&"fig15"));
        assert!(names.contains(&"ext_scheduler"));
    }
}
