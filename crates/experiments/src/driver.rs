//! Batch figure driver: plans the union of the selected figures'
//! run-sets, prefetches it across worker threads ([`Lab::prefetch`]),
//! then renders each figure serially from the shared memo.
//!
//! Because figures share runs (Fig 15/16/18 read the same simulations),
//! planning the union before prefetching both deduplicates work across
//! figures and gives the work queue its full width up front.
//!
//! # Fault tolerance
//!
//! Both layers degrade gracefully instead of aborting the batch:
//!
//! - each prefetched *run* executes under panic isolation with one retry
//!   (see [`Lab::prefetch`]); a run that still fails lands in the lab's
//!   failure record and the rest of the sweep completes;
//! - each *figure* renders inside its own `catch_unwind`, so a figure
//!   whose runs are missing (or whose renderer panics) is recorded in the
//!   [`SweepOutcome`] while figures that depend only on successful runs
//!   still produce their reports.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::figures::{self, Figure};
use crate::report;
use crate::runner::{Lab, RunFailure, Setup, Sweep};

/// The names of every reproducible figure, in `runall` order.
#[must_use]
pub fn figure_names() -> Vec<&'static str> {
    figures::catalog().iter().map(|f| f.name).collect()
}

/// What a batch of figures produced: the combined report of every figure
/// that rendered, plus the failure record of everything that did not.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Concatenated reports of the figures that rendered.
    pub report: String,
    /// `(figure, panic message)` for figures whose renderer died.
    pub failed_figures: Vec<(String, String)>,
    /// Runs the sweep could not complete (already retried once).
    pub run_failures: Vec<RunFailure>,
    /// Labels of runs that panicked once and succeeded on retry.
    pub recovered_runs: Vec<String>,
}

impl SweepOutcome {
    /// True when every run and every figure completed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failed_figures.is_empty() && self.run_failures.is_empty()
    }

    /// A human-readable failure summary, or `None` when the batch was
    /// clean and nothing needed a retry.
    #[must_use]
    pub fn failure_summary(&self) -> Option<String> {
        if self.is_clean() && self.recovered_runs.is_empty() {
            return None;
        }
        let mut out = String::from("sweep failure summary:\n");
        for label in &self.recovered_runs {
            out.push_str(&format!("  recovered after retry: {label}\n"));
        }
        for failure in &self.run_failures {
            out.push_str(&format!("  run {failure}\n"));
        }
        for (figure, message) in &self.failed_figures {
            out.push_str(&format!("  figure {figure} did not render: {message}\n"));
        }
        Some(out)
    }
}

/// Plans, prefetches, and renders the named figures; each report is
/// printed and saved under `results/`. Failing runs and figures are
/// recorded in the outcome instead of aborting the batch.
///
/// # Errors
///
/// Errors on unknown figure names (nothing is simulated in that case).
pub fn run_figures(lab: &mut Lab, names: &[&str]) -> Result<SweepOutcome, String> {
    let catalog = figures::catalog();
    let mut selected: Vec<&Figure> = Vec::with_capacity(names.len());
    for name in names {
        let figure = catalog.iter().find(|f| f.name == *name).ok_or_else(|| {
            format!("unknown figure `{name}` (known: {})", figure_names().join(" "))
        })?;
        selected.push(figure);
    }
    Ok(run_selected(lab, &selected))
}

/// The render stage behind [`run_figures`], taking the figures directly —
/// the seam the fault-tolerance tests use to inject a panicking figure.
pub(crate) fn run_selected(lab: &mut Lab, selected: &[&Figure]) -> SweepOutcome {
    let mut sweep = Sweep::new();
    for figure in selected {
        (figure.plan)(lab.setup(), &mut sweep);
    }
    lab.prefetch(&sweep);

    let mut combined = String::new();
    let mut failed_figures = Vec::new();
    for figure in selected {
        if lab.verbose {
            eprintln!("==== {} ====", figure.name);
        }
        // A panicking renderer (e.g. one whose runs failed above) must not
        // take down the figures that can still render from the memo.
        match catch_unwind(AssertUnwindSafe(|| (figure.run)(lab))) {
            Ok(output) => {
                if lab.emit_reports {
                    report::emit(figure.name, &output);
                }
                combined.push_str(&format!("\n==== {} ====\n\n{output}\n", figure.name));
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "panic with non-string payload".to_owned());
                if lab.verbose {
                    eprintln!("[sweep] figure {} did not render: {message}", figure.name);
                }
                combined.push_str(&format!(
                    "\n==== {} ====\n\n(not rendered: {message})\n",
                    figure.name
                ));
                failed_figures.push((figure.name.to_owned(), message));
            }
        }
    }
    SweepOutcome {
        report: combined,
        failed_figures,
        run_failures: lab.take_failures(),
        recovered_runs: lab.take_recovered(),
    }
}

/// Entry point shared by the figure binaries: parses `--threads N` from
/// the command line and regenerates the named figures at the default
/// operating point. Returns the combined report; any failure summary is
/// printed to stderr.
///
/// # Panics
///
/// Exits the process (status 2) on bad flags or unknown figure names.
pub fn figure_main(names: &[&str]) -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            threads = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threads needs a number");
                std::process::exit(2);
            });
        } else {
            eprintln!("unknown flag `{arg}` (supported: --threads N)");
            std::process::exit(2);
        }
    }
    let mut lab = Lab::new(Setup::default());
    lab.set_threads(threads);
    match run_figures(&mut lab, names) {
        Ok(outcome) => {
            if let Some(summary) = outcome.failure_summary() {
                eprintln!("{summary}");
            }
            outcome.report
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::UnknownWorkload;

    #[test]
    fn unknown_figures_are_rejected_before_simulating() {
        let mut lab = Lab::new(Setup::default());
        lab.verbose = false;
        let err = run_figures(&mut lab, &["not-a-figure"]).unwrap_err();
        assert!(err.contains("unknown figure `not-a-figure`"), "{err}");
        assert!(lab.sim_results().is_empty(), "nothing should have run");
    }

    #[test]
    fn figure_names_match_the_catalog() {
        let names = figure_names();
        assert_eq!(names.len(), 19);
        assert_eq!(names[0], "table3");
        assert!(names.contains(&"fig15"));
        assert!(names.contains(&"ext_scheduler"));
    }

    fn plan_nothing(_: &Setup, _: &mut Sweep) {}

    #[test]
    fn a_panicking_figure_does_not_abort_the_batch() {
        let healthy = Figure {
            name: "test_healthy",
            plan: plan_nothing,
            run: |_| "healthy output".to_owned(),
        };
        let doomed = Figure {
            name: "test_doomed",
            plan: plan_nothing,
            run: |_| panic!("{}", UnknownWorkload { name: "ghost".into() }),
        };
        let mut lab = Lab::new(Setup::default());
        lab.verbose = false;
        lab.emit_reports = false;
        let outcome = run_selected(&mut lab, &[&doomed, &healthy]);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.failed_figures.len(), 1);
        assert_eq!(outcome.failed_figures[0].0, "test_doomed");
        assert!(
            outcome.failed_figures[0].1.contains("unknown workload `ghost`"),
            "{:?}",
            outcome.failed_figures
        );
        assert!(outcome.report.contains("healthy output"), "{}", outcome.report);
        assert!(outcome.report.contains("not rendered"), "{}", outcome.report);
        let summary = outcome.failure_summary().unwrap();
        assert!(summary.contains("test_doomed"), "{summary}");
    }

    #[test]
    fn clean_outcomes_have_no_failure_summary() {
        let healthy = Figure {
            name: "test_trivial",
            plan: plan_nothing,
            run: |_| "ok".to_owned(),
        };
        let mut lab = Lab::new(Setup::default());
        lab.verbose = false;
        lab.emit_reports = false;
        let outcome = run_selected(&mut lab, &[&healthy]);
        assert!(outcome.is_clean());
        assert!(outcome.failure_summary().is_none());
    }
}
