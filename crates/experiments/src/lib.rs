//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VII).
//!
//! Each figure has a binary (`fig05` … `fig20`, `table3`) and a library
//! entry point in [`figures`]; `runall` regenerates everything and writes
//! a combined report.
//!
//! # Scaling
//!
//! The paper simulates 4-core systems over 16 GB of DRAM for 30 billion
//! instructions per workload. We reproduce the *relative* results at a
//! uniformly scaled-down operating point (see [`runner::Setup`]): memory,
//! metadata cache, and workload footprints are all divided by the same
//! factor, preserving every density that drives the paper's phenomena —
//! footprint/memory (page-allocation sparsity), working-set/cache
//! (tree-level cacheability), and writes/line (overflow rates). Geometry
//! results (Fig 1/17, Table III) are computed at the full 16 GB, exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod driver;
pub mod figures;
pub mod report;
pub mod runner;

pub use checkpoint::CheckpointError;
pub use driver::SweepOutcome;
pub use runner::{Lab, RunFailure, Setup, Sweep, UnknownWorkload};
