//! Sweep checkpointing: serializes a [`Lab`]'s memoized runs to a
//! versioned, checksummed file so an interrupted sweep can resume without
//! re-simulating — and, because figure renderers are pure functions of
//! the memo, a resumed sweep renders byte-identical reports.
//!
//! Layout: `b"MTLC"` magic, `u32` version, payload, trailing FNV-1a-64
//! checksum. The payload opens with the operating-point fingerprint
//! (scale, warm-up, measure window, seed): a checkpoint taken at one
//! operating point must never seed a sweep at another, so a mismatch is
//! the typed [`CheckpointError::SetupMismatch`], not a silent blend.
//! Entries are sorted by key, making the checkpoint a pure function of
//! the lab's memo contents regardless of sweep thread count or insertion
//! order. Files are written atomically (temp file + rename) so a crash
//! mid-checkpoint leaves either the old checkpoint or the new one, never
//! a torn hybrid.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use morphtree_core::metadata::{MacMode, ReplacementPolicy, VerificationMode};
use morphtree_core::persist::codec::{fnv1a, ByteReader, ByteWriter};
use morphtree_core::persist::engine::{read_stats, write_stats};
use morphtree_core::persist::RecoveryError;
use morphtree_sim::persist::{read_result, write_result};

use crate::runner::{EngineKey, Lab, RunKey, Setup};

/// Lab-checkpoint magic (`MTLC` = MorphTree Lab Checkpoint).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"MTLC";

/// Lab-checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Upper bound on entries per section; a paper sweep memoizes a few
/// hundred runs, so larger counts are corruption, not workloads.
const MAX_ENTRIES: usize = 1 << 16;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file is structurally invalid (bad magic/version, truncation,
    /// checksum mismatch, malformed entries).
    Corrupt(RecoveryError),
    /// The checkpoint was taken at a different operating point than the
    /// lab resuming from it.
    SetupMismatch {
        /// Fingerprint stored in the checkpoint.
        stored: String,
        /// Fingerprint of the resuming lab.
        current: String,
    },
    /// The file could not be read or written.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Corrupt(e) => write!(f, "corrupt checkpoint: {e}"),
            CheckpointError::SetupMismatch { stored, current } => write!(
                f,
                "checkpoint operating point `{stored}` does not match the \
                 current sweep `{current}` — refusing to blend results"
            ),
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RecoveryError> for CheckpointError {
    fn from(e: RecoveryError) -> Self {
        CheckpointError::Corrupt(e)
    }
}

/// The operating-point fingerprint: every [`Setup`] field that affects
/// run results. Two labs may share checkpoints iff these match.
#[must_use]
pub fn fingerprint(setup: &Setup) -> String {
    format!(
        "scale={} warmup={} measure={} seed={}",
        setup.scale, setup.warmup_instructions, setup.measure_instructions, setup.seed
    )
}

fn mac_tag(mac: MacMode) -> u8 {
    match mac {
        MacMode::Inline => 0,
        MacMode::Separate => 1,
    }
}

fn verification_tag(v: VerificationMode) -> u8 {
    match v {
        VerificationMode::Strict => 0,
        VerificationMode::Speculative => 1,
    }
}

fn replacement_tag(r: ReplacementPolicy) -> u8 {
    match r {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::LevelAware => 1,
    }
}

/// Serializes every memoized run of `lab` into a checkpoint image.
#[must_use]
pub fn checkpoint_bytes(lab: &Lab) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&fingerprint(lab.setup()));

    let mut sims: Vec<&RunKey> = lab.sim_results().keys().collect();
    sims.sort_by_key(|k| {
        (
            k.workload.clone(),
            k.config.clone(),
            k.cache_bytes,
            mac_tag(k.mac),
            verification_tag(k.verification),
            replacement_tag(k.replacement),
        )
    });
    w.u32(sims.len() as u32);
    for key in sims {
        w.str(&key.workload);
        w.str(&key.config);
        w.u64(key.cache_bytes as u64);
        w.u8(mac_tag(key.mac));
        w.u8(verification_tag(key.verification));
        w.u8(replacement_tag(key.replacement));
        write_result(&mut w, &lab.sim_results()[key]);
    }

    let mut engines: Vec<&EngineKey> = lab.engine_results().keys().collect();
    engines.sort_by_key(|k| (k.workload.clone(), k.config.clone(), k.instructions));
    w.u32(engines.len() as u32);
    for key in engines {
        w.str(&key.workload);
        w.str(&key.config);
        w.u64(key.instructions);
        write_stats(&mut w, &lab.engine_results()[key]);
    }

    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

fn read_count(r: &mut ByteReader<'_>) -> Result<usize, RecoveryError> {
    let offset = r.offset();
    let n = r.u32()? as usize;
    if n > MAX_ENTRIES {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }
    Ok(n)
}

/// Restores a [`checkpoint_bytes`] image into `lab`'s memo. Returns the
/// `(simulations, engine studies)` counts imported.
///
/// # Errors
///
/// Returns [`CheckpointError`] on structural corruption or an
/// operating-point mismatch; the lab is only modified when the whole
/// image parses.
pub fn restore_into(lab: &mut Lab, bytes: &[u8]) -> Result<(usize, usize), CheckpointError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(|_| RecoveryError::BadMagic)? != CHECKPOINT_MAGIC {
        return Err(RecoveryError::BadMagic.into());
    }
    let version = r.u32().map_err(RecoveryError::from)?;
    if version != CHECKPOINT_VERSION {
        return Err(RecoveryError::UnsupportedVersion { version }.into());
    }
    let remaining = r.remaining();
    if remaining < 8 {
        return Err(RecoveryError::Truncated { offset: r.offset() }.into());
    }
    let payload = r.bytes(remaining - 8).map_err(RecoveryError::from)?;
    let stored = u64::from_le_bytes(
        r.bytes(8)
            .map_err(RecoveryError::from)?
            .try_into()
            .map_err(|_| RecoveryError::BadMagic)?,
    );
    if fnv1a(payload) != stored {
        return Err(RecoveryError::ChecksumMismatch { section: 0 }.into());
    }

    let mut p = ByteReader::new(payload);
    let file_fingerprint = p.str().map_err(RecoveryError::from)?.to_owned();
    let current = fingerprint(lab.setup());
    if file_fingerprint != current {
        return Err(CheckpointError::SetupMismatch { stored: file_fingerprint, current });
    }

    let mut sims = Vec::new();
    for _ in 0..read_count(&mut p)? {
        let workload = p.str().map_err(RecoveryError::from)?.to_owned();
        let config = p.str().map_err(RecoveryError::from)?.to_owned();
        let offset = p.offset();
        let cache_bytes = usize::try_from(p.u64().map_err(RecoveryError::from)?)
            .map_err(|_| RecoveryError::CorruptSnapshot { offset })?;
        let mac = match p.u8().map_err(RecoveryError::from)? {
            0 => MacMode::Inline,
            1 => MacMode::Separate,
            _ => return Err(RecoveryError::CorruptSnapshot { offset }.into()),
        };
        let verification = match p.u8().map_err(RecoveryError::from)? {
            0 => VerificationMode::Strict,
            1 => VerificationMode::Speculative,
            _ => return Err(RecoveryError::CorruptSnapshot { offset }.into()),
        };
        let replacement = match p.u8().map_err(RecoveryError::from)? {
            0 => ReplacementPolicy::Lru,
            1 => ReplacementPolicy::LevelAware,
            _ => return Err(RecoveryError::CorruptSnapshot { offset }.into()),
        };
        let result = read_result(&mut p)?;
        let key = RunKey { workload, config, cache_bytes, mac, verification, replacement };
        sims.push((key, result));
    }

    let mut engines = Vec::new();
    for _ in 0..read_count(&mut p)? {
        let workload = p.str().map_err(RecoveryError::from)?.to_owned();
        let config = p.str().map_err(RecoveryError::from)?.to_owned();
        let instructions = p.u64().map_err(RecoveryError::from)?;
        let stats = read_stats(&mut p)?;
        engines.push((EngineKey { workload, config, instructions }, stats));
    }
    if !p.is_exhausted() {
        return Err(RecoveryError::CorruptSnapshot { offset: p.offset() }.into());
    }

    let counts = (sims.len(), engines.len());
    for (key, result) in sims {
        lab.import_sim(key, result);
    }
    for (key, stats) in engines {
        lab.import_engine(key, stats);
    }
    Ok(counts)
}

/// Writes `lab`'s checkpoint to `path` atomically (temp file + rename in
/// the destination directory, so a crash never leaves a torn file).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] if the file cannot be written.
pub fn save_checkpoint(lab: &Lab, path: &Path) -> Result<(), CheckpointError> {
    let bytes = checkpoint_bytes(lab);
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
    let mut file = fs::File::create(&tmp).map_err(io)?;
    file.write_all(&bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    fs::rename(&tmp, path).map_err(io)
}

/// Loads the checkpoint at `path` into `lab`. Returns the imported
/// `(simulations, engine studies)` counts.
///
/// # Errors
///
/// Returns [`CheckpointError`] on io failure, corruption, or an
/// operating-point mismatch.
pub fn load_checkpoint(lab: &mut Lab, path: &Path) -> Result<(usize, usize), CheckpointError> {
    let bytes = fs::read(path)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    restore_into(lab, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Sweep;
    use morphtree_core::tree::TreeConfig;

    fn quick_setup() -> Setup {
        Setup {
            scale: 256,
            warmup_instructions: 20_000,
            measure_instructions: 20_000,
            seed: 7,
        }
    }

    fn populated_lab() -> Lab {
        let setup = quick_setup();
        let mut sweep = Sweep::new();
        sweep.sim(&setup, "libquantum", Some(TreeConfig::sc64()));
        sweep.sim(&setup, "libquantum", None);
        sweep.engine("libquantum", TreeConfig::sc64(), 20_000);
        let mut lab = Lab::new(setup);
        lab.verbose = false;
        lab.set_threads(2);
        lab.prefetch(&sweep);
        lab
    }

    #[test]
    fn checkpoints_round_trip_and_are_deterministic() {
        let lab = populated_lab();
        let bytes = checkpoint_bytes(&lab);
        assert_eq!(bytes, checkpoint_bytes(&lab), "pure function of the memo");

        let mut resumed = Lab::new(quick_setup());
        resumed.verbose = false;
        let (sims, engines) = restore_into(&mut resumed, &bytes).unwrap();
        assert_eq!((sims, engines), (2, 1));
        assert_eq!(resumed.sim_results(), lab.sim_results());
        assert_eq!(resumed.engine_results(), lab.engine_results());
        // The restored memo re-serializes identically: resuming twice (or
        // checkpointing a resumed lab) never drifts.
        assert_eq!(checkpoint_bytes(&resumed), bytes);
    }

    #[test]
    fn restored_runs_are_served_from_the_memo() {
        let lab = populated_lab();
        let bytes = checkpoint_bytes(&lab);
        let mut resumed = Lab::new(quick_setup());
        resumed.verbose = false;
        restore_into(&mut resumed, &bytes).unwrap();
        // A prefetch of the same plan finds everything cached: no new runs.
        let setup = quick_setup();
        let mut sweep = Sweep::new();
        sweep.sim(&setup, "libquantum", Some(TreeConfig::sc64()));
        sweep.sim(&setup, "libquantum", None);
        sweep.engine("libquantum", TreeConfig::sc64(), 20_000);
        resumed.prefetch(&sweep);
        assert_eq!(resumed.sim_results().len(), 2);
        assert_eq!(resumed.engine_results().len(), 1);
        let cached = resumed.result("libquantum", Some(TreeConfig::sc64())).cycles;
        let original = &lab.sim_results()
            [&RunKey::new(
                "libquantum",
                Some(&TreeConfig::sc64()),
                setup.metadata_cache_bytes(),
                MacMode::Inline,
                VerificationMode::default(),
                ReplacementPolicy::default(),
            )];
        assert_eq!(cached, original.cycles);
    }

    #[test]
    fn mismatched_operating_points_are_refused() {
        let lab = populated_lab();
        let bytes = checkpoint_bytes(&lab);
        let mut other = Lab::new(Setup { seed: 8, ..quick_setup() });
        other.verbose = false;
        let err = restore_into(&mut other, &bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::SetupMismatch { .. }),
            "expected a setup mismatch, got {err}"
        );
        assert!(other.sim_results().is_empty(), "a refused restore must not import");
        assert!(err.to_string().contains("seed=7"), "{err}");
        assert!(err.to_string().contains("seed=8"), "{err}");
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        let lab = populated_lab();
        let bytes = checkpoint_bytes(&lab);
        let mut fresh = Lab::new(quick_setup());
        fresh.verbose = false;

        assert_eq!(
            restore_into(&mut fresh, b"MTSR").unwrap_err(),
            CheckpointError::Corrupt(RecoveryError::BadMagic)
        );
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1;
        assert!(matches!(
            restore_into(&mut fresh, &flipped).unwrap_err(),
            CheckpointError::Corrupt(RecoveryError::ChecksumMismatch { .. })
        ));
        for cut in (0..bytes.len()).step_by(97) {
            let err = restore_into(&mut fresh, &bytes[..cut]).unwrap_err();
            assert!(matches!(err, CheckpointError::Corrupt(_)), "cut {cut}: {err}");
        }
        assert!(fresh.sim_results().is_empty(), "failed restores must not import");
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let lab = populated_lab();
        let path = std::env::temp_dir().join("morphtree-checkpoint-test.mtlc");
        save_checkpoint(&lab, &path).unwrap();
        let mut resumed = Lab::new(quick_setup());
        resumed.verbose = false;
        let counts = load_checkpoint(&mut resumed, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(counts, (2, 1));
        assert_eq!(resumed.sim_results(), lab.sim_results());
        let missing = load_checkpoint(&mut resumed, Path::new("/nonexistent/ck.mtlc"));
        assert!(matches!(missing.unwrap_err(), CheckpointError::Io(_)));
    }
}
