//! Report formatting: aligned text tables, geometric means, and result-file
//! output.

use std::fs;
use std::path::PathBuf;

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Directory where experiment outputs are stored.
#[must_use]
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    // Walk up to the workspace root (the directory containing `crates/`).
    while !dir.join("crates").is_dir() {
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
    dir.join("results")
}

/// Prints `content` and saves it to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(err) = fs::write(&path, content) {
            eprintln!("warning: could not write {}: {err}", path.display());
        } else {
            eprintln!("[saved] {}", path.display());
        }
    }
}

/// Formats a ratio as a percentage delta (e.g. 1.063 → "+6.3%").
#[must_use]
pub fn pct_delta(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer-name", "12.34"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12.34"));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(1.063), "+6.3%");
        assert_eq!(pct_delta(0.936), "-6.4%");
    }
}
