//! Fig 14 — overflows per million memory accesses with rebasing:
//! SC-64 vs MorphCtr-128 (ZCC-only) vs MorphCtr-128 (ZCC+Rebasing).
//!
//! Paper result: ZCC+Rebasing reduces overflows 1.6x vs SC-64 (1.4x for
//! ZCC alone); rebasing rescues streaming workloads (gcc, lbm,
//! libquantum), while GemsFDTD — whose usage is neither sparse nor
//! uniform — remains the one outlier where morphable counters overflow
//! more.

use morphtree_core::tree::TreeConfig;

use crate::figures::ENGINE_STUDY_INSTRUCTIONS;
use crate::report::Table;
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 14 (also reporting rebases — overflows avoided).
pub fn run(lab: &mut Lab) -> String {
    let mut table = Table::new(vec![
        "workload",
        "SC-64",
        "ZCC-only",
        "ZCC+Rebase",
        "rebases/M",
    ]);
    let mut sums = [0.0f64; 3];
    let workloads = Setup::rate_workloads();
    let mut gems_ratio = 0.0;
    for w in &workloads {
        let sc64 = lab
            .engine_stats(w, TreeConfig::sc64(), ENGINE_STUDY_INSTRUCTIONS)
            .overflows_per_million_accesses();
        let zcc = lab
            .engine_stats(w, TreeConfig::morphtree_zcc_only(), ENGINE_STUDY_INSTRUCTIONS)
            .overflows_per_million_accesses();
        let full_stats =
            lab.engine_stats(w, TreeConfig::morphtree(), ENGINE_STUDY_INSTRUCTIONS);
        let full = full_stats.overflows_per_million_accesses();
        let rebases: u64 = full_stats.rebases_by_level.iter().sum();
        let rebases_per_m =
            rebases as f64 * 1e6 / full_stats.total_accesses().max(1) as f64;
        if *w == "GemsFDTD" {
            gems_ratio = full / sc64.max(1e-9);
        }
        sums[0] += sc64;
        sums[1] += zcc;
        sums[2] += full;
        table.row(vec![
            (*w).to_owned(),
            format!("{sc64:.1}"),
            format!("{zcc:.1}"),
            format!("{full:.1}"),
            format!("{rebases_per_m:.1}"),
        ]);
    }
    let n = workloads.len() as f64;
    table.row(vec![
        "Average".to_owned(),
        format!("{:.1}", sums[0] / n),
        format!("{:.1}", sums[1] / n),
        format!("{:.1}", sums[2] / n),
        String::new(),
    ]);

    let mut out = String::from(
        "Fig 14 — overflows per million memory accesses (ZCC-only vs ZCC+Rebasing)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nSC-64 / ZCC+Rebasing average ratio: {:.2}x (paper: 1.6x fewer overflows)\n\
         GemsFDTD morph/SC-64 ratio:         {:.2}x (paper: >1 — the known outlier)\n",
        sums[0] / sums[2].max(1e-9),
        gems_ratio,
    ));
    out
}

/// Declares Fig 14's run-set: engine studies of every rate workload under
/// SC-64, ZCC-only MorphCtr, and full MorphCtr-128.
pub fn plan(_setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::rate_workloads() {
        for tree in [
            TreeConfig::sc64(),
            TreeConfig::morphtree_zcc_only(),
            TreeConfig::morphtree(),
        ] {
            sweep.engine(w, tree, ENGINE_STUDY_INSTRUCTIONS);
        }
    }
}
