//! Fig 11 — overflows per million memory accesses: SC-64 vs SC-128 vs
//! MorphCtr-128 (ZCC-only), per workload.
//!
//! Paper result: SC-128 overflows 7.4x more than SC-64 on average;
//! MorphCtr-128 with ZCC alone overflows 1.4x *less* than SC-64 and 10.2x
//! less than SC-128. ZCC helps most on sparse-access workloads
//! (mcf, omnetpp, xalancbmk); streaming workloads still favor SC-64 until
//! rebasing is added (Fig 14).

use morphtree_core::tree::TreeConfig;

use crate::figures::ENGINE_STUDY_INSTRUCTIONS;
use crate::report::Table;
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 11.
pub fn run(lab: &mut Lab) -> String {
    let configs = [
        TreeConfig::sc64(),
        TreeConfig::sc128(),
        TreeConfig::morphtree_zcc_only(),
    ];
    let mut table = Table::new(vec!["workload", "SC-64", "SC-128", "MorphCtr(ZCC)"]);
    let mut sums = [0.0f64; 3];
    let workloads = Setup::rate_workloads();
    for w in &workloads {
        let mut cells = vec![(*w).to_owned()];
        for (i, config) in configs.iter().enumerate() {
            let rate = lab
                .engine_stats(w, config.clone(), ENGINE_STUDY_INSTRUCTIONS)
                .overflows_per_million_accesses();
            sums[i] += rate;
            cells.push(format!("{rate:.1}"));
        }
        table.row(cells);
    }
    let n = workloads.len() as f64;
    table.row(vec![
        "Average".to_owned(),
        format!("{:.1}", sums[0] / n),
        format!("{:.1}", sums[1] / n),
        format!("{:.1}", sums[2] / n),
    ]);

    let mut out =
        String::from("Fig 11 — overflows per million memory accesses (ZCC-only morphable)\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nSC-128/SC-64 average ratio:        {:.1}x (paper: 7.4x more)\n\
         SC-64/MorphCtr(ZCC) average ratio: {:.1}x (paper: 1.4x fewer for MorphCtr)\n\
         SC-128/MorphCtr(ZCC) average:      {:.1}x (paper: 10.2x)\n",
        sums[1] / sums[0].max(1e-9),
        sums[0] / sums[2].max(1e-9),
        sums[1] / sums[2].max(1e-9),
    ));
    out
}

/// Declares Fig 11's run-set: engine studies of every rate workload under
/// SC-64, SC-128, and ZCC-only MorphCtr.
pub fn plan(_setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::rate_workloads() {
        for tree in [
            TreeConfig::sc64(),
            TreeConfig::sc128(),
            TreeConfig::morphtree_zcc_only(),
        ] {
            sweep.engine(w, tree, ENGINE_STUDY_INSTRUCTIONS);
        }
    }
}
