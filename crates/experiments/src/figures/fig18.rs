//! Fig 18 — system power, execution time, energy and energy-delay product,
//! normalized to SC-64.
//!
//! Paper result: MorphCtr-128 cuts execution time 6%, raising average
//! power 4% (same work, less time) but saving 2.7% energy and 8.8% EDP;
//! VAULT costs 3.2% energy and 10.5% EDP.

use morphtree_core::tree::TreeConfig;

use crate::report::{geomean, pct_delta, Table};
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 18.
pub fn run(lab: &mut Lab) -> String {
    let workloads = Setup::all_workloads();
    let configs = [TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()];

    let mut table = Table::new(vec!["config", "power", "exec time", "energy", "EDP"]);
    let mut summary = Vec::new();
    for config in &configs {
        let mut power = Vec::new();
        let mut time = Vec::new();
        let mut energy = Vec::new();
        let mut edp = Vec::new();
        for w in &workloads {
            let base = lab.result(w, Some(TreeConfig::sc64())).energy;
            let e = lab.result(w, Some(config.clone())).energy;
            // `power_w`/`edp` are `None` for zero-cycle runs; such a run
            // has no meaningful time/energy ratio either, so skip the
            // degenerate pair instead of poisoning the geomean with NaN.
            let (Some(p), Some(bp), Some(ed), Some(bed)) =
                (e.power_w(), base.power_w(), e.edp(), base.edp())
            else {
                continue;
            };
            power.push(p / bp);
            time.push(e.time_s / base.time_s);
            energy.push(e.energy_j() / base.energy_j());
            edp.push(ed / bed);
        }
        let row = [geomean(&power), geomean(&time), geomean(&energy), geomean(&edp)];
        table.row(vec![
            config.name().to_owned(),
            format!("{:.3}", row[0]),
            format!("{:.3}", row[1]),
            format!("{:.3}", row[2]),
            format!("{:.3}", row[3]),
        ]);
        summary.push((config.name().to_owned(), row));
    }

    let mut out =
        String::from("Fig 18 — power / time / energy / EDP normalized to SC-64 (geomean)\n\n");
    out.push_str(&table.render());
    let morph = &summary[2].1;
    out.push_str(&format!(
        "\nMorphCtr-128: time {}, power {}, energy {}, EDP {}\n\
         Paper:        time -6%,  power +4%,  energy -2.7%, EDP -8.8%\n",
        pct_delta(morph[1]),
        pct_delta(morph[0]),
        pct_delta(morph[2]),
        pct_delta(morph[3]),
    ));
    out
}

/// Declares Fig 18's run-set: the same runs as Fig 16 (energy is read
/// from the same simulations).
pub fn plan(setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::all_workloads() {
        for tree in [TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()] {
            sweep.sim(setup, w, Some(tree));
        }
    }
}
