//! One module per reproduced table/figure. Every module exposes
//! `run(&mut Lab) -> String`, which regenerates the result and returns the
//! formatted report (the binaries print it and save it under `results/`).
//! Modules that simulate also expose `plan(&Setup, &mut Sweep)`, declaring
//! their full run-set up front so the [`crate::driver`] can batch-prefetch
//! the union across worker threads before any figure renders.

pub mod extensions;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod table3;

use crate::runner::{Lab, Setup, Sweep};

/// Instructions per core for the timing-free counter-behaviour studies
/// (Fig 7/11/14); longer than timing runs so overflow rates stabilize.
pub const ENGINE_STUDY_INSTRUCTIONS: u64 = 4_000_000;

/// One reproducible artifact: its output name, run-set plan, and renderer.
pub struct Figure {
    /// Output name (report saved as `results/<name>.txt`).
    pub name: &'static str,
    /// Declares the runs the figure needs (a no-op for analytic figures
    /// computed without simulation).
    pub plan: fn(&Setup, &mut Sweep),
    /// Renders the figure; planned runs are read back from the lab memo.
    pub run: fn(&mut Lab) -> String,
}

/// No-op plan for analytic figures (geometry/model computations only).
fn plan_nothing(_setup: &Setup, _sweep: &mut Sweep) {}

/// Every reproduced figure, in `runall` order.
#[must_use]
pub fn catalog() -> Vec<Figure> {
    vec![
        Figure { name: "table3", plan: plan_nothing, run: table3::run },
        Figure { name: "fig17", plan: plan_nothing, run: fig17::run },
        Figure { name: "fig06", plan: plan_nothing, run: fig06::run },
        Figure { name: "fig10", plan: plan_nothing, run: fig10::run },
        Figure { name: "fig15", plan: fig15::plan, run: fig15::run },
        Figure { name: "fig16", plan: fig16::plan, run: fig16::run },
        Figure { name: "fig18", plan: fig18::plan, run: fig18::run },
        Figure { name: "fig05", plan: fig05::plan, run: fig05::run },
        Figure { name: "fig19", plan: fig19::plan, run: fig19::run },
        Figure { name: "fig20", plan: fig20::plan, run: fig20::run },
        Figure { name: "fig07", plan: fig07::plan, run: fig07::run },
        Figure { name: "fig11", plan: fig11::plan, run: fig11::run },
        Figure { name: "fig14", plan: fig14::plan, run: fig14::run },
        Figure { name: "ext_scaling", plan: plan_nothing, run: extensions::scaling },
        Figure {
            name: "ext_single_base",
            plan: extensions::plan_single_base,
            run: extensions::single_base,
        },
        Figure { name: "ext_sgx", plan: extensions::plan_sgx, run: extensions::sgx },
        Figure {
            name: "ext_speculation",
            plan: extensions::plan_speculation,
            run: extensions::speculation,
        },
        Figure {
            name: "ext_replacement",
            plan: extensions::plan_replacement,
            run: extensions::replacement,
        },
        Figure { name: "ext_scheduler", plan: plan_nothing, run: extensions::scheduler },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_complete() {
        let catalog = catalog();
        assert_eq!(catalog.len(), 19);
        let mut names: Vec<&str> = catalog.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "duplicate figure names");
    }

    #[test]
    fn plans_declare_runs_for_simulating_figures() {
        let setup = Setup { scale: 256, ..Setup::default() };
        for figure in catalog() {
            let mut sweep = Sweep::new();
            (figure.plan)(&setup, &mut sweep);
            match figure.name {
                "table3" | "fig17" | "fig06" | "fig10" | "ext_scaling"
                | "ext_scheduler" => {
                    assert!(sweep.is_empty(), "{} should be analytic", figure.name);
                }
                _ => {
                    assert!(!sweep.is_empty(), "{} declared no runs", figure.name);
                }
            }
        }
    }

    #[test]
    fn runall_union_is_deduplicated_across_figures() {
        // Fig 15/16/18 share their SC-64/VAULT/MorphCtr runs; the union
        // plan must collapse them.
        let setup = Setup::default();
        let mut union = Sweep::new();
        for figure in catalog() {
            (figure.plan)(&setup, &mut union);
        }
        let mut separate = 0;
        for figure in catalog() {
            let mut sweep = Sweep::new();
            (figure.plan)(&setup, &mut sweep);
            separate += sweep.len();
        }
        assert!(
            union.len() < separate,
            "union {} !< sum of parts {}",
            union.len(),
            separate
        );
    }
}
