//! One module per reproduced table/figure. Every module exposes
//! `run(&mut Lab) -> String`, which regenerates the result and returns the
//! formatted report (the binaries print it and save it under `results/`).

pub mod extensions;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod table3;

/// Instructions per core for the timing-free counter-behaviour studies
/// (Fig 7/11/14); longer than timing runs so overflow rates stabilize.
pub const ENGINE_STUDY_INSTRUCTIONS: u64 = 4_000_000;
