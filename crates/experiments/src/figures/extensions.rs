//! Extension experiments beyond the paper's figures (DESIGN.md §7):
//!
//! - [`speculation`] — PoisonIvy-style safe speculation vs the compact
//!   tree: §VIII-B2 argues speculation hides latency but not bandwidth;
//!   this experiment shows both effects side by side.
//! - [`replacement`] — metadata type-aware cache replacement (Lee et al.)
//!   combined with each tree design.
//! - [`single_base`] — footnote 5: single-base vs double-base rebasing.
//! - [`sgx`] — the commercial SGX 8-ary design on the full-system
//!   simulator, completing Table III with a performance column.
//! - [`scaling`] — tree geometry from 4 GB to 64 GB: the 4x/8.5x size
//!   ratios are scale-invariant.

use morphtree_core::metadata::{MacMode, MetadataEngine, ReplacementPolicy, VerificationMode};
use morphtree_core::tree::{TreeConfig, TreeGeometry};
use morphtree_sim::controller::{MemoryController, SchedulerConfig};
use morphtree_sim::dram::{DramGeometry, DramModel, DramTiming};

use crate::figures::ENGINE_STUDY_INSTRUCTIONS;
use crate::report::{geomean, pct_delta, Table};
use crate::runner::{Lab, Setup, Sweep};

/// A representative workload subset (one per pattern class) for the
/// extension sweeps, keeping them fast.
fn subset() -> Vec<&'static str> {
    vec!["mcf", "omnetpp", "GemsFDTD", "libquantum", "gcc", "pr-twit", "bc-web"]
}

/// The speculation ablation's four configurations.
fn speculation_matrix() -> [(TreeConfig, VerificationMode, &'static str); 4] {
    [
        (TreeConfig::sc64(), VerificationMode::Strict, "SC-64 strict"),
        (TreeConfig::sc64(), VerificationMode::Speculative, "SC-64 speculative"),
        (TreeConfig::morphtree(), VerificationMode::Strict, "MorphCtr strict"),
        (TreeConfig::morphtree(), VerificationMode::Speculative, "MorphCtr speculative"),
    ]
}

/// PoisonIvy-style speculation ablation.
pub fn speculation(lab: &mut Lab) -> String {
    let workloads = subset();
    let cache = lab.setup().metadata_cache_bytes();

    let mut rows = Vec::new();
    for (tree, verification, label) in speculation_matrix() {
        let mut rel = Vec::new();
        let mut traffic = Vec::new();
        for w in &workloads {
            let base = lab.result(w, Some(TreeConfig::sc64())).ipc();
            let r = lab.result_full(
                w,
                Some(tree.clone()),
                cache,
                MacMode::Inline,
                verification,
                ReplacementPolicy::default(),
            );
            rel.push(r.ipc() / base);
            traffic.push(r.traffic_per_data_access());
        }
        rows.push((label, geomean(&rel), traffic.iter().sum::<f64>() / traffic.len() as f64));
    }

    let mut table = Table::new(vec!["config", "perf vs SC-64 strict", "traffic/access"]);
    for (label, perf, traffic) in &rows {
        table.row(vec![(*label).to_owned(), format!("{perf:.3}"), format!("{traffic:.3}")]);
    }
    let mut out = String::from(
        "EXT speculation — safe speculation hides latency, not bandwidth (§VIII-B2)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nSpeculation buys SC-64 {} but leaves its traffic at {:.3} accesses/access;\n\
         the compact MorphTree removes the traffic itself ({:.3}), and the two compose:\n\
         MorphCtr+speculation reaches {}.\n",
        pct_delta(rows[1].1 / rows[0].1),
        rows[1].2,
        rows[3].2,
        pct_delta(rows[3].1),
    ));
    out
}

/// Metadata type-aware replacement ablation.
pub fn replacement(lab: &mut Lab) -> String {
    let workloads = subset();
    let cache = lab.setup().metadata_cache_bytes();

    let mut table = Table::new(vec!["config", "LRU", "level-aware", "gain"]);
    let mut out =
        String::from("EXT replacement — type-aware metadata-cache victim selection\n\n");
    for tree in [TreeConfig::sc64(), TreeConfig::morphtree()] {
        let mut per_policy = Vec::new();
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::LevelAware] {
            let mut rel = Vec::new();
            for w in &workloads {
                let base = lab.result(w, Some(TreeConfig::sc64())).ipc();
                let r = lab.result_full(
                    w,
                    Some(tree.clone()),
                    cache,
                    MacMode::Inline,
                    VerificationMode::default(),
                    policy,
                );
                rel.push(r.ipc() / base);
            }
            per_policy.push(geomean(&rel));
        }
        table.row(vec![
            tree.name().to_owned(),
            format!("{:.3}", per_policy[0]),
            format!("{:.3}", per_policy[1]),
            pct_delta(per_policy[1] / per_policy[0]),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nType-aware replacement mainly helps the *large* tree: protecting SC-64's\n\
         upper levels recovers part of its deficit (the paper cites Lee et al. as an\n\
         effective orthogonal technique), while the already-compact MorphTree has\n\
         little to protect — its upper levels fit in the cache regardless.\n",
    );
    out
}

/// Footnote 5: single-base vs double-base rebasing.
pub fn single_base(lab: &mut Lab) -> String {
    let workloads = Setup::rate_workloads();
    let configs = [
        TreeConfig::morphtree_zcc_only(),
        TreeConfig::morphtree_single_base(),
        TreeConfig::morphtree(),
    ];
    let mut table = Table::new(vec![
        "workload",
        "ZCC-only",
        "single-base",
        "sb rebases/M",
        "double-base",
        "db rebases/M",
    ]);
    let mut sums = [0.0f64; 3];
    let mut rebase_sums = [0.0f64; 2];
    for w in &workloads {
        let mut cells = vec![(*w).to_owned()];
        for (i, config) in configs.iter().enumerate() {
            let stats = lab.engine_stats(w, config.clone(), ENGINE_STUDY_INSTRUCTIONS);
            let rate = stats.overflows_per_million_accesses();
            let rebases: u64 = stats.rebases_by_level.iter().sum();
            let rebases_per_m = rebases as f64 * 1e6 / stats.total_accesses().max(1) as f64;
            sums[i] += rate;
            cells.push(format!("{rate:.1}"));
            if i > 0 {
                rebase_sums[i - 1] += rebases_per_m;
                cells.push(format!("{rebases_per_m:.1}"));
            }
        }
        table.row(cells);
    }
    let n = workloads.len() as f64;
    table.row(vec![
        "Average".to_owned(),
        format!("{:.1}", sums[0] / n),
        format!("{:.1}", sums[1] / n),
        format!("{:.1}", rebase_sums[0] / n),
        format!("{:.1}", sums[2] / n),
        format!("{:.1}", rebase_sums[1] / n),
    ]);
    let mut out = String::from(
        "EXT single-base — footnote 5: overflows/M accesses, single vs double base\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nSingle-base rebasing requires *all 128* minors non-zero, which with 4 KB\n\
         pages (out-of-phase 64-counter halves) almost never holds at the tree\n\
         levels where overflows concentrate — so it degenerates to ZCC-only there\n\
         ({:.1} vs {:.1}/M; {:.1} rebases/M vs the double-base design's {:.1}).\n\
         The double-base design rebases per 64-counter set instead; on our traces\n\
         its MCR set dynamics cost some extra overflows ({:.1}/M), which the\n\
         micro-benchmark `single_base_loses_to_double_base_on_out_of_phase_halves`\n\
         shows is repaid in re-encryption *span* (64 vs 128 children per event).\n",
        sums[1] / n,
        sums[0] / n,
        rebase_sums[0] / n,
        rebase_sums[1] / n,
        sums[2] / n,
    ));
    out
}

/// Commercial SGX on the full-system simulator.
pub fn sgx(lab: &mut Lab) -> String {
    let workloads = subset();
    let mut rel = Vec::new();
    let mut traffic = Vec::new();
    for w in &workloads {
        let base = lab.result(w, Some(TreeConfig::sc64())).ipc();
        let r = lab.result_with(
            w,
            Some(TreeConfig::sgx()),
            lab.setup().metadata_cache_bytes(),
            MacMode::Inline,
        );
        let ipc = r.ipc();
        let t = r.traffic_per_data_access();
        rel.push(ipc / base);
        traffic.push(t);
    }
    let g = geomean(&rel);
    let t = traffic.iter().sum::<f64>() / traffic.len() as f64;
    let geometry = TreeGeometry::new(&TreeConfig::sgx(), 16 << 30);
    format!(
        "EXT sgx — the commercial 8-ary SGX MEE on the same system\n\n\
         performance vs SC-64 (geomean, {} workloads): {:.3} ({})\n\
         traffic per data access (mean):               {:.3}\n\
         tree at 16 GB: {} levels, {:.0} MB — the cacheability cliff the paper's\n\
         compact designs exist to avoid (Table III's 292 MB row, now with a\n\
         performance column).\n",
        rel.len(),
        g,
        pct_delta(g),
        t,
        geometry.height(),
        geometry.tree_bytes() as f64 / (1 << 20) as f64,
    )
}

/// Geometry scaling 4–64 GB.
pub fn scaling(_lab: &mut Lab) -> String {
    let mut table = Table::new(vec![
        "memory", "SC-64 tree", "levels", "MorphTree", "levels", "ratio",
    ]);
    for gib in [4u64, 8, 16, 32, 64] {
        let sc64 = TreeGeometry::new(&TreeConfig::sc64(), gib << 30);
        let morph = TreeGeometry::new(&TreeConfig::morphtree(), gib << 30);
        table.row(vec![
            format!("{gib} GB"),
            format!("{:.2} MB", sc64.tree_bytes() as f64 / (1 << 20) as f64),
            format!("{}", sc64.height()),
            format!("{:.2} MB", morph.tree_bytes() as f64 / (1 << 20) as f64),
            format!("{}", morph.height()),
            format!("{:.1}x", sc64.tree_bytes() as f64 / morph.tree_bytes() as f64),
        ]);
    }
    let mut out = String::from("EXT scaling — tree size vs memory size (exact)\n\n");
    out.push_str(&table.render());
    out.push_str(
        "\nThe 4x compaction is scale-invariant: it comes from arity, not tuning —\n\
         the scalability argument of the paper's abstract.\n",
    );
    out
}

/// FR-FCFS scheduling vs arrival-order service on identical secure-memory
/// access streams.
pub fn scheduler(lab: &mut Lab) -> String {
    let mut table = Table::new(vec![
        "workload",
        "arrival finish",
        "FR-FCFS finish",
        "speedup",
        "hit-rate arr",
        "hit-rate frfcfs",
    ]);
    let setup = lab.setup().clone();
    for name in ["mcf", "libquantum", "omnetpp"] {
        // Build the secure-memory access stream once.
        let mut workload = setup.workload(name).unwrap_or_else(|e| panic!("{e}"));
        let mut engine = MetadataEngine::new(
            TreeConfig::sc64(),
            setup.memory_bytes(),
            setup.metadata_cache_bytes(),
            MacMode::Inline,
        );
        let mut stream = Vec::new();
        let mut accesses = Vec::new();
        let mut clock = 0u64;
        for _ in 0..40_000 {
            let rec = workload.next_record(0);
            clock += u64::from(rec.gap.min(64)) + 1;
            accesses.clear();
            if rec.is_write {
                engine.write(rec.line, &mut accesses);
            } else {
                engine.read(rec.line, &mut accesses);
            }
            for a in &accesses {
                stream.push((clock, a.addr, a.is_write));
            }
        }

        let timing = DramTiming { t_refi: 0, ..DramTiming::default() };
        let mut arrival = DramModel::new(DramGeometry::default(), timing);
        let mut arrival_finish = 0u64;
        for &(at, addr, is_write) in &stream {
            arrival_finish = arrival_finish.max(arrival.request(at, addr, is_write));
        }

        let mut frfcfs =
            MemoryController::new(DramGeometry::default(), timing, SchedulerConfig::default());
        let mut ids = Vec::with_capacity(stream.len());
        for chunk in stream.chunks(64) {
            // Enqueue in bursts of 64 — the controller reorders within its
            // queues, as a real MC reorders within its request window.
            for &(at, addr, is_write) in chunk {
                ids.push(frfcfs.enqueue(at, addr, is_write));
            }
            frfcfs.drain_all();
        }
        let frfcfs_finish = ids
            .iter()
            .map(|&id| frfcfs.complete(id))
            .max()
            .expect("non-empty stream");

        table.row(vec![
            name.to_owned(),
            format!("{arrival_finish}"),
            format!("{frfcfs_finish}"),
            format!("{:.2}x", arrival_finish as f64 / frfcfs_finish as f64),
            arrival
                .stats()
                .row_hit_rate()
                .map_or_else(|| "n/a".to_owned(), |r| format!("{r:.2}")),
            frfcfs
                .stats()
                .row_hit_rate()
                .map_or_else(|| "n/a".to_owned(), |r| format!("{r:.2}")),
        ]);
    }
    let mut out = String::from(
        "EXT scheduler — FR-FCFS + write-drain vs arrival-order DRAM service\n\n",
    );
    out.push_str(&table.render());
    out.push_str(
        "\nThe discrete-event controller reorders within its request window (row hits\n\
         first, writes drained in batches), recovering row locality the in-order\n\
         model loses; both models agree on the traffic itself, so the paper-shape\n\
         results are insensitive to the choice (see DESIGN.md).\n",
    );
    out
}

/// Declares the speculation ablation's run-set (plus its SC-64 baseline).
pub fn plan_speculation(setup: &Setup, sweep: &mut Sweep) {
    let cache = setup.metadata_cache_bytes();
    for w in subset() {
        sweep.sim(setup, w, Some(TreeConfig::sc64()));
        for (tree, verification, _) in speculation_matrix() {
            sweep.sim_full(
                w,
                Some(tree),
                cache,
                MacMode::Inline,
                verification,
                ReplacementPolicy::default(),
            );
        }
    }
}

/// Declares the replacement ablation's run-set (plus its SC-64 baseline).
pub fn plan_replacement(setup: &Setup, sweep: &mut Sweep) {
    let cache = setup.metadata_cache_bytes();
    for w in subset() {
        sweep.sim(setup, w, Some(TreeConfig::sc64()));
        for tree in [TreeConfig::sc64(), TreeConfig::morphtree()] {
            for policy in [ReplacementPolicy::Lru, ReplacementPolicy::LevelAware] {
                sweep.sim_full(
                    w,
                    Some(tree.clone()),
                    cache,
                    MacMode::Inline,
                    VerificationMode::default(),
                    policy,
                );
            }
        }
    }
}

/// Declares the single-base study's run-set: engine studies of every rate
/// workload under the three MorphCtr variants.
pub fn plan_single_base(_setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::rate_workloads() {
        for tree in [
            TreeConfig::morphtree_zcc_only(),
            TreeConfig::morphtree_single_base(),
            TreeConfig::morphtree(),
        ] {
            sweep.engine(w, tree, ENGINE_STUDY_INSTRUCTIONS);
        }
    }
}

/// Declares the SGX study's run-set (plus its SC-64 baseline).
pub fn plan_sgx(setup: &Setup, sweep: &mut Sweep) {
    for w in subset() {
        sweep.sim(setup, w, Some(TreeConfig::sc64()));
        sweep.sim(setup, w, Some(TreeConfig::sgx()));
    }
}
