//! Fig 19 — sensitivity to metadata-cache size: MorphCtr-128 vs SC-64 at
//! 64 KB / 128 KB / 256 KB (scaled like everything else).
//!
//! Paper result: the smaller the cache, the bigger MorphCtr's advantage —
//! +11% at 64 KB, +6.3% at 128 KB, +3.3% at 256 KB — and MorphCtr needs
//! only *half* the cache to match SC-64.

use morphtree_core::metadata::MacMode;
use morphtree_core::tree::TreeConfig;

use crate::report::{geomean, pct_delta, Table};
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 19.
pub fn run(lab: &mut Lab) -> String {
    let workloads = Setup::all_workloads();
    let sizes: [(u64, &str); 3] =
        [(64 * 1024, "64 KB"), (128 * 1024, "128 KB"), (256 * 1024, "256 KB")];

    let mut table = Table::new(vec!["cache (paper-scale)", "MorphCtr vs SC-64"]);
    let mut speedups = Vec::new();
    for (paper_bytes, label) in sizes {
        let cache = lab.setup().scaled_cache(paper_bytes);
        let mut rel = Vec::new();
        for w in &workloads {
            let base = lab
                .result_with(w, Some(TreeConfig::sc64()), cache, MacMode::Inline)
                .ipc();
            let morph = lab
                .result_with(w, Some(TreeConfig::morphtree()), cache, MacMode::Inline)
                .ipc();
            rel.push(morph / base);
        }
        let g = geomean(&rel);
        speedups.push(g);
        table.row(vec![label.to_owned(), format!("{g:.3} ({})", pct_delta(g))]);
    }

    // The "half the cache" claim: MorphCtr at 64 KB vs SC-64 at 128 KB.
    let half_cache = lab.setup().scaled_cache(64 * 1024);
    let full_cache = lab.setup().scaled_cache(128 * 1024);
    let mut rel = Vec::new();
    for w in &workloads {
        let sc64 = lab
            .result_with(w, Some(TreeConfig::sc64()), full_cache, MacMode::Inline)
            .ipc();
        let morph = lab
            .result_with(w, Some(TreeConfig::morphtree()), half_cache, MacMode::Inline)
            .ipc();
        rel.push(morph / sc64);
    }
    let half = geomean(&rel);

    let mut out = String::from("Fig 19 — metadata-cache size sensitivity (geomean)\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nMorphCtr @ 64 KB vs SC-64 @ 128 KB: {:.3} ({}) — paper: >= 1 (half the cache)\n\
         Paper speedups: 11% @ 64 KB, 6.3% @ 128 KB, 3.3% @ 256 KB\n\
         (monotone: advantage grows as the cache shrinks: {})\n",
        half,
        pct_delta(half),
        if speedups[0] > speedups[1] && speedups[1] > speedups[2] { "yes" } else { "no" },
    ));
    out
}

/// Declares Fig 19's run-set: all 28 workloads under SC-64 and
/// MorphCtr-128 at each scaled cache size (the half-cache claim reuses
/// the 64 KB and 128 KB runs).
pub fn plan(setup: &Setup, sweep: &mut Sweep) {
    for paper_bytes in [64 * 1024, 128 * 1024, 256 * 1024] {
        let cache = setup.scaled_cache(paper_bytes);
        for w in Setup::all_workloads() {
            sweep.sim_with(w, Some(TreeConfig::sc64()), cache, MacMode::Inline);
            sweep.sim_with(w, Some(TreeConfig::morphtree()), cache, MacMode::Inline);
        }
    }
}
