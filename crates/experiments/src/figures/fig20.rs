//! Fig 20 — sensitivity to MAC organization: separate MACs (one extra
//! access per data access) vs Synergy-style in-line MACs.
//!
//! Paper result: separate MACs slow both designs by ~29%; MorphCtr's
//! speedup over SC-64 is +4.7% with separate MACs vs +6.3% in-line.

use morphtree_core::metadata::MacMode;
use morphtree_core::tree::TreeConfig;

use crate::report::{geomean, pct_delta, Table};
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 20.
pub fn run(lab: &mut Lab) -> String {
    let workloads = Setup::all_workloads();
    let cache = lab.setup().metadata_cache_bytes();
    let mut rel = |tree: TreeConfig, mac: MacMode| -> f64 {
        let vals: Vec<f64> = workloads
            .iter()
            .map(|w| {
                let base = lab
                    .result_with(w, Some(TreeConfig::sc64()), cache, MacMode::Inline)
                    .ipc();
                lab.result_with(w, Some(tree.clone()), cache, mac).ipc() / base
            })
            .collect();
        geomean(&vals)
    };

    let sc64_sep = rel(TreeConfig::sc64(), MacMode::Separate);
    let morph_sep = rel(TreeConfig::morphtree(), MacMode::Separate);
    let morph_inline = rel(TreeConfig::morphtree(), MacMode::Inline);

    let mut table = Table::new(vec!["config", "Separate MACs", "In-Line MACs"]);
    table.row(vec![
        "SC-64".to_owned(),
        format!("{sc64_sep:.3}"),
        "1.000".to_owned(),
    ]);
    table.row(vec![
        "MorphCtr-128".to_owned(),
        format!("{morph_sep:.3}"),
        format!("{morph_inline:.3}"),
    ]);

    let mut out = String::from(
        "Fig 20 — MAC organization sensitivity (geomean, normalized to SC-64 in-line)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nSeparate-MAC slowdown for SC-64:       {} (paper: -29%)\n\
         MorphCtr speedup with separate MACs:   {} (paper: +4.7%)\n\
         MorphCtr speedup with in-line MACs:    {} (paper: +6.3%)\n",
        pct_delta(sc64_sep),
        pct_delta(morph_sep / sc64_sep),
        pct_delta(morph_inline),
    ));
    out
}

/// Declares Fig 20's run-set: all 28 workloads under SC-64 and
/// MorphCtr-128 with separate and in-line MACs.
pub fn plan(setup: &Setup, sweep: &mut Sweep) {
    let cache = setup.metadata_cache_bytes();
    for w in Setup::all_workloads() {
        sweep.sim_with(w, Some(TreeConfig::sc64()), cache, MacMode::Inline);
        sweep.sim_with(w, Some(TreeConfig::sc64()), cache, MacMode::Separate);
        sweep.sim_with(w, Some(TreeConfig::morphtree()), cache, MacMode::Separate);
        sweep.sim_with(w, Some(TreeConfig::morphtree()), cache, MacMode::Inline);
    }
}
