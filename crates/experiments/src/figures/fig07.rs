//! Fig 7 — histogram of the "fraction of counter-cacheline used" at the
//! moment an SC-64 line overflows, pooled over all workloads.
//!
//! Paper result: the distribution is bimodal — overflows strike either
//! lines with < 25% of their counters in use (largely integrity-tree
//! level-1/2 counters, thanks to random page allocation) or fully-used
//! lines (largely encryption counters of streaming applications).

use morphtree_core::metadata::stats::USED_FRACTION_BINS;
use morphtree_core::tree::TreeConfig;

use crate::figures::ENGINE_STUDY_INSTRUCTIONS;
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 7.
pub fn run(lab: &mut Lab) -> String {
    let mut histogram = [0u64; USED_FRACTION_BINS];
    let mut total_overflows = 0u64;
    for w in Setup::rate_workloads() {
        let stats = lab.engine_stats(w, TreeConfig::sc64(), ENGINE_STUDY_INSTRUCTIONS);
        for (acc, &v) in histogram.iter_mut().zip(&stats.overflow_used_histogram) {
            *acc += v;
        }
        total_overflows += stats.total_overflows();
    }

    let mut out = String::from(
        "Fig 7 — fraction of counter-cacheline used at overflow (SC-64, all workloads)\n\n",
    );
    if total_overflows == 0 {
        out.push_str("no overflows observed (increase the instruction budget)\n");
        return out;
    }
    let mut low_quarter = 0.0;
    let mut top_eighth = 0.0;
    for (bin, &count) in histogram.iter().enumerate() {
        let fraction = count as f64 / total_overflows as f64;
        let lo = bin as f64 / USED_FRACTION_BINS as f64;
        let hi = (bin + 1) as f64 / USED_FRACTION_BINS as f64;
        if hi <= 0.25 {
            low_quarter += fraction;
        }
        if lo >= 0.875 {
            top_eighth += fraction;
        }
        let bar = "#".repeat((fraction * 200.0).round() as usize);
        out.push_str(&format!("{lo:>5.2}-{hi:<5.2} {fraction:>6.3} {bar}\n"));
    }
    out.push_str(&format!(
        "\ntotal overflows: {total_overflows}\n\
         mass at <25% of line used:  {:.1}% (paper: sparse tree-counter overflows)\n\
         mass at >87.5% of line used: {:.1}% (paper: dense encryption-counter overflows)\n\
         Paper: 27 of 28 workloads put >75% of overflow mass in these two regions.\n",
        low_quarter * 100.0,
        top_eighth * 100.0
    ));
    out
}

/// Declares Fig 7's run-set: engine studies of every rate workload under
/// SC-64.
pub fn plan(_setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::rate_workloads() {
        sweep.engine(w, TreeConfig::sc64(), ENGINE_STUDY_INSTRUCTIONS);
    }
}
