//! Fig 6 — analytic "time to overflow" for split counters: writes tolerated
//! before an overflow as the fraction of the counter cacheline used varies
//! (uniform writes to the used fraction).
//!
//! Paper result: SC-64 worst case 64 writes, best case 2^12; SC-128 is 8x
//! worse per used counter (3-bit vs 6-bit minors).

use morphtree_core::counters::analytic::split_writes_per_overflow;
use morphtree_core::counters::split::SplitConfig;

use crate::report::Table;
use crate::runner::Lab;

/// Regenerates Fig 6.
pub fn run(_lab: &mut Lab) -> String {
    let sc64 = SplitConfig::with_arity(64);
    let sc128 = SplitConfig::with_arity(128);
    let mut table = Table::new(vec![
        "fraction used",
        "SC-64 writes/ovf",
        "log2",
        "SC-128 writes/ovf",
        "log2",
    ]);
    for percent in [2u32, 5, 10, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100] {
        let f = f64::from(percent) / 100.0;
        let w64 = split_writes_per_overflow(sc64, f);
        let w128 = split_writes_per_overflow(sc128, f);
        table.row(vec![
            format!("{percent}%"),
            format!("{w64}"),
            format!("{:.1}", (w64 as f64).log2()),
            format!("{w128}"),
            format!("{:.1}", (w128 as f64).log2()),
        ]);
    }
    let mut out = String::from(
        "Fig 6 — writes tolerated before overflow (split counters, uniform writes)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: SC-64 spans 2^6..2^12; SC-128 tolerates 8x fewer writes per used\n\
         counter because its minors are 3 bits instead of 6.\n",
    );
    out
}
