//! Fig 16 — memory-traffic breakdown per data access, by Fig 16's
//! categories, for VAULT / SC-64 / MorphCtr-128.
//!
//! Paper result: MorphCtr-128 needs 0.5 extra accesses per data access vs
//! SC-64's 0.6 (one fewer tree level to miss on), with overflow handling
//! costs on par (0.07 vs 0.06); VAULT needs 0.74 counter accesses — 9.7%
//! more total traffic than SC-64.

use morphtree_core::metadata::AccessCategory;
use morphtree_core::tree::TreeConfig;

use crate::report::Table;
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 16.
pub fn run(lab: &mut Lab) -> String {
    let workloads = Setup::all_workloads();
    let configs = [TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()];

    let mut table = Table::new(vec![
        "workload", "config", "Ctr_Encr", "Ctr_1", "Ctr_2", "Ctr_3&Up", "Overflow", "Total",
    ]);
    let mut sums = vec![[0.0f64; 6]; configs.len()];
    for w in &workloads {
        for (ci, config) in configs.iter().enumerate() {
            let stats = lab.result(w, Some(config.clone())).engine.clone();
            let row = [
                stats.category_per_data_access(AccessCategory::CtrEncr),
                stats.category_per_data_access(AccessCategory::Ctr1),
                stats.category_per_data_access(AccessCategory::Ctr2),
                stats.category_per_data_access(AccessCategory::Ctr3Up),
                stats.category_per_data_access(AccessCategory::Overflow),
                stats.traffic_per_data_access(),
            ];
            for (acc, v) in sums[ci].iter_mut().zip(row) {
                *acc += v;
            }
            table.row(vec![
                (*w).to_owned(),
                config.name().to_owned(),
                format!("{:.3}", row[0]),
                format!("{:.3}", row[1]),
                format!("{:.3}", row[2]),
                format!("{:.3}", row[3]),
                format!("{:.3}", row[4]),
                format!("{:.3}", row[5]),
            ]);
        }
    }
    let n = workloads.len() as f64;
    for (ci, config) in configs.iter().enumerate() {
        table.row(vec![
            "AVERAGE".to_owned(),
            config.name().to_owned(),
            format!("{:.3}", sums[ci][0] / n),
            format!("{:.3}", sums[ci][1] / n),
            format!("{:.3}", sums[ci][2] / n),
            format!("{:.3}", sums[ci][3] / n),
            format!("{:.3}", sums[ci][4] / n),
            format!("{:.3}", sums[ci][5] / n),
        ]);
    }

    let mut out = String::from("Fig 16 — memory accesses per data access, by category\n\n");
    out.push_str(&table.render());
    let vault_total = sums[0][5] / n;
    let sc64_total = sums[1][5] / n;
    let morph_total = sums[2][5] / n;
    out.push_str(&format!(
        "\nAverage traffic vs SC-64: VAULT {:+.1}% (paper +9.7%), MorphCtr {:+.1}% (paper -8.8%)\n",
        (vault_total / sc64_total - 1.0) * 100.0,
        (morph_total / sc64_total - 1.0) * 100.0,
    ));
    out
}

/// Declares Fig 16's run-set: all 28 workloads under VAULT, SC-64, and
/// MorphCtr-128.
pub fn plan(setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::all_workloads() {
        for tree in [TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()] {
            sweep.sim(setup, w, Some(tree));
        }
    }
}
