//! Fig 17 (and Fig 1) — integrity-tree levels and per-level footprints for
//! VAULT, SC-64 and MorphCtr-128 at 16 GB, computed exactly.
//!
//! Paper result: VAULT needs 6 levels (8.5 MB), SC-64 4 levels (4 MB),
//! MorphCtr-128 only 3 levels (1 MB).

use morphtree_core::tree::{TreeConfig, TreeGeometry};

use crate::report::Table;
use crate::runner::Lab;

fn human(bytes: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    if bytes >= GIB {
        format!("{:.0} GB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.0} MB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.0} KB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Regenerates Fig 17 (exact, full 16 GB geometry).
pub fn run(_lab: &mut Lab) -> String {
    let memory = 16u64 << 30;
    let mut out = String::from("Fig 17 — integrity-tree geometry at 16 GB (exact)\n\n");
    for config in [TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()] {
        let geometry = TreeGeometry::new(&config, memory);
        let mut table = Table::new(vec!["level", "arity", "lines", "size"]);
        table.row(vec![
            "Encryption ctrs".to_owned(),
            format!("{}", geometry.levels()[0].arity),
            format!("{}", geometry.levels()[0].lines),
            human(geometry.enc_bytes()),
        ]);
        for level in &geometry.levels()[1..] {
            table.row(vec![
                format!("Tree level {}", level.level),
                format!("{}", level.arity),
                format!("{}", level.lines),
                human(level.bytes()),
            ]);
        }
        out.push_str(&format!(
            "{} — {} tree levels, total tree {}\n",
            config.name(),
            geometry.height(),
            human(geometry.tree_bytes())
        ));
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "Paper: VAULT 6 levels (8 MB + 512 KB + 32 KB + 2 KB + 128 B + 64 B),\n\
         SC-64 4 levels (4 MB + 64 KB + 1 KB + 64 B),\n\
         MorphCtr-128 3 levels (1 MB + 8 KB + 64 B).\n",
    );
    out
}
