//! Fig 10 — analytic "time to overflow" of MorphCtr-128 with Zero Counter
//! Compression, against SC-64.
//!
//! Paper result: ZCC tolerates *more* writes than SC-64 whenever at most a
//! quarter of the line's counters are used (up to 2^20 at 16 used
//! counters), and 8x fewer when the line is dense (3-bit fallback).

use morphtree_core::counters::analytic::{
    rebasing_writes_per_overflow, split_writes_per_overflow, zcc_writes_per_overflow,
};
use morphtree_core::counters::split::SplitConfig;

use crate::report::Table;
use crate::runner::Lab;

/// Regenerates Fig 10 (plus the rebasing extension of §IV).
pub fn run(_lab: &mut Lab) -> String {
    let sc64 = SplitConfig::with_arity(64);
    let mut table = Table::new(vec![
        "fraction used",
        "SC-64",
        "MorphCtr ZCC",
        "ZCC+Rebase",
        "ZCC/SC-64",
    ]);
    for percent in [1u32, 5, 10, 12, 20, 25, 30, 40, 50, 75, 100] {
        let f = f64::from(percent) / 100.0;
        let w64 = split_writes_per_overflow(sc64, f);
        let zcc = zcc_writes_per_overflow(f);
        let reb = rebasing_writes_per_overflow(f);
        table.row(vec![
            format!("{percent}%"),
            format!("{w64}"),
            format!("{zcc}"),
            format!("{reb}"),
            format!("{:.2}x", zcc as f64 / w64 as f64),
        ]);
    }
    let mut out = String::from(
        "Fig 10 — writes tolerated before overflow: MorphCtr-128 (ZCC) vs SC-64\n\n",
    );
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: ZCC wins below ~25% line usage (peak 2^20 writes at 16 used\n\
         counters) and is 8x worse at full usage; rebasing recovers the dense case.\n",
    );
    out
}
