//! Fig 5 — impact of counter arity: performance and memory traffic of
//! VAULT, SC-64 and SC-128 (all normalized to SC-64), plus the non-secure
//! reference.
//!
//! Paper result: VAULT is 6.4% slower than SC-64; naively scaling to
//! SC-128 *hurts* (28% slowdown) because 3-bit minors overflow constantly;
//! there is a ~40% gap between SC-64 and non-secure execution.

use morphtree_core::metadata::AccessCategory;
use morphtree_core::tree::TreeConfig;

use crate::report::{geomean, pct_delta, Table};
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 5.
pub fn run(lab: &mut Lab) -> String {
    let workloads = Setup::all_workloads();
    let configs: Vec<(Option<TreeConfig>, &str)> = vec![
        (None, "Non-Secure"),
        (Some(TreeConfig::vault()), "VAULT"),
        (Some(TreeConfig::sc64()), "SC-64"),
        (Some(TreeConfig::sc128()), "SC-128"),
    ];

    let mut perf = Table::new(vec!["config", "perf vs SC-64", "delta"]);
    let mut traffic = Table::new(vec![
        "config", "Data", "Ctr_Encr", "Ctr_1", "Ctr_2", "Ctr_3&Up", "Overflow", "Total",
    ]);

    let mut out = String::from("Fig 5 — performance and traffic vs counter arity\n\n");
    for (tree, name) in &configs {
        let mut rel = Vec::new();
        let mut cats = [0.0f64; 5];
        let mut totals = Vec::new();
        for w in &workloads {
            let base_ipc = lab.result(w, Some(TreeConfig::sc64())).ipc();
            let r = lab.result(w, tree.clone());
            rel.push(r.ipc() / base_ipc);
            let stats = &r.engine;
            let per = [
                stats.category_per_data_access(AccessCategory::CtrEncr),
                stats.category_per_data_access(AccessCategory::Ctr1),
                stats.category_per_data_access(AccessCategory::Ctr2),
                stats.category_per_data_access(AccessCategory::Ctr3Up),
                stats.category_per_data_access(AccessCategory::Overflow),
            ];
            for (acc, v) in cats.iter_mut().zip(per) {
                *acc += v;
            }
            totals.push(stats.traffic_per_data_access());
        }
        let n = workloads.len() as f64;
        let g = geomean(&rel);
        perf.row(vec![(*name).to_owned(), format!("{g:.3}"), pct_delta(g)]);
        let total_mean: f64 = totals.iter().sum::<f64>() / n;
        traffic.row(vec![
            (*name).to_owned(),
            "1.000".to_owned(),
            format!("{:.3}", cats[0] / n),
            format!("{:.3}", cats[1] / n),
            format!("{:.3}", cats[2] / n),
            format!("{:.3}", cats[3] / n),
            format!("{:.3}", cats[4] / n),
            format!("{total_mean:.3}"),
        ]);
    }
    out.push_str("(a) Performance normalized to SC-64 (geomean, 28 workloads)\n");
    out.push_str(&perf.render());
    out.push_str("\n(b) Memory accesses per data access (mean, 28 workloads)\n");
    out.push_str(&traffic.render());
    out.push_str(
        "\nPaper: VAULT -6.4%, SC-128 -28% vs SC-64; VAULT ~0.7, SC-64 ~0.5, SC-128 ~0.4\n\
         extra counter accesses per data access, with SC-128 adding ~1 overflow access.\n",
    );
    out
}

/// Declares Fig 5's run-set: all 28 workloads under Non-Secure, VAULT,
/// SC-64, and SC-128.
pub fn plan(setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::all_workloads() {
        for tree in [
            None,
            Some(TreeConfig::vault()),
            Some(TreeConfig::sc64()),
            Some(TreeConfig::sc128()),
        ] {
            sweep.sim(setup, w, tree);
        }
    }
}
