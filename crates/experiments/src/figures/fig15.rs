//! Fig 15 — the headline result: performance of MorphCtr-128 vs SC-64 and
//! VAULT across all 28 workloads (SPEC, mixes, GAP), normalized to SC-64.
//!
//! Paper result: MorphCtr-128 +6.3% geomean (up to +28.3%), VAULT −6.4%;
//! the largest gains come from random-access workloads (mcf, omnetpp,
//! xalancbmk, GAP-twitter); streaming workloads are neutral; GemsFDTD is
//! the only slowdown (−2%).

use morphtree_core::tree::TreeConfig;

use crate::report::{geomean, pct_delta, Table};
use crate::runner::{Lab, Setup, Sweep};

/// Regenerates Fig 15.
pub fn run(lab: &mut Lab) -> String {
    let workloads = Setup::all_workloads();
    let mut table = Table::new(vec!["workload", "VAULT", "SC-64", "MorphCtr-128"]);
    let mut vault_all = Vec::new();
    let mut morph_all = Vec::new();
    let mut suite_morph: Vec<(&str, Vec<f64>)> =
        vec![("SPEC", Vec::new()), ("MIX", Vec::new()), ("GAP", Vec::new())];

    for (idx, w) in workloads.iter().enumerate() {
        let base = lab.result(w, Some(TreeConfig::sc64())).ipc();
        let vault = lab.result(w, Some(TreeConfig::vault())).ipc() / base;
        let morph = lab.result(w, Some(TreeConfig::morphtree())).ipc() / base;
        vault_all.push(vault);
        morph_all.push(morph);
        let suite = if idx < 16 { 0 } else if idx < 22 { 1 } else { 2 };
        suite_morph[suite].1.push(morph);
        table.row(vec![
            (*w).to_owned(),
            format!("{vault:.3}"),
            "1.000".to_owned(),
            format!("{morph:.3}"),
        ]);
    }

    let mut out = String::from("Fig 15 — performance normalized to SC-64\n\n");
    out.push_str(&table.render());
    out.push('\n');
    for (suite, vals) in &suite_morph {
        out.push_str(&format!(
            "{suite} geomean MorphCtr-128: {:.3} ({})\n",
            geomean(vals),
            pct_delta(geomean(vals))
        ));
    }
    let g_morph = geomean(&morph_all);
    let g_vault = geomean(&vault_all);
    let best = morph_all.iter().cloned().fold(f64::MIN, f64::max);
    out.push_str(&format!(
        "\nALL28 geomean MorphCtr-128 vs SC-64: {:.3} ({})   [paper: +6.3%, up to +28.3%]\n\
         ALL28 geomean VAULT vs SC-64:        {:.3} ({})   [paper: -6.4%]\n\
         ALL28 geomean MorphCtr vs VAULT:     {:.3} ({})   [paper: +13.5%, up to +47.4%]\n\
         best workload speedup: {}\n",
        g_morph,
        pct_delta(g_morph),
        g_vault,
        pct_delta(g_vault),
        g_morph / g_vault,
        pct_delta(g_morph / g_vault),
        pct_delta(best),
    ));
    out
}

/// Declares Fig 15's run-set: all 28 workloads under SC-64, VAULT, and
/// MorphCtr-128.
pub fn plan(setup: &Setup, sweep: &mut Sweep) {
    for w in Setup::all_workloads() {
        for tree in [TreeConfig::sc64(), TreeConfig::vault(), TreeConfig::morphtree()] {
            sweep.sim(setup, w, Some(tree));
        }
    }
}
