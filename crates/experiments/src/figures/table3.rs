//! Table III — storage overheads for 16 GB memory: encryption counters and
//! integrity tree, for Commercial-SGX, VAULT, SC-64 and MorphCtr-128.
//!
//! Paper values: SGX 2 GB / 292 MB, VAULT 256 MB / 8.5 MB, SC-64
//! 256 MB / 4 MB, MorphCtr-128 128 MB / 1 MB.

use morphtree_core::tree::{TreeConfig, TreeGeometry};

use crate::report::Table;
use crate::runner::Lab;

fn human(bytes: u64) -> String {
    const MIB: f64 = (1u64 << 20) as f64;
    const GIB: f64 = (1u64 << 30) as f64;
    let b = bytes as f64;
    if b >= GIB {
        format!("{:.1} GB", b / GIB)
    } else {
        format!("{:.1} MB", b / MIB)
    }
}

/// Regenerates Table III (exact, full 16 GB geometry).
pub fn run(_lab: &mut Lab) -> String {
    let memory = 16u64 << 30;
    let mut table = Table::new(vec![
        "Configuration",
        "Encryption Counters",
        "(%)",
        "Integrity-Tree",
        "(%)",
        "Levels",
    ]);
    for config in TreeConfig::paper_lineup() {
        let geometry = TreeGeometry::new(&config, memory);
        table.row(vec![
            config.name().to_owned(),
            human(geometry.enc_bytes()),
            format!("{:.3}%", geometry.enc_overhead() * 100.0),
            human(geometry.tree_bytes()),
            format!("{:.4}%", geometry.tree_overhead() * 100.0),
            format!("{}", geometry.height()),
        ]);
    }
    let mut out = String::from("Table III — storage overheads for 16 GB memory (exact)\n\n");
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: SGX 2 GB (12.5%) / 292 MB (1.8%); VAULT 256 MB (1.6%) / 8.5 MB (0.05%);\n\
         SC-64 256 MB (1.6%) / 4 MB (0.025%); MorphCtr-128 128 MB (0.8%) / 1 MB (0.006%).\n",
    );
    out
}
