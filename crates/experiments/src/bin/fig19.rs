//! Regenerates the paper's Fig 19 (see `morphtree_experiments::figures::fig19`).
//!
//! The run-set is declared up front and prefetched across worker threads;
//! pass `--threads N` to pin the worker count (default: all cores).

fn main() {
    morphtree_experiments::driver::figure_main(&["fig19"]);
}
