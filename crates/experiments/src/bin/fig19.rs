//! Regenerates the paper's Fig 19 (see `morphtree_experiments::figures::fig19`).

use morphtree_experiments::figures::fig19;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig19::run(&mut lab);
    report::emit("fig19", &output);
}
