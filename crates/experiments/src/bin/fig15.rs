//! Regenerates the paper's Fig 15 (see `morphtree_experiments::figures::fig15`).

use morphtree_experiments::figures::fig15;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig15::run(&mut lab);
    report::emit("fig15", &output);
}
