//! Regenerates the paper's Fig 14 (see `morphtree_experiments::figures::fig14`).

use morphtree_experiments::figures::fig14;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig14::run(&mut lab);
    report::emit("fig14", &output);
}
