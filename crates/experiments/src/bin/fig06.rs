//! Regenerates the paper's Fig 06 (see `morphtree_experiments::figures::fig06`).

use morphtree_experiments::figures::fig06;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig06::run(&mut lab);
    report::emit("fig06", &output);
}
