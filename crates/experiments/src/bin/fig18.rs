//! Regenerates the paper's Fig 18 (see `morphtree_experiments::figures::fig18`).

use morphtree_experiments::figures::fig18;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig18::run(&mut lab);
    report::emit("fig18", &output);
}
