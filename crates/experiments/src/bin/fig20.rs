//! Regenerates the paper's Fig 20 (see `morphtree_experiments::figures::fig20`).

use morphtree_experiments::figures::fig20;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig20::run(&mut lab);
    report::emit("fig20", &output);
}
