//! Regenerates the paper's Fig 16 (see `morphtree_experiments::figures::fig16`).

use morphtree_experiments::figures::fig16;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig16::run(&mut lab);
    report::emit("fig16", &output);
}
