//! Regenerates the paper's Fig 05 (see `morphtree_experiments::figures::fig05`).

use morphtree_experiments::figures::fig05;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig05::run(&mut lab);
    report::emit("fig05", &output);
}
