//! Regenerates the paper's Fig 17 (see `morphtree_experiments::figures::fig17`).

use morphtree_experiments::figures::fig17;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig17::run(&mut lab);
    report::emit("fig17", &output);
}
