//! Regenerates the paper's Fig 11 (see `morphtree_experiments::figures::fig11`).

use morphtree_experiments::figures::fig11;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig11::run(&mut lab);
    report::emit("fig11", &output);
}
