//! Regenerates the paper's Fig 10 (see `morphtree_experiments::figures::fig10`).

use morphtree_experiments::figures::fig10;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig10::run(&mut lab);
    report::emit("fig10", &output);
}
