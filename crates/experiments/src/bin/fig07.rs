//! Regenerates the paper's Fig 07 (see `morphtree_experiments::figures::fig07`).

use morphtree_experiments::figures::fig07;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = fig07::run(&mut lab);
    report::emit("fig07", &output);
}
