//! Runs the extension experiments beyond the paper's figures (DESIGN.md §7):
//! speculation, replacement policy, single-base rebasing, SGX, scaling.

use morphtree_experiments::figures::extensions;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let mut combined = String::new();
    for (name, fun) in [
        ("ext_scaling", extensions::scaling as fn(&mut Lab) -> String),
        ("ext_single_base", extensions::single_base),
        ("ext_sgx", extensions::sgx),
        ("ext_speculation", extensions::speculation),
        ("ext_replacement", extensions::replacement),
        ("ext_scheduler", extensions::scheduler),
    ] {
        eprintln!("==== {name} ====");
        let output = fun(&mut lab);
        report::emit(name, &output);
        combined.push_str(&format!("\n==== {name} ====\n\n{output}\n"));
    }
    report::emit("extensions", &combined);
}
