//! Runs the extension experiments beyond the paper's figures (DESIGN.md §7):
//! speculation, replacement policy, single-base rebasing, SGX, scaling.
//! Pass `--threads N` to pin the sweep worker count.

fn main() {
    let names = [
        "ext_scaling",
        "ext_single_base",
        "ext_sgx",
        "ext_speculation",
        "ext_replacement",
        "ext_scheduler",
    ];
    let combined = morphtree_experiments::driver::figure_main(&names);
    morphtree_experiments::report::emit("extensions", &combined);
}
