//! Regenerates the paper's Table III (see `morphtree_experiments::figures::table3`).
//!
//! The run-set is declared up front and prefetched across worker threads;
//! pass `--threads N` to pin the worker count (default: all cores).

fn main() {
    morphtree_experiments::driver::figure_main(&["table3"]);
}
