//! Regenerates the paper's table3 (see `morphtree_experiments::figures::table3`).

use morphtree_experiments::figures::table3;
use morphtree_experiments::{report, Lab, Setup};

fn main() {
    let mut lab = Lab::new(Setup::default());
    let output = table3::run(&mut lab);
    report::emit("table3", &output);
}
