//! Regenerates every reproduced table and figure in one run, sharing
//! simulations across figures via the lab's memoization.

use morphtree_experiments::figures::{
    extensions, fig05, fig06, fig07, fig10, fig11, fig14, fig15, fig16, fig17, fig18,
    fig19, fig20, table3,
};
use morphtree_experiments::{report, Lab, Setup};

type FigureFn = fn(&mut Lab) -> String;

fn main() {
    let start = std::time::Instant::now();
    let mut lab = Lab::new(Setup::default());
    let figures: Vec<(&str, FigureFn)> = vec![
        ("table3", table3::run),
        ("fig17", fig17::run),
        ("fig06", fig06::run),
        ("fig10", fig10::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig18", fig18::run),
        ("fig05", fig05::run),
        ("fig19", fig19::run),
        ("fig20", fig20::run),
        ("fig07", fig07::run),
        ("fig11", fig11::run),
        ("fig14", fig14::run),
        ("ext_scaling", extensions::scaling),
        ("ext_single_base", extensions::single_base),
        ("ext_sgx", extensions::sgx),
        ("ext_speculation", extensions::speculation),
        ("ext_replacement", extensions::replacement),
        ("ext_scheduler", extensions::scheduler),
    ];
    let mut combined = String::new();
    for (name, fun) in figures {
        eprintln!("==== {name} ====");
        let output = fun(&mut lab);
        report::emit(name, &output);
        combined.push_str(&format!("\n==== {name} ====\n\n{output}\n"));
    }
    report::emit("all", &combined);
    eprintln!("runall finished in {:?}", start.elapsed());
}
