//! Regenerates every reproduced table and figure in one run: plans the
//! union of all figures' run-sets, prefetches it across worker threads
//! (deduplicating the simulations figures share), then renders each
//! figure from the shared memo. Pass `--threads N` to pin the worker
//! count (default: all cores).

use morphtree_experiments::{driver, report};

fn main() {
    let start = std::time::Instant::now();
    let names = driver::figure_names();
    let combined = driver::figure_main(&names);
    report::emit("all", &combined);
    eprintln!("runall finished in {:?}", start.elapsed());
}
