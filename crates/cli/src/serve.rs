//! The `morphtree serve` subcommand: drive the sharded concurrent
//! secure-memory engine as a batched multi-tenant service.
//!
//! The front-end generates a seeded op mix (write-heavy by default — the
//! write path exercises the full counter-bump chain), routes it into
//! per-shard queues, and drains the queues with `--threads` workers per
//! batch. Each shard owns an independent subtree over its address range;
//! the shared top root recombines once per batch (coalesced). The final
//! line is grep-able (`serve complete:`) for CI smoke checks, and
//! `--verify 1` additionally audits every shard subtree bottom-up and
//! proves a seeded tamper drill is detected before reporting success.
//!
//! `--epoch-ops N` switches the service to epoch-bounded persistence
//! ([`EpochShardedMemory`]): every shard journals its writes to a WAL and
//! the engine cuts an epoch every `N` ops — sealing per-shard roots, so a
//! crash costs at most one epoch of replay. Epoch mode always ends with a
//! recovery drill (recover the durable state, compare it to the live
//! engine), and `--state-out PREFIX` persists that state as
//! `PREFIX.mtsh` + `PREFIX.shard<K>.wal` for `morphtree recover`.

use std::fmt::Write as _;
use std::time::Instant;

use morphtree_core::concurrent::{Op, OpOutcome, ShardedMemory, SplitMix64};
use morphtree_core::persist::{recover_sharded_bounded, EpochShardedMemory};
use morphtree_core::tree::TreeConfig;
use morphtree_core::CACHELINE_BYTES;

use crate::{err, tree_by_name, CliError, Flags};

/// Builds one batch of requests: lines drawn from per-shard hot ranges
/// (equal share per shard, so every worker has queued work) with a
/// `write_pct`% write share.
fn build_batch(
    rng: &mut SplitMix64,
    memory: &ShardedMemory,
    batch: usize,
    hot_lines: u64,
    write_pct: u64,
) -> Vec<Op> {
    let plan = memory.plan();
    let shards = plan.shards() as u64;
    let per_shard_hot = (hot_lines / shards).max(1);
    (0..batch)
        .map(|_| {
            let shard = (rng.below(shards)) as usize;
            let span = per_shard_hot.min(plan.shard_lines(shard));
            let line = plan.shard_base(shard) + rng.below(span);
            if rng.below(100) < write_pct {
                let mut data = [0u8; CACHELINE_BYTES];
                data[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                Op::Write { line, data }
            } else {
                Op::Read { line }
            }
        })
        .collect()
}

/// The parsed operating point of one `serve` invocation.
struct ServeParams {
    threads: usize,
    shards: usize,
    ops_total: usize,
    batch: usize,
    memory_bytes: u64,
    hot_lines: u64,
    write_pct: u64,
    seed: u64,
    verify: bool,
    tree: TreeConfig,
}

fn parse_params(flags: &Flags) -> Result<ServeParams, CliError> {
    let threads = flags.number_or("threads", 1)? as usize;
    if threads == 0 {
        return Err(err("--threads must be positive"));
    }
    // Shards default to the worker count: each worker owns one subtree.
    let shards = match flags.number_or("shards", 0)? as usize {
        0 => threads,
        n => n,
    };
    Ok(ServeParams {
        threads,
        shards,
        ops_total: flags.number_or("ops", 100_000)? as usize,
        batch: flags.number_or("batch", 8192)?.max(1) as usize,
        memory_bytes: flags.number_or("memory-mib", 256)?.max(1) << 20,
        hot_lines: flags.number_or("hot-lines", 8192)?.max(1),
        write_pct: flags.number_or("write-pct", 80)?.min(100),
        seed: flags.number_or("seed", 42)?,
        verify: flags.get_or("verify", "0") != "0",
        tree: tree_by_name(flags.get_or("config", "morph"))?,
    })
}

/// Runs the serve workload; returns the human-readable report.
///
/// # Errors
///
/// Returns a [`CliError`] for bad flags, impossible shard plans, or — the
/// failures that matter — an integrity violation the service failed to
/// detect during the `--verify` drill, or (epoch mode) a recovery drill
/// that did not reproduce the live state.
pub fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    // Applied before any shard is constructed: every per-shard cipher
    // picks up the requested backend (`auto` keeps runtime detection).
    crate::apply_crypto_backend(flags)?;
    let params = parse_params(flags)?;
    let epoch_ops = flags.number_or("epoch-ops", 0)?;
    if flags.get("state-out").is_some() && epoch_ops == 0 {
        return Err(err("--state-out requires --epoch-ops (epoch mode persists state)"));
    }
    if epoch_ops > 0 {
        return serve_epoch(flags, &params, epoch_ops);
    }

    let ServeParams {
        threads, shards, ops_total, batch, memory_bytes, hot_lines, write_pct, seed, verify, tree,
    } = params;
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    let mut memory = ShardedMemory::new(tree, memory_bytes, key, shards)
        .map_err(|e| err(format!("cannot shard {} {shards} ways: {e}", crate::human(memory_bytes))))?;

    let mut rng = SplitMix64::new(seed);
    let mut served = 0usize;
    let mut detected = 0u64;
    let started = Instant::now();
    while served < ops_total {
        let count = batch.min(ops_total - served);
        let ops = build_batch(&mut rng, &memory, count, hot_lines, write_pct);
        for outcome in memory.run_batch(&ops, threads) {
            if matches!(outcome, OpOutcome::Detected(_)) {
                detected += 1;
            }
        }
        served += count;
    }
    let elapsed = started.elapsed();
    let ops_per_sec = served as f64 / elapsed.as_secs_f64();
    let root = memory.combined_root();

    // An honest service detects nothing: the workload contains no tampers.
    if detected != 0 {
        return Err(err(format!(
            "serve integrity failure: {detected} spurious detection(s) in an honest workload"
        )));
    }

    let mut out = format!(
        "serving {} of {} across {shards} shard(s), {threads} worker thread(s)\n",
        crate::human(memory_bytes),
        memory.shard(0).config().name(),
    );
    writeln!(
        out,
        "levels/shard {} | hot lines {hot_lines} | batch {batch} | {write_pct}% writes | seed {seed} | crypto {}",
        memory.shard(0).geometry().top_level() + 1,
        memory.shard(0).cipher_backend(),
    )
    .expect("write to string");
    writeln!(
        out,
        "served {served} ops in {:.3}s — {:.0} ops/s | root {root:#018x} | {} recombine(s) | {} reencryption(s)",
        elapsed.as_secs_f64(),
        ops_per_sec,
        memory.recombines(),
        memory.reencryptions(),
    )
    .expect("write to string");

    if verify {
        // Bottom-up audit of every shard subtree...
        memory
            .verify_all()
            .map_err(|e| err(format!("serve verification failed: {e}")))?;
        // ...then a tamper drill: corrupt one written line and prove the
        // service detects it (and only it).
        let victim = memory.plan().shard_base(shards - 1);
        memory.write(victim, &[0x5a; CACHELINE_BYTES]);
        memory
            .tamper_raw(victim, (seed % 64) as usize, 0x01)
            .map_err(|e| err(format!("tamper drill could not arm: {e}")))?;
        match memory.read(victim) {
            Err(_) => {}
            Ok(_) => {
                return Err(err(
                    "INTEGRITY HOLE: tamper drill went undetected by the sharded engine",
                ))
            }
        }
        writeln!(out, "verify: all shard subtrees verified; tamper drill detected")
            .expect("write to string");
    }

    if let Some(path) = flags.get("metrics") {
        let mut registry = morphtree_core::obs::MetricsRegistry::new();
        registry.counter_set("serve.ops", served as u64);
        registry.counter_set("serve.threads", threads as u64);
        registry.counter_set("serve.shards", shards as u64);
        registry.counter_set("serve.recombines", memory.recombines());
        registry.counter_set("serve.reencryptions", memory.reencryptions());
        registry.gauge_set("serve.ops_per_sec", Some(ops_per_sec));
        crate::metrics::write_metrics(path, &registry)?;
        writeln!(out, "metrics written to {path}").expect("write to string");
    }

    writeln!(
        out,
        "serve complete: {served} ops on {threads} thread(s) x {shards} shard(s), root intact",
    )
    .expect("write to string");
    Ok(out)
}

/// Epoch-mode serve: the same workload through [`EpochShardedMemory`],
/// closing with a recovery drill against the durable `(container, WALs)`
/// state — and persisting that state when `--state-out` is given.
fn serve_epoch(flags: &Flags, params: &ServeParams, epoch_ops: u64) -> Result<String, CliError> {
    let ServeParams {
        threads, shards, ops_total, batch, memory_bytes, hot_lines, write_pct, seed, verify, ..
    } = *params;
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    let mut memory =
        EpochShardedMemory::new(params.tree.clone(), memory_bytes, key, shards, epoch_ops)
            .map_err(|e| {
                err(format!("cannot shard {} {shards} ways: {e}", crate::human(memory_bytes)))
            })?;

    let mut rng = SplitMix64::new(seed);
    let mut served = 0usize;
    let mut detected = 0u64;
    let started = Instant::now();
    while served < ops_total {
        let count = batch.min(ops_total - served);
        let ops = build_batch(&mut rng, memory.memory(), count, hot_lines, write_pct);
        for outcome in memory.run_batch(&ops, threads) {
            if matches!(outcome, OpOutcome::Detected(_)) {
                detected += 1;
            }
        }
        served += count;
    }
    let elapsed = started.elapsed();
    let ops_per_sec = served as f64 / elapsed.as_secs_f64();
    let root = memory.combined_root();
    if detected != 0 {
        return Err(err(format!(
            "serve integrity failure: {detected} spurious detection(s) in an honest workload"
        )));
    }

    let mut out = format!(
        "serving {} of {} across {shards} shard(s), {threads} worker thread(s), epoch every {epoch_ops} ops\n",
        crate::human(memory_bytes),
        memory.memory().shard(0).config().name(),
    );
    writeln!(
        out,
        "levels/shard {} | hot lines {hot_lines} | batch {batch} | {write_pct}% writes | seed {seed} | crypto {}",
        memory.memory().shard(0).geometry().top_level() + 1,
        memory.memory().shard(0).cipher_backend(),
    )
    .expect("write to string");
    writeln!(
        out,
        "served {served} ops in {:.3}s — {:.0} ops/s | root {root:#018x} | {} recombine(s)",
        elapsed.as_secs_f64(),
        ops_per_sec,
        memory.recombines(),
    )
    .expect("write to string");
    writeln!(
        out,
        "epochs sealed {} | open-epoch ops {} (cut every {epoch_ops})",
        memory.epoch(),
        memory.ops_in_epoch(),
    )
    .expect("write to string");

    // The durable state a crash right now would leave behind: the last
    // cut's sealed container plus each shard's open-epoch WAL.
    let container = memory.sealed_container();
    let wals = memory.wals();
    if let Some(prefix) = flags.get("state-out") {
        std::fs::write(format!("{prefix}.mtsh"), &container)
            .map_err(|e| err(format!("cannot write {prefix}.mtsh: {e}")))?;
        for (k, wal) in wals.iter().enumerate() {
            std::fs::write(format!("{prefix}.shard{k}.wal"), wal)
                .map_err(|e| err(format!("cannot write {prefix}.shard{k}.wal: {e}")))?;
        }
        writeln!(
            out,
            "state written to {prefix}.mtsh + {} per-shard WAL(s) ({} container bytes)",
            wals.len(),
            container.len(),
        )
        .expect("write to string");
    }

    // Recovery drill: recovering the durable state must reproduce the
    // live engine exactly, with no shard quarantined.
    let drill_start = Instant::now();
    let rec = recover_sharded_bounded(&container, &wals)
        .map_err(|e| err(format!("recovery drill failed outright: {e}")))?;
    let drill = drill_start.elapsed();
    if rec.memory.healthy_shards() != shards {
        return Err(err(format!(
            "recovery drill quarantined {} of {shards} shard(s)",
            shards - rec.memory.healthy_shards(),
        )));
    }
    for s in 0..shards {
        use morphtree_core::persist::save_memory;
        if save_memory(rec.memory.shard(s)) != save_memory(memory.memory().shard(s)) {
            return Err(err(format!(
                "DIVERGENCE: recovery drill shard {s} does not match the live state"
            )));
        }
    }
    let replayed: usize = rec
        .shards
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok().map(|s| s.replayed_txns))
        .sum();
    writeln!(
        out,
        "recovery drill: resolved epoch {} in {:.1}ms, {replayed} txn(s) replayed, state matches live",
        rec.resolved_epoch,
        drill.as_secs_f64() * 1e3,
    )
    .expect("write to string");

    if verify {
        memory
            .memory()
            .verify_all()
            .map_err(|e| err(format!("serve verification failed: {e}")))?;
        writeln!(out, "verify: all shard subtrees verified").expect("write to string");
    }

    if let Some(path) = flags.get("metrics") {
        let mut registry = morphtree_core::obs::MetricsRegistry::new();
        registry.counter_set("serve.ops", served as u64);
        registry.counter_set("serve.threads", threads as u64);
        registry.counter_set("serve.shards", shards as u64);
        registry.counter_set("serve.recombines", memory.recombines());
        registry.counter_set("serve.epochs", memory.epoch());
        registry.counter_set("serve.epoch_ops", epoch_ops);
        registry.counter_set("serve.recovery_replayed_txns", replayed as u64);
        registry.gauge_set("serve.ops_per_sec", Some(ops_per_sec));
        registry.gauge_set("serve.recovery_drill_ms", Some(drill.as_secs_f64() * 1e3));
        crate::metrics::write_metrics(path, &registry)?;
        writeln!(out, "metrics written to {path}").expect("write to string");
    }

    writeln!(
        out,
        "serve complete: {served} ops on {threads} thread(s) x {shards} shard(s), root intact",
    )
    .expect("write to string");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    fn serve(args: &[&str]) -> Result<String, CliError> {
        crate::run("serve", &strs(args))
    }

    #[test]
    fn serve_smoke_reports_completion() {
        let out = serve(&["--threads", "2", "--ops", "3000", "--memory-mib", "4"]).unwrap();
        assert!(out.contains("serve complete: 3000 ops on 2 thread(s) x 2 shard(s)"), "{out}");
        assert!(out.contains("ops/s"), "{out}");
        assert!(out.contains("1 recombine(s)") || out.contains("recombine"), "{out}");
    }

    #[test]
    fn serve_verify_runs_the_tamper_drill() {
        let out = serve(&[
            "--threads", "4", "--ops", "2000", "--memory-mib", "4", "--verify", "1",
        ])
        .unwrap();
        assert!(out.contains("tamper drill detected"), "{out}");
    }

    #[test]
    fn serve_root_is_thread_count_invariant() {
        // Same seed and op budget: the reported root must be identical for
        // any worker count (concurrency is unobservable in final state).
        let root_of = |threads: &str| {
            let out = serve(&[
                "--threads", threads, "--shards", "4", "--ops", "4000", "--memory-mib", "4",
            ])
            .unwrap();
            let at = out.find("root 0x").expect("root in output");
            out[at..at + 23].to_owned()
        };
        let one = root_of("1");
        assert_eq!(one, root_of("2"));
        assert_eq!(one, root_of("4"));
    }

    #[test]
    fn serve_crypto_backend_flag_pins_every_shard() {
        // The root must not depend on the backend (all backends are the
        // same permutation), and the report must name the pinned one.
        let root_of = |out: &str| {
            let at = out.find("root 0x").expect("root in output");
            out[at..at + 23].to_owned()
        };
        let pinned = serve(&[
            "--threads", "2", "--ops", "2000", "--memory-mib", "4",
            "--crypto-backend", "ttable",
        ])
        .unwrap();
        assert!(pinned.contains("crypto ttable"), "{pinned}");
        let auto = serve(&["--threads", "2", "--ops", "2000", "--memory-mib", "4"]).unwrap();
        assert_eq!(root_of(&pinned), root_of(&auto));
        morphtree_crypto::aes::force_backend(None);
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(serve(&["--threads", "0"]).is_err());
        // More shards than data lines: 4 MiB = 65536 lines, ask for more.
        assert!(serve(&["--threads", "1", "--shards", "99999999", "--memory-mib", "1"]).is_err());
        // Persisting state without epoch mode has nothing to persist.
        assert!(serve(&["--state-out", "/tmp/x"]).is_err());
    }

    #[test]
    fn serve_metrics_dump_has_the_serve_keys() {
        let path = std::env::temp_dir().join("morphtree-serve-metrics.json");
        let path_str = path.to_str().unwrap().to_owned();
        serve(&[
            "--threads", "2", "--ops", "1000", "--memory-mib", "4", "--metrics", &path_str,
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("serve.ops"), "{json}");
        assert!(json.contains("serve.ops_per_sec"), "{json}");
    }

    #[test]
    fn serve_epoch_mode_seals_and_drills_recovery() {
        let out = serve(&[
            "--threads", "2", "--ops", "3000", "--memory-mib", "4", "--batch", "500",
            "--epoch-ops", "1000",
        ])
        .unwrap();
        assert!(out.contains("epoch every 1000 ops"), "{out}");
        assert!(out.contains("epochs sealed 3"), "{out}");
        assert!(out.contains("recovery drill: resolved epoch"), "{out}");
        assert!(out.contains("state matches live"), "{out}");
        assert!(out.contains("serve complete: 3000 ops on 2 thread(s) x 2 shard(s)"), "{out}");
    }

    #[test]
    fn serve_epoch_root_matches_plain_mode() {
        // Epoch journaling must be invisible to the served state: same
        // seed, same ops — same combined root as the plain engine.
        let root_of = |extra: &[&str]| {
            let mut args =
                vec!["--threads", "2", "--shards", "2", "--ops", "2000", "--memory-mib", "4"];
            args.extend_from_slice(extra);
            let out = serve(&args).unwrap();
            let at = out.find("root 0x").expect("root in output");
            out[at..at + 23].to_owned()
        };
        assert_eq!(root_of(&[]), root_of(&["--epoch-ops", "512"]));
    }

    #[test]
    fn serve_epoch_state_out_writes_recoverable_state() {
        let dir = std::env::temp_dir().join("morphtree-serve-state");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("drill").to_str().unwrap().to_owned();
        let out = serve(&[
            "--threads", "2", "--ops", "1500", "--memory-mib", "4", "--batch", "300",
            "--epoch-ops", "600", "--state-out", &prefix,
        ])
        .unwrap();
        assert!(out.contains("state written to"), "{out}");
        let container = std::fs::read(format!("{prefix}.mtsh")).unwrap();
        let wal0 = std::fs::read(format!("{prefix}.shard0.wal")).unwrap();
        let wal1 = std::fs::read(format!("{prefix}.shard1.wal")).unwrap();
        let rec = recover_sharded_bounded(&container, &[wal0, wal1]).unwrap();
        assert_eq!(rec.memory.healthy_shards(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
