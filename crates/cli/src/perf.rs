//! The `morphtree perf` subcommand: a pinned performance suite for the
//! hot paths of the reproduction, written to `BENCH.json`.
//!
//! The suite covers, in order:
//!
//! 1. counter-line increments (morph random-format and sc64 hot-slot);
//! 2. 64-byte one-time-pad generation — the runtime-selected backend
//!    (AES-NI where the CPU has it) versus the scalar per-block
//!    reference, plus the same benchmark pinned to *every* backend the
//!    CPU can run (the `crypto` JSON record), a bulk-OTP curve
//!    (`otp_bulk_by_backend`: the fused `pad_lines` sweep at 1/4/16/64
//!    lines per call, where VAES amortizes its 4-line register sets),
//!    and an end-to-end functional-plane read pair (`secure_read` vs a
//!    T-table pin) that shows the hardware path through full chain-MAC
//!    verification;
//! 3. metadata-engine reads and writes — the paged-flat-store engine
//!    versus the frozen [`ReferenceEngine`] (the pre-optimization
//!    `HashMap`-backed implementation, kept verbatim as the baseline);
//! 4. a crash-recovery grid (memory size × open-epoch WAL length):
//!    epoch-bounded recovery versus the full-replay baseline it
//!    supersedes, on identical `(snapshot, WAL)` inputs;
//! 5. a proof-size-vs-arity grid: the five evaluated tree configs prove
//!    the same 8-line set over the same 1 MiB image; encoded proof bytes
//!    (structural, deterministic) and standalone verification time land
//!    in the JSON `proofs` section — the higher-arity morphable configs
//!    must produce smaller proofs than 64-ary SC-64;
//! 6. one full figure sweep (`fig07`) as an end-to-end wall-clock number.
//!
//! Each benchmark reports mean ns/op and ops/sec over a fixed time
//! window; the optimized/reference pairs additionally report a speedup
//! ratio in the JSON `speedups` section, which is what CI inspects. The
//! baselines run in-process so the comparison is same-machine,
//! same-build, same-workload. The recovery grid lands in the JSON
//! `recovery` section; its headline `bounded_vs_full_largest` ratio is
//! the bounded path's speedup at the largest grid point.
//!
//! `--crypto-backend` pins the AES backend for the whole suite (see
//! [`crate::apply_crypto_backend`]); `--gate BASELINE.json` compares the
//! selected backend's `otp_64b` against the committed per-backend
//! baseline and fails the command on a >20% regression — other backends'
//! comparisons are reported but informational.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use morphtree_bench::SplitMix64;
use morphtree_core::concurrent::{Op, ShardedMemory};
use morphtree_core::functional::SecureMemory;
use morphtree_core::persist::{recover, recover_bounded, EpochMemory};
use morphtree_core::counters::morph::{MorphLine, MorphMode};
use morphtree_core::counters::split::{SplitConfig, SplitLine};
use morphtree_core::counters::CounterLine;
use morphtree_core::metadata::{MacMode, MetadataEngine, ReferenceEngine};
use morphtree_core::tree::TreeConfig;
use morphtree_core::CACHELINE_BYTES;
use morphtree_crypto::otp::CtrModeCipher;
use morphtree_crypto::{aes, AesBackend};

use crate::{err, CliError, Flags};

/// Memory size the engine benchmarks model (matches `benches/engine.rs`).
const MEMORY: u64 = 256 << 20;
/// Metadata-cache size for the gated engine benchmarks: the paper's
/// Table I configuration (128 KB). With a resident footprint this is the
/// cache-hit regime real workloads run in (Fig 16's hit rates are high),
/// so the gated numbers measure the engine itself rather than a miss
/// storm whose emit traffic both implementations share.
const CACHE: usize = 128 * 1024;
/// Small cache for the informational cold-miss variants.
const COLD_CACHE: usize = 8 * 1024;
/// Read footprint for the gated benchmark: 8 MiB of data, whose metadata
/// fits in the 128 KB cache after warm-up.
const HOT_READ_LINES: u64 = (8 << 20) / 64;
/// Random-read footprint for the cold variant (64 MiB of data).
const FOOTPRINT_LINES: u64 = (64 << 20) / 64;
/// Hot-set size for the write benchmarks.
const HOT_LINES: u64 = 4096;

/// Memory size for the end-to-end functional-plane read benchmark.
const SECURE_MEMORY: u64 = 1 << 20;
/// Populated (and read) lines in the functional-plane benchmark.
const SECURE_HOT: u64 = 2048;

/// Gate slack: the selected backend's `otp_64b` may be up to 20% slower
/// than its committed baseline before `--gate` fails the command.
const GATE_SLACK: f64 = 1.2;

/// Batch sizes for the bulk-OTP curve: per-line (the degenerate batch),
/// one VAES register set (4 lines), one verify batch
/// (`SecureMemory::VERIFY_BATCH` = 16), and a sweep-sized run.
const BULK_BATCHES: [usize; 4] = [1, 4, 16, 64];

/// Worker counts for the serve-mode scaling curve (shards = threads).
const SERVE_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Requests per `run_batch` call in the serve scaling benchmark — large
/// enough to amortize per-batch queue routing and thread-scope setup.
const SERVE_BATCH: usize = 8192;
/// Total hot lines across all shards (matches the `serve` default).
const SERVE_HOT_LINES: u64 = 8192;

/// One benchmark's result.
struct Bench {
    name: &'static str,
    ns_per_op: f64,
    ops_per_sec: f64,
}

/// One point on a backend's bulk-OTP curve: `lines` pads generated per
/// [`CtrModeCipher::pad_lines`] call, amortized to per-line cost.
struct BulkPoint {
    lines: usize,
    ns_per_line: f64,
    lines_per_sec: f64,
}

/// Measures the fused bulk-pad path ([`CtrModeCipher::pad_lines`]) at
/// every [`BULK_BATCHES`] size on every backend this CPU can run. The
/// pad buffer is preallocated and reused so the measurement is the
/// crypto sweep itself, not allocator traffic; counters advance every
/// call so no pad is ever generated twice. Per-line cost falling as the
/// batch grows is the point of the curve: scalar/ttable/aesni flatten
/// out almost immediately (their bulk path is a per-line loop), while
/// VAES keeps gaining until the 4-line register set is saturated.
fn run_otp_bulk_curve(window: Duration) -> Vec<(AesBackend, Vec<BulkPoint>)> {
    AesBackend::all_available()
        .into_iter()
        .map(|b| {
            let cipher = CtrModeCipher::with_backend([0x42u8; 16], b);
            let points = BULK_BATCHES
                .iter()
                .map(|&n| {
                    let mut lines: Vec<(u64, u64)> =
                        (0..n as u64).map(|i| (0x8000 + 64 * i, 0)).collect();
                    let mut pads = vec![[0u8; CACHELINE_BYTES]; n];
                    let mut counter = 0u64;
                    let bench = measure("otp_bulk", window, || {
                        counter = counter.wrapping_add(1) & ((1 << 56) - 1);
                        for entry in &mut lines {
                            entry.1 = counter;
                        }
                        cipher.pad_lines(&lines, &mut pads);
                        std::hint::black_box(&mut pads);
                    });
                    BulkPoint {
                        lines: n,
                        ns_per_line: bench.ns_per_op / n as f64,
                        lines_per_sec: bench.ops_per_sec * n as f64,
                    }
                })
                .collect();
            (b, points)
        })
        .collect()
}

/// Sub-windows per benchmark; the reported figure is the *fastest*
/// sub-window. Interference noise on a shared host is one-sided (it only
/// ever slows a window down), so the minimum is the stable estimator —
/// means swing by 1.5x between otherwise identical runs.
const PASSES: u32 = 4;

/// Runs `op` in batches for `PASSES` sub-windows (after a warm-up of a
/// quarter window) and reports the best per-call cost observed.
fn measure<F: FnMut()>(name: &'static str, window: Duration, mut op: F) -> Bench {
    let warm_up_end = Instant::now() + window / 4;
    while Instant::now() < warm_up_end {
        op();
    }
    let sub_window = window / PASSES;
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut ops = 0u64;
        let started = Instant::now();
        loop {
            for _ in 0..64 {
                op();
            }
            ops += 64;
            if started.elapsed() >= sub_window {
                break;
            }
        }
        let ns_per_op = started.elapsed().as_nanos() as f64 / ops as f64;
        best = best.min(ns_per_op);
    }
    Bench { name, ns_per_op: best, ops_per_sec: 1e9 / best }
}

/// Formats a float with enough precision for the JSON report without
/// dragging in a float-formatting dependency.
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_owned()
    }
}

/// Runs the pinned suite and writes the JSON report.
///
/// # Errors
///
/// Propagates figure-sweep and file-write failures.
pub fn cmd_perf(flags: &Flags) -> Result<String, CliError> {
    let out_path = flags.get_or("out", "BENCH.json");
    let quick = flags.get_or("quick", "0") != "0";
    let backend = crate::apply_crypto_backend(flags)?;
    // Full mode uses a 300 ms window per benchmark (~4 s total); quick
    // mode trades precision for a fast smoke signal in CI.
    let window = if quick { Duration::from_millis(40) } else { Duration::from_millis(300) };

    let mut benches: Vec<Bench> = Vec::new();
    let mut progress = String::new();

    // 1. Counter increments: the innermost loop of the simulator.
    {
        let mut line = MorphLine::new(MorphMode::ZccRebase);
        let mut rng = SplitMix64::new(2);
        benches.push(measure("counter_increment_morph", window, || {
            let slot = (rng.next_u64() % 128) as usize;
            std::hint::black_box(line.increment(slot));
        }));
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        benches.push(measure("counter_increment_sc64", window, || {
            std::hint::black_box(line.increment(std::hint::black_box(7)));
        }));
    }

    // 2. One-time-pad generation: the runtime-selected backend (AES-NI
    //    where available) vs the scalar per-block reference.
    {
        let cipher = CtrModeCipher::new([0x42u8; 16]);
        let mut counter = 0u64;
        benches.push(measure("otp_64b", window, || {
            counter = counter.wrapping_add(1) & ((1 << 56) - 1);
            std::hint::black_box(cipher.one_time_pad(0x8000, counter));
        }));
        let mut counter = 0u64;
        benches.push(measure("otp_64b_reference", window, || {
            counter = counter.wrapping_add(1) & ((1 << 56) - 1);
            std::hint::black_box(cipher.one_time_pad_reference(0x8000, counter));
        }));
    }

    // 2b. The same OTP benchmark pinned to every backend this CPU can
    //     run: the per-backend curve in the JSON `crypto` record. It
    //     shows what auto-selection bought on this host, and it is the
    //     baseline `--gate` compares like against like — a scalar-forced
    //     CI leg gates against the committed *scalar* number, not the
    //     AES-NI one.
    let otp_by_backend: Vec<(AesBackend, f64, f64)> = AesBackend::all_available()
        .into_iter()
        .map(|b| {
            let cipher = CtrModeCipher::with_backend([0x42u8; 16], b);
            let mut counter = 0u64;
            let bench = measure("otp_64b_backend", window, || {
                counter = counter.wrapping_add(1) & ((1 << 56) - 1);
                std::hint::black_box(cipher.one_time_pad(0x8000, counter));
            });
            (b, bench.ns_per_op, bench.ops_per_sec)
        })
        .collect();

    // 2b'. The bulk-OTP curve: per-line cost of the fused `pad_lines`
    //      sweep at 1/4/16/64-line batches, per backend. This is the
    //      number the batched `verify_and_read` path actually pays, and
    //      the record where VAES earns its keep — its per-*line* latency
    //      loses to AES-NI but a 16-line batch amortizes key broadcast
    //      across four full zmm register sets. A quarter window per
    //      point keeps the 16-point grid near one backend's budget.
    let otp_bulk = run_otp_bulk_curve(window / 4);

    // 2c. End-to-end functional-plane reads: every read pays an OTP
    //     decrypt plus the batched chain-MAC verification, so this is
    //     where the AES-NI pipeline and interleaved SipHash must show up
    //     *together*. The `_ttable` pin is the previous crypto under an
    //     identical memory, for the speedup record.
    {
        let build = |pin: Option<AesBackend>| {
            // The pin is applied only around construction (a cipher keeps
            // the backend it was built with) and the prior selection is
            // restored, so a `--crypto-backend` override stays in force
            // for the rest of the suite.
            let saved = aes::forced_backend();
            if pin.is_some() {
                aes::force_backend(pin);
            }
            let mut m = SecureMemory::new(TreeConfig::morphtree(), SECURE_MEMORY, [0x42u8; 16]);
            aes::force_backend(saved);
            let mut rng = SplitMix64::new(9);
            let mut payload = [0u8; CACHELINE_BYTES];
            for line in 0..SECURE_HOT {
                payload[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                m.write(line, &payload);
            }
            m
        };
        let m = build(None);
        let mut rng = SplitMix64::new(10);
        benches.push(measure("secure_read", window, || {
            let line = rng.next_u64() % SECURE_HOT;
            std::hint::black_box(m.read(std::hint::black_box(line)).expect("intact memory"));
        }));
        let m = build(Some(AesBackend::TTable));
        let mut rng = SplitMix64::new(10);
        benches.push(measure("secure_read_ttable", window, || {
            let line = rng.next_u64() % SECURE_HOT;
            std::hint::black_box(m.read(std::hint::black_box(line)).expect("intact memory"));
        }));
    }

    // 3. Engine reads/writes: the flat-store engine vs the frozen HashMap
    //    reference, identical configuration and access stream. The gated
    //    pair runs the paper's cache configuration with cache-resident
    //    metadata (the representative regime); the `_cold` pair is an
    //    informational miss-storm stress.
    {
        let config = TreeConfig::morphtree();
        let mut out = Vec::with_capacity(512);

        // Pre-touch every line once so the steady-state measurement starts
        // from a warm cache in both engines.
        let mut e = MetadataEngine::new(config.clone(), MEMORY, CACHE, MacMode::Inline);
        for line in 0..HOT_READ_LINES {
            out.clear();
            e.read(line, &mut out);
        }
        let mut rng = SplitMix64::new(3);
        benches.push(measure("engine_read", window, || {
            let line = rng.next_u64() % HOT_READ_LINES;
            out.clear();
            e.read(std::hint::black_box(line), &mut out);
            std::hint::black_box(out.len());
        }));

        let mut e = ReferenceEngine::new(config.clone(), MEMORY, CACHE, MacMode::Inline);
        for line in 0..HOT_READ_LINES {
            out.clear();
            e.read(line, &mut out);
        }
        let mut rng = SplitMix64::new(3);
        benches.push(measure("engine_read_reference", window, || {
            let line = rng.next_u64() % HOT_READ_LINES;
            out.clear();
            e.read(std::hint::black_box(line), &mut out);
            std::hint::black_box(out.len());
        }));

        let mut e = MetadataEngine::new(config.clone(), MEMORY, CACHE, MacMode::Inline);
        let mut rng = SplitMix64::new(4);
        benches.push(measure("engine_write", window, || {
            let line = rng.next_u64() % HOT_LINES;
            out.clear();
            e.write(std::hint::black_box(line), &mut out);
            std::hint::black_box(out.len());
        }));

        let mut e = ReferenceEngine::new(config.clone(), MEMORY, CACHE, MacMode::Inline);
        let mut rng = SplitMix64::new(4);
        benches.push(measure("engine_write_reference", window, || {
            let line = rng.next_u64() % HOT_LINES;
            out.clear();
            e.write(std::hint::black_box(line), &mut out);
            std::hint::black_box(out.len());
        }));

        let mut e = MetadataEngine::new(config.clone(), MEMORY, COLD_CACHE, MacMode::Inline);
        let mut rng = SplitMix64::new(5);
        benches.push(measure("engine_read_cold", window, || {
            let line = rng.next_u64() % FOOTPRINT_LINES;
            out.clear();
            e.read(std::hint::black_box(line), &mut out);
            std::hint::black_box(out.len());
        }));

        let mut e = ReferenceEngine::new(config, MEMORY, COLD_CACHE, MacMode::Inline);
        let mut rng = SplitMix64::new(5);
        benches.push(measure("engine_read_cold_reference", window, || {
            let line = rng.next_u64() % FOOTPRINT_LINES;
            out.clear();
            e.read(std::hint::black_box(line), &mut out);
            std::hint::black_box(out.len());
        }));
    }

    for b in &benches {
        writeln!(
            progress,
            "{:<28} {:>10} ns/op {:>14.0} ops/s",
            b.name, number(b.ns_per_op), b.ops_per_sec
        )
        .expect("write to string");
    }
    for (b, ns, ops) in &otp_by_backend {
        writeln!(
            progress,
            "{:<28} {:>10} ns/op {ops:>14.0} ops/s",
            format!("otp_64b[{b}]"),
            number(*ns),
        )
        .expect("write to string");
    }
    for (b, points) in &otp_bulk {
        for p in points {
            writeln!(
                progress,
                "{:<28} {:>10} ns/line {:>12.0} lines/s",
                format!("otp_bulk[{b},{}l]", p.lines),
                number(p.ns_per_line),
                p.lines_per_sec,
            )
            .expect("write to string");
        }
    }

    // 4. Serve-mode scaling: the sharded concurrent engine at 1/2/4/8
    //    worker threads (one subtree shard per worker) over the full
    //    256 MiB functional plane. On a single-core host the curve still
    //    rises because sharding shallows each subtree — fewer MAC/OTP
    //    levels per write — independent of hardware parallelism.
    let serve_points = run_serve_scaling(window);
    for (threads, ops_per_sec) in &serve_points {
        writeln!(
            progress,
            "{:<28} {:>10} ns/op {ops_per_sec:>14.0} ops/s",
            format!("serve_{threads}t"),
            number(1e9 / ops_per_sec),
        )
        .expect("write to string");
    }

    // 5. Crash-recovery grid: bounded (epoch-anchored) recovery vs the
    //    full-replay baseline on identical (snapshot, WAL) inputs.
    let recovery_points = if flags.get_or("recovery", "1") != "0" {
        run_recovery_grid(quick)
    } else {
        Vec::new()
    };
    for p in &recovery_points {
        writeln!(
            progress,
            "{:<28} {:>10} ms bounded {:>10} ms full ({:>5}x)",
            format!("recover_{}mib_{}txn", p.memory_mib, p.wal_txns),
            number(p.bounded_ms),
            number(p.full_ms),
            number(p.speedup()),
        )
        .expect("write to string");
    }

    // 5b. Proof-size-vs-arity sweep: the five evaluated configs prove
    //     the same line set; size is structural, verify time is wall.
    let proof_points = run_proof_grid(quick);
    for p in &proof_points {
        writeln!(
            progress,
            "{:<28} {:>10} bytes {:>6} node(s) {:>10} ns/verify",
            format!("proof_{}", p.name),
            p.proof_bytes,
            p.nodes,
            number(p.verify_ns),
        )
        .expect("write to string");
    }

    // 6. One full figure sweep, end to end.
    let sweep_ms = run_sweep(quick)?;
    writeln!(progress, "{:<28} {sweep_ms:>10} ms wall-clock", "sweep_fig07").expect("write");

    let ratio = |fast: &str, slow: &str| -> f64 {
        let get = |name: &str| benches.iter().find(|b| b.name == name).map_or(0.0, |b| b.ns_per_op);
        let (f, s) = (get(fast), get(slow));
        if f > 0.0 {
            s / f
        } else {
            0.0
        }
    };
    let speedups = [
        ("engine_read", ratio("engine_read", "engine_read_reference")),
        ("engine_write", ratio("engine_write", "engine_write_reference")),
        ("engine_read_cold", ratio("engine_read_cold", "engine_read_cold_reference")),
        ("otp_64b", ratio("otp_64b", "otp_64b_reference")),
        ("secure_read", ratio("secure_read", "secure_read_ttable")),
    ];

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"morphtree-perf-v1\",\n");
    writeln!(json, "  \"mode\": \"{}\",", if quick { "quick" } else { "full" }).expect("write");
    json.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let comma = if i + 1 == benches.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"ops_per_sec\": {}}}{comma}",
            b.name,
            number(b.ns_per_op),
            number(b.ops_per_sec),
        )
        .expect("write to string");
    }
    json.push_str("  ],\n");
    json.push_str("  \"crypto\": {\n");
    writeln!(json, "    \"backend\": \"{backend}\",").expect("write");
    writeln!(json, "    \"cpu_features\": \"{}\",", aes::cpu_features()).expect("write");
    json.push_str("    \"otp_64b_by_backend\": [\n");
    for (i, (b, ns, ops)) in otp_by_backend.iter().enumerate() {
        let comma = if i + 1 == otp_by_backend.len() { "" } else { "," };
        writeln!(
            json,
            "      {{\"backend\": \"{b}\", \"ns_per_op\": {}, \"ops_per_sec\": {}}}{comma}",
            number(*ns),
            number(*ops),
        )
        .expect("write to string");
    }
    json.push_str("    ],\n");
    json.push_str("    \"otp_bulk_by_backend\": [\n");
    for (i, (b, points)) in otp_bulk.iter().enumerate() {
        let comma = if i + 1 == otp_bulk.len() { "" } else { "," };
        writeln!(json, "      {{\"backend\": \"{b}\", \"points\": [").expect("write");
        for (j, p) in points.iter().enumerate() {
            let inner = if j + 1 == points.len() { "" } else { "," };
            writeln!(
                json,
                "        {{\"lines\": {}, \"ns_per_line\": {}, \"lines_per_sec\": {}}}{inner}",
                p.lines,
                number(p.ns_per_line),
                number(p.lines_per_sec),
            )
            .expect("write to string");
        }
        writeln!(json, "      ]}}{comma}").expect("write");
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"speedups\": {\n");
    for (i, (name, value)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        writeln!(json, "    \"{name}\": {}{comma}", number(*value)).expect("write to string");
    }
    json.push_str("  },\n");
    json.push_str("  \"serve\": {\n");
    json.push_str("    \"config\": \"morphtree\",\n");
    writeln!(json, "    \"memory_mib\": {},", MEMORY >> 20).expect("write");
    json.push_str("    \"shards\": \"one per thread\",\n");
    json.push_str("    \"points\": [\n");
    for (i, (threads, ops_per_sec)) in serve_points.iter().enumerate() {
        let comma = if i + 1 == serve_points.len() { "" } else { "," };
        writeln!(
            json,
            "      {{\"threads\": {threads}, \"ops_per_sec\": {}}}{comma}",
            number(*ops_per_sec),
        )
        .expect("write to string");
    }
    json.push_str("    ],\n");
    writeln!(json, "    \"scaling_8v1\": {}", number(serve_scaling_8v1(&serve_points)))
        .expect("write");
    json.push_str("  },\n");
    if !recovery_points.is_empty() {
        json.push_str("  \"recovery\": {\n");
        json.push_str("    \"config\": \"morphtree\",\n");
        json.push_str("    \"baseline\": \"full replay + full bottom-up verification\",\n");
        json.push_str("    \"grid\": [\n");
        for (i, p) in recovery_points.iter().enumerate() {
            let comma = if i + 1 == recovery_points.len() { "" } else { "," };
            writeln!(
                json,
                "      {{\"memory_mib\": {}, \"wal_txns\": {}, \"wal_bytes\": {}, \
                 \"bounded_ms\": {}, \"full_ms\": {}, \"speedup\": {}}}{comma}",
                p.memory_mib,
                p.wal_txns,
                p.wal_bytes,
                number(p.bounded_ms),
                number(p.full_ms),
                number(p.speedup()),
            )
            .expect("write to string");
        }
        json.push_str("    ],\n");
        writeln!(
            json,
            "    \"bounded_vs_full_largest\": {}",
            number(recovery_points.last().map_or(0.0, RecoveryPoint::speedup)),
        )
        .expect("write");
        json.push_str("  },\n");
    }
    json.push_str("  \"proofs\": {\n");
    json.push_str("    \"memory_mib\": 1,\n");
    json.push_str("    \"proved_lines\": 8,\n");
    json.push_str("    \"grid\": [\n");
    for (i, p) in proof_points.iter().enumerate() {
        let comma = if i + 1 == proof_points.len() { "" } else { "," };
        writeln!(
            json,
            "      {{\"config\": \"{}\", \"proof_bytes\": {}, \"nodes\": {}, \
             \"mac_computes\": {}, \"verify_ns\": {}}}{comma}",
            p.name,
            p.proof_bytes,
            p.nodes,
            p.mac_computes,
            number(p.verify_ns),
        )
        .expect("write to string");
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    writeln!(json, "  \"sweep\": {{\"figure\": \"fig07\", \"wall_ms\": {sweep_ms}}}").expect("write");
    json.push_str("}\n");

    std::fs::write(out_path, &json)
        .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;

    let mut summary = progress;
    if let Some(path) = flags.get("metrics") {
        // The perf suite is inherently wall-clock, so unlike sweep metrics
        // this file is machine- and run-dependent by design.
        let mut registry = morphtree_core::obs::MetricsRegistry::new();
        for b in &benches {
            registry.gauge_set(&format!("perf.{}.ns_per_op", b.name), Some(b.ns_per_op));
            registry.gauge_set(&format!("perf.{}.ops_per_sec", b.name), Some(b.ops_per_sec));
        }
        for (name, value) in &speedups {
            registry.gauge_set(&format!("perf.speedup.{name}"), Some(*value));
        }
        for (b, ns, ops) in &otp_by_backend {
            registry.gauge_set(&format!("perf.otp_64b.{b}.ns_per_op"), Some(*ns));
            registry.gauge_set(&format!("perf.otp_64b.{b}.ops_per_sec"), Some(*ops));
        }
        for (b, points) in &otp_bulk {
            for p in points {
                registry.gauge_set(
                    &format!("perf.otp_bulk.{b}.{}l.ns_per_line", p.lines),
                    Some(p.ns_per_line),
                );
            }
        }
        for (threads, ops_per_sec) in &serve_points {
            registry.gauge_set(&format!("perf.serve_{threads}t.ops_per_sec"), Some(*ops_per_sec));
        }
        registry.gauge_set("perf.serve.scaling_8v1", Some(serve_scaling_8v1(&serve_points)));
        for p in &recovery_points {
            let prefix = format!("perf.recover_{}mib_{}txn", p.memory_mib, p.wal_txns);
            registry.gauge_set(&format!("{prefix}.bounded_ms"), Some(p.bounded_ms));
            registry.gauge_set(&format!("{prefix}.full_ms"), Some(p.full_ms));
        }
        for p in &proof_points {
            let prefix = format!("perf.proof_{}", p.name);
            registry.counter_set(&format!("{prefix}.bytes"), p.proof_bytes as u64);
            registry.counter_set(&format!("{prefix}.nodes"), p.nodes);
            registry.gauge_set(&format!("{prefix}.verify_ns"), Some(p.verify_ns));
        }
        registry.counter_set("perf.sweep_fig07.wall_ms", sweep_ms);
        crate::metrics::write_metrics(path, &registry)?;
        writeln!(summary, "metrics written to {path}").expect("write to string");
    }
    writeln!(
        summary,
        "\ncrypto backend {backend} (cpu features: {})",
        aes::cpu_features()
    )
    .expect("write to string");
    // The tentpole headline, when the host can state it: fused 16-line
    // VAES batches vs the per-line AES-NI number the suite gated on
    // before cross-line batching existed.
    let bulk16 = |backend: AesBackend| {
        otp_bulk
            .iter()
            .find(|(b, _)| *b == backend)
            .and_then(|(_, points)| points.iter().find(|p| p.lines == 16))
            .map(|p| p.ns_per_line)
    };
    if let (Some(vaes16), Some((_, aesni_ns, _))) = (
        bulk16(AesBackend::Vaes),
        otp_by_backend.iter().find(|(b, _, _)| *b == AesBackend::AesNi),
    ) {
        writeln!(
            summary,
            "bulk OTP: vaes 16-line batch {} ns/line vs aesni per-line {} ns/op ({}x)",
            number(vaes16),
            number(*aesni_ns),
            number(aesni_ns / vaes16),
        )
        .expect("write to string");
    }
    writeln!(summary, "\nspeedups vs in-process pre-optimization baselines:").expect("write");
    for (name, value) in speedups {
        writeln!(summary, "  {name:<14} {:>6}x", number(value)).expect("write to string");
    }
    writeln!(
        summary,
        "\nserve scaling (8 threads vs 1): {}x",
        number(serve_scaling_8v1(&serve_points))
    )
    .expect("write to string");
    {
        let size_of = |key: &str| {
            proof_points.iter().find(|p| p.name == key).map_or(0, |p| p.proof_bytes)
        };
        writeln!(
            summary,
            "proof size for 8 lines over 1 MiB: morphtree {} bytes vs sc64 {} bytes",
            size_of("morphtree"),
            size_of("sc64"),
        )
        .expect("write to string");
    }
    if let Some(largest) = recovery_points.last() {
        writeln!(
            summary,
            "bounded recovery vs full replay at {} MiB / {} txn(s): {}x",
            largest.memory_mib,
            largest.wal_txns,
            number(largest.speedup()),
        )
        .expect("write to string");
    }
    writeln!(summary, "\nreport written to {out_path}").expect("write to string");
    if let Some(path) = flags.get("gate") {
        gate_against(path, backend, &otp_by_backend, &mut summary)?;
    }
    Ok(summary)
}

/// Enforces the perf gate against a committed baseline: the *selected*
/// backend's `otp_64b` must stay within [`GATE_SLACK`] of the committed
/// number for that same backend; every other available backend's
/// comparison is rendered but informational. A backend with no committed
/// baseline (e.g. AES-NI or VAES measured on a host whose baseline was
/// taken without them) is reported and skipped rather than failed — the
/// fallback path must keep passing on machines the baseline never saw.
/// When the *selected* backend is the one missing, the skip is loud: the
/// report names the baseline file and the exact `--crypto-backend` run
/// that would make the gate enforceable, so an informational pass can't
/// be mistaken for a clean enforced one.
fn gate_against(
    path: &str,
    selected: AesBackend,
    measured: &[(AesBackend, f64, f64)],
    out: &mut String,
) -> Result<(), CliError> {
    let baseline = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read gate baseline {path}: {e}")))?;
    writeln!(out, "\nperf gate vs {path} (enforcing for selected backend `{selected}`):")
        .expect("write to string");
    let mut failure = None;
    for (b, ns, _) in measured {
        let enforced = *b == selected;
        let Some(base) = baseline_otp_ns(&baseline, b.as_str()) else {
            // Like-vs-like or nothing: a backend with no same-backend
            // committed number is never compared against another
            // backend's. When that backend is the *selected* one the
            // whole gate downgrades to an explicit informational skip —
            // silently passing would look like enforcement.
            if enforced {
                writeln!(
                    out,
                    "  otp_64b[{b}] {:>10} ns/op — gate SKIPPED: {path} has no committed \
                     baseline for selected backend `{b}` (informational run; commit a \
                     baseline measured with --crypto-backend {b} to enforce)",
                    number(*ns),
                )
                .expect("write to string");
            } else {
                writeln!(
                    out,
                    "  otp_64b[{b}] {:>10} ns/op — no committed baseline (informational)",
                    number(*ns),
                )
                .expect("write to string");
            }
            continue;
        };
        let over = *ns > base * GATE_SLACK;
        let verdict = match (over, enforced) {
            (false, _) => "ok",
            (true, true) => "REGRESSION",
            (true, false) => "regressed (informational)",
        };
        writeln!(
            out,
            "  otp_64b[{b}] {:>10} ns/op vs {:>10} ns/op committed — {verdict}",
            number(*ns),
            number(base),
        )
        .expect("write to string");
        if over && enforced {
            failure = Some(format!(
                "otp_64b[{b}] measured {} ns/op vs {} ns/op committed \
                 (more than {:.0}% over)",
                number(*ns),
                number(base),
                (GATE_SLACK - 1.0) * 100.0,
            ));
        }
    }
    match failure {
        None => Ok(()),
        Some(msg) => Err(err(format!("{out}perf gate FAILED: {msg}"))),
    }
}

/// Pulls one backend's committed `otp_64b` ns/op out of a BENCH.json
/// baseline, matching the exact shape [`cmd_perf`] emits for the
/// `otp_64b_by_backend` array. A hand-rolled scan, like the emitter —
/// the schema is ours on both sides, so a JSON parser dependency buys
/// nothing.
fn baseline_otp_ns(json: &str, backend: &str) -> Option<f64> {
    let needle = format!("{{\"backend\": \"{backend}\", \"ns_per_op\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Builds the serve benchmark's request batch: 80% writes over per-shard
/// hot ranges (equal share per shard, [`SERVE_HOT_LINES`] total), the
/// same shape `morphtree serve` drives by default.
fn serve_batch(rng: &mut SplitMix64, memory: &ShardedMemory) -> Vec<Op> {
    let plan = memory.plan();
    let shards = plan.shards() as u64;
    let per_shard_hot = (SERVE_HOT_LINES / shards).max(1);
    (0..SERVE_BATCH)
        .map(|_| {
            let shard = (rng.next_u64() % shards) as usize;
            let line = plan.shard_base(shard) + rng.next_u64() % per_shard_hot;
            if rng.next_u64() % 100 < 80 {
                let mut data = [0u8; CACHELINE_BYTES];
                data[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                Op::Write { line, data }
            } else {
                Op::Read { line }
            }
        })
        .collect()
}

/// Measures serve-mode throughput for each worker count in
/// [`SERVE_THREADS`] (shards = threads) and returns `(threads, ops/sec)`
/// points, best-of-[`PASSES`] sub-windows like every other benchmark.
fn run_serve_scaling(window: Duration) -> Vec<(usize, f64)> {
    SERVE_THREADS
        .iter()
        .map(|&threads| {
            let mut memory =
                ShardedMemory::new(TreeConfig::morphtree(), MEMORY, [0x42u8; 16], threads)
                    .expect("256 MiB shards cleanly at any benchmarked thread count");
            let mut rng = SplitMix64::new(7);
            let ops = serve_batch(&mut rng, &memory);
            let warm_up_end = Instant::now() + window / 4;
            while Instant::now() < warm_up_end {
                memory.run_batch(&ops, threads);
            }
            let sub_window = window / PASSES;
            let mut best = 0.0f64;
            for _ in 0..PASSES {
                let mut count = 0u64;
                let started = Instant::now();
                loop {
                    memory.run_batch(&ops, threads);
                    count += ops.len() as u64;
                    if started.elapsed() >= sub_window {
                        break;
                    }
                }
                best = best.max(count as f64 / started.elapsed().as_secs_f64());
            }
            (threads, best)
        })
        .collect()
}

/// One point of the crash-recovery grid: bounded vs full recovery of the
/// same durable state.
struct RecoveryPoint {
    memory_mib: u64,
    wal_txns: usize,
    wal_bytes: usize,
    bounded_ms: f64,
    full_ms: f64,
}

impl RecoveryPoint {
    fn speedup(&self) -> f64 {
        if self.bounded_ms > 0.0 {
            self.full_ms / self.bounded_ms
        } else {
            0.0
        }
    }
}

/// Best-of-3 wall-clock milliseconds for `op` (the minimum is the stable
/// estimator under one-sided interference noise, as with [`measure`]).
fn time_ms<F: FnMut()>(mut op: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        op();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the recovery grid: memory size × open-epoch WAL length. For each
/// point the victim is an [`EpochMemory`] whose sealed history has
/// populated a slice of the data store proportional to its size (1 base
/// write per 64 lines, floored at 256 — full verification must re-prove
/// every populated line, so its cost tracks state size the way a served
/// memory's would), plus an open epoch of `wal_txns` writes; both
/// recovery paths get the identical `(sealed snapshot, WAL)` pair. The
/// grid is ordered smallest→largest, so `.last()` is the largest point —
/// where bounded recovery's advantage over full replay is most
/// pronounced.
fn run_recovery_grid(quick: bool) -> Vec<RecoveryPoint> {
    let memories: &[u64] = if quick { &[1, 4] } else { &[1, 8, 32] };
    let txns: &[usize] = if quick { &[8, 32] } else { &[8, 64, 256] };
    let mut points = Vec::new();
    for &memory_mib in memories {
        for &wal_txns in txns {
            let mut mem =
                EpochMemory::new(TreeConfig::morphtree(), memory_mib << 20, [0x42; 16], 0);
            let lines = (memory_mib << 20) / 64;
            let base_writes = (lines / 64).max(256);
            let mut rng = SplitMix64::new(11);
            let mut payload = [0u8; CACHELINE_BYTES];
            // One sealed epoch of base history...
            for _ in 0..base_writes {
                payload[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                mem.write(rng.next_u64() % lines, &payload);
            }
            mem.cut();
            // ...then the open epoch a crash would interrupt.
            for _ in 0..wal_txns {
                payload[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                mem.write(rng.next_u64() % lines, &payload);
            }
            let snapshot = mem.sealed_snapshot();
            let wal = mem.wal_bytes();
            let bounded_ms = time_ms(|| {
                let (m, stats) = recover_bounded(&snapshot, wal).expect("bounded recovery");
                std::hint::black_box((m.root_digest(), stats.replayed_txns));
            });
            let full_ms = time_ms(|| {
                let m = recover(&snapshot, wal).expect("full recovery");
                std::hint::black_box(m.root_digest());
            });
            points.push(RecoveryPoint {
                memory_mib,
                wal_txns,
                wal_bytes: wal.len(),
                bounded_ms,
                full_ms,
            });
        }
    }
    points
}

/// One configuration's point in the proof-size-vs-arity sweep.
struct ProofPoint {
    /// Short config key (`sc64`, `vault`, `zcc`, `mcr`, `morphtree`).
    name: &'static str,
    /// Encoded proof size in bytes — deterministic for a fixed image and
    /// line set, so this is a *structural* number, not a timing.
    proof_bytes: usize,
    /// Counter nodes the proof carries (chain + top, deduplicated).
    nodes: u64,
    /// MACs the standalone verifier recomputes.
    mac_computes: u64,
    /// Mean wall-clock per standalone verification.
    verify_ns: f64,
}

/// Proves the same 8-line set over the same 1 MiB image under each of the
/// five evaluated tree configurations (the attack-campaign set) and
/// measures encoded proof size plus standalone verification time. Higher
/// arity means shorter chains and fewer deduplicated upper nodes, so the
/// 128-ary morphable configs must beat 64-ary SC-64 on proof bytes — the
/// same geometry argument as the paper's metadata-overhead claim, and a
/// unit test pins it.
fn run_proof_grid(quick: bool) -> Vec<ProofPoint> {
    use morphtree_core::proof::verify_proof;

    const PROOF_MEM: u64 = 1 << 20;
    const WRITTEN: u64 = 512;
    let proved: [u64; 8] = [0, 3, 60, 177, 300, 333, 409, 511];
    let iters = if quick { 16 } else { 256 };
    morphtree_core::attack::campaign_configs()
        .into_iter()
        .map(|(name, config)| {
            let mut memory = SecureMemory::new(config, PROOF_MEM, [0x61; 16]);
            let mut payload = [0u8; CACHELINE_BYTES];
            for line in 0..WRITTEN {
                payload[..8].copy_from_slice(&(line.wrapping_mul(0x9e37)).to_le_bytes());
                memory.write(line, &payload);
            }
            let proof = memory.prove(&proved).expect("prove written lines");
            let encoded = proof.encode();
            let root = memory.root_digest();
            let stats = verify_proof(&proof, root).expect("fresh proof verifies");
            let started = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(verify_proof(&proof, root).expect("fresh proof verifies"));
            }
            let verify_ns = started.elapsed().as_nanos() as f64 / f64::from(iters);
            ProofPoint {
                name,
                proof_bytes: encoded.len(),
                nodes: stats.nodes,
                mac_computes: stats.mac_computes,
                verify_ns,
            }
        })
        .collect()
}

/// The headline scaling ratio: 8-thread throughput over 1-thread.
fn serve_scaling_8v1(points: &[(usize, f64)]) -> f64 {
    let at = |threads: usize| {
        points.iter().find(|(t, _)| *t == threads).map_or(0.0, |(_, ops)| *ops)
    };
    let one = at(1);
    if one > 0.0 {
        at(8) / one
    } else {
        0.0
    }
}

/// Runs the `fig07` sweep once and returns its wall-clock milliseconds.
fn run_sweep(quick: bool) -> Result<u64, CliError> {
    use morphtree_experiments::{driver, Lab, Setup};

    // Quick mode shrinks the model so CI stays fast; full mode matches
    // the `sweep` command's defaults.
    let setup = if quick {
        Setup { scale: 64, warmup_instructions: 200_000, measure_instructions: 100_000, seed: 42 }
    } else {
        Setup {
            scale: 16,
            warmup_instructions: 4_000_000,
            measure_instructions: 2_000_000,
            seed: 42,
        }
    };
    let mut lab = Lab::new(setup);
    // Timing only: don't overwrite `results/` from a perf run.
    lab.emit_reports = false;
    let started = Instant::now();
    let outcome = driver::run_figures(&mut lab, &["fig07"]).map_err(err)?;
    let wall_ms = started.elapsed().as_millis() as u64;
    if let Some(summary) = outcome.failure_summary() {
        return Err(err(summary));
    }
    Ok(wall_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_throughput() {
        let mut x = 0u64;
        let b = measure("noop", Duration::from_millis(5), || x = x.wrapping_add(1));
        assert!(b.ns_per_op > 0.0);
        assert!(b.ops_per_sec > 0.0);
        assert!(x > 0);
    }

    #[test]
    fn number_formats_finite_and_guards_nonfinite() {
        assert_eq!(number(1.5), "1.500");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn serve_scaling_covers_every_thread_count() {
        let points = run_serve_scaling(Duration::from_millis(8));
        assert_eq!(points.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1, 2, 4, 8]);
        assert!(points.iter().all(|(_, ops)| *ops > 0.0), "{points:?}");
    }

    #[test]
    fn recovery_grid_prefers_bounded_at_the_largest_point() {
        let points = run_recovery_grid(true);
        assert_eq!(points.len(), 4, "quick grid is 2 memories x 2 WAL lengths");
        assert!(points.iter().all(|p| p.bounded_ms > 0.0 && p.full_ms > 0.0));
        assert!(points.iter().all(|p| p.wal_bytes > 0 && p.wal_txns > 0));
        // With batched touched-line verification the bounded path does a
        // strict subset of the full path's crypto at *every* grid point
        // (the crossover guard in `recover_bounded` makes more-work
        // impossible; `persist::epoch`'s grid test pins the crypto-op
        // inequality deterministically). Wall clock on a shared host is
        // noise-dominated at small points — both paths share the same
        // snapshot decode + replay — so this only guards against a
        // pathological regression (e.g. an accidentally quadratic
        // bounded path), not jitter.
        for p in &points {
            assert!(
                p.speedup() > 0.3,
                "bounded pathologically slower than full at {} MiB / {} txn: {}ms vs {}ms",
                p.memory_mib,
                p.wal_txns,
                p.bounded_ms,
                p.full_ms,
            );
        }
        let largest = points.last().unwrap();
        assert!(
            largest.speedup() > 1.0,
            "bounded {}ms vs full {}ms at {} MiB",
            largest.bounded_ms,
            largest.full_ms,
            largest.memory_mib,
        );
    }

    #[test]
    fn proof_grid_morphable_configs_beat_sc64_on_size() {
        // The acceptance claim behind the BENCH.json `proofs` section:
        // proof size is structural (no timing), so this is deterministic.
        // 128-ary morphable trees cover the same 8 lines with fewer,
        // shorter chains than 64-ary SC-64.
        let points = run_proof_grid(true);
        assert_eq!(points.len(), 5, "all five evaluated configs");
        let size_of = |key: &str| {
            points.iter().find(|p| p.name == key).map(|p| p.proof_bytes).unwrap()
        };
        for key in ["zcc", "mcr", "morphtree"] {
            assert!(
                size_of(key) < size_of("sc64"),
                "{key} proof ({} B) should be smaller than sc64 ({} B)",
                size_of(key),
                size_of("sc64"),
            );
        }
        for p in &points {
            assert!(p.nodes > 0 && p.mac_computes > p.nodes, "{}", p.name);
            assert!(p.verify_ns > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn gate_parses_committed_backend_baselines() {
        let json = "\"otp_64b_by_backend\": [\n\
            {\"backend\": \"scalar\", \"ns_per_op\": 600.125, \"ops_per_sec\": 1.0},\n\
            {\"backend\": \"ttable\", \"ns_per_op\": 244.531, \"ops_per_sec\": 2.0}\n]";
        assert_eq!(baseline_otp_ns(json, "scalar"), Some(600.125));
        assert_eq!(baseline_otp_ns(json, "ttable"), Some(244.531));
        assert_eq!(baseline_otp_ns(json, "aesni"), None);
        assert_eq!(baseline_otp_ns("not json at all", "scalar"), None);
    }

    #[test]
    fn gate_enforces_only_the_selected_backend() {
        let path = std::env::temp_dir().join("morphtree-perf-gate-baseline.json");
        let path_str = path.to_str().unwrap().to_owned();
        std::fs::write(
            &path,
            "{\"backend\": \"scalar\", \"ns_per_op\": 100.000, \"ops_per_sec\": 1.0},\n\
             {\"backend\": \"ttable\", \"ns_per_op\": 100.000, \"ops_per_sec\": 1.0}",
        )
        .unwrap();
        let measured = vec![
            (AesBackend::Scalar, 500.0, 2e6), // 5x over its baseline
            (AesBackend::TTable, 110.0, 9e6), // within slack
        ];

        // Selected backend within slack: the scalar blowout is reported
        // but informational, and the command succeeds.
        let mut report = String::new();
        gate_against(&path_str, AesBackend::TTable, &measured, &mut report).unwrap();
        assert!(report.contains("regressed (informational)"), "{report}");
        assert!(report.contains("otp_64b[ttable]") && report.contains("ok"), "{report}");

        // Selected backend over slack: hard failure naming the backend.
        let mut report = String::new();
        let e = gate_against(&path_str, AesBackend::Scalar, &measured, &mut report).unwrap_err();
        assert!(e.0.contains("perf gate FAILED: otp_64b[scalar]"), "{}", e.0);

        // The *selected* backend absent from the baseline: the gate
        // skips loudly — it names the skip, the baseline file, and the
        // run that would make it enforceable — instead of failing or
        // silently passing.
        let unseen = vec![(AesBackend::AesNi, 25.0, 4e7)];
        let mut report = String::new();
        gate_against(&path_str, AesBackend::AesNi, &unseen, &mut report).unwrap();
        assert!(report.contains("gate SKIPPED"), "{report}");
        assert!(report.contains("selected backend `aesni`"), "{report}");
        assert!(report.contains("--crypto-backend aesni"), "{report}");

        // A *non-selected* backend absent from the baseline stays a
        // quiet informational line.
        let mixed = vec![(AesBackend::Scalar, 110.0, 9e6), (AesBackend::AesNi, 25.0, 4e7)];
        let mut report = String::new();
        gate_against(&path_str, AesBackend::Scalar, &mixed, &mut report).unwrap();
        assert!(report.contains("no committed baseline (informational)"), "{report}");
        assert!(!report.contains("gate SKIPPED"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn otp_bulk_curve_covers_every_backend_and_batch() {
        let curve = run_otp_bulk_curve(Duration::from_millis(4));
        assert_eq!(
            curve.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            AesBackend::all_available(),
        );
        for (b, points) in &curve {
            assert_eq!(
                points.iter().map(|p| p.lines).collect::<Vec<_>>(),
                BULK_BATCHES.to_vec(),
                "{b}",
            );
            for p in points {
                assert!(p.ns_per_line > 0.0 && p.lines_per_sec > 0.0, "{b} at {}l", p.lines);
            }
        }
    }

    #[test]
    fn serve_scaling_ratio_is_8_over_1() {
        let points = vec![(1, 100.0), (2, 110.0), (4, 115.0), (8, 120.0)];
        assert!((serve_scaling_8v1(&points) - 1.2).abs() < 1e-9);
        assert_eq!(serve_scaling_8v1(&[]), 0.0);
    }
}
