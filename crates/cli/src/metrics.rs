//! Metrics export (`--metrics <path>`) and the `morphtree stats` renderer.
//!
//! Every command that takes `--metrics` writes the same schema: one
//! [`MetricsRegistry`] JSON object (`{counters, gauges, histograms}`).
//! Keys are dotted paths prefixed by what produced them
//! (`sim.<workload>.<config>.dram.read_latency`), storage is `BTreeMap`,
//! and nothing wall-clock ever enters the registry — so a sweep's metrics
//! file is byte-identical across `--threads` settings and across reruns.
//!
//! `morphtree stats <file>` parses a metrics file back and renders a
//! human-readable summary; unmeasurable gauges (`null`) print as `n/a`.

use std::fmt::Write as _;

use morphtree_core::metadata::{AccessCategory, EngineStats, STAT_LEVELS};
use morphtree_core::obs::{parse_json, JsonValue, MetricsRegistry};
use morphtree_sim::system::SimResult;

use crate::{err, CliError};

/// Folds one full-system simulation into `reg` under `prefix`.
pub fn sim_metrics(reg: &mut MetricsRegistry, prefix: &str, result: &SimResult) {
    reg.counter_set(&format!("{prefix}.instructions"), result.instructions);
    reg.counter_set(&format!("{prefix}.cycles"), result.cycles);
    reg.gauge_set(&format!("{prefix}.ipc"), Some(result.ipc()));
    reg.gauge_set(
        &format!("{prefix}.traffic_per_data_access"),
        Some(result.traffic_per_data_access()),
    );

    let d = &result.dram;
    reg.counter_set(&format!("{prefix}.dram.reads"), d.reads);
    reg.counter_set(&format!("{prefix}.dram.writes"), d.writes);
    reg.counter_set(&format!("{prefix}.dram.activates"), d.activates);
    reg.counter_set(&format!("{prefix}.dram.row_hits"), d.row_hits);
    reg.counter_set(&format!("{prefix}.dram.refresh_conflicts"), d.refresh_conflicts);
    reg.gauge_set(&format!("{prefix}.dram.row_hit_rate"), d.row_hit_rate());
    reg.gauge_set(&format!("{prefix}.dram.mean_read_latency"), d.mean_read_latency());
    reg.histogram_merge(&format!("{prefix}.dram.read_latency"), &d.read_latency);
    reg.histogram_merge(&format!("{prefix}.dram.write_latency"), &d.write_latency);
    reg.histogram_merge(&format!("{prefix}.dram.queue_delay"), &d.queue_delay);

    let c = &result.cache;
    reg.counter_set(&format!("{prefix}.cache.hits"), c.hits);
    reg.counter_set(&format!("{prefix}.cache.misses"), c.misses);
    reg.counter_set(&format!("{prefix}.cache.evictions"), c.evictions());
    reg.gauge_set(&format!("{prefix}.cache.hit_rate"), c.hit_rate());
    for level in 0..STAT_LEVELS {
        let (hits, misses, evicts) =
            (c.level_hits[level], c.level_misses[level], c.level_evicts[level]);
        // Quiet levels (beyond the tree height) are omitted, keeping the
        // file proportional to the actual tree.
        if hits + misses + evicts == 0 {
            continue;
        }
        reg.counter_set(&format!("{prefix}.cache.l{level}.hits"), hits);
        reg.counter_set(&format!("{prefix}.cache.l{level}.misses"), misses);
        reg.counter_set(&format!("{prefix}.cache.l{level}.evicts"), evicts);
    }

    engine_metrics(reg, prefix, &result.engine);

    let e = &result.energy;
    reg.gauge_set(&format!("{prefix}.energy.joules"), Some(e.energy_j()));
    reg.gauge_set(&format!("{prefix}.energy.time_s"), Some(e.time_s));
    reg.gauge_set(&format!("{prefix}.energy.power_w"), e.power_w());
    reg.gauge_set(&format!("{prefix}.energy.edp"), e.edp());
}

/// Folds one metadata-engine study into `reg` under `prefix` (also used
/// for the engine half of a full simulation).
pub fn engine_metrics(reg: &mut MetricsRegistry, prefix: &str, s: &EngineStats) {
    for category in AccessCategory::ALL {
        let total = s.total(category);
        if total == 0 {
            continue;
        }
        reg.counter_set(
            &format!("{prefix}.engine.traffic.{}", category.label()),
            total,
        );
    }
    reg.counter_set(&format!("{prefix}.engine.overflows"), s.total_overflows());
    reg.counter_set(&format!("{prefix}.crypto.otp_ops"), s.otp_ops);
    reg.counter_set(&format!("{prefix}.crypto.mac_ops"), s.mac_ops);
    reg.counter_set(&format!("{prefix}.crypto.mac_batches"), s.mac_batches);
    reg.histogram_merge(&format!("{prefix}.engine.fetch_depth"), &s.fetch_depths);
}

/// Writes `reg` to `path` as pretty-printed JSON.
///
/// # Errors
///
/// Surfaces file-system failures as [`CliError`]s.
pub fn write_metrics(path: &str, reg: &MetricsRegistry) -> Result<(), CliError> {
    std::fs::write(path, reg.to_json().to_pretty_string())
        .map_err(|e| err(format!("cannot write {path}: {e}")))
}

/// The `morphtree stats <file>` command: parses a metrics file and
/// renders a human-readable summary.
///
/// # Errors
///
/// Errors on unreadable files and invalid metrics JSON.
pub fn cmd_stats(path: &str) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let json =
        parse_json(&text).map_err(|e| err(format!("{path}: invalid metrics JSON: {e}")))?;
    render_stats(path, &json)
}

/// Renders one gauge cell: `n/a` when null (unmeasurable), compact
/// fixed-point otherwise.
fn gauge_cell(value: &JsonValue) -> String {
    match value.as_f64() {
        Some(v) if v.abs() >= 1e6 || (v != 0.0 && v.abs() < 1e-3) => format!("{v:.3e}"),
        Some(v) => format!("{v:.4}"),
        None => "n/a".to_owned(),
    }
}

/// Renders one histogram summary line from its JSON object.
fn histogram_cell(h: &JsonValue) -> String {
    let field = |key: &str| {
        h.get(key)
            .and_then(JsonValue::as_u64)
            .map_or_else(|| "n/a".to_owned(), |v| v.to_string())
    };
    let mean = h
        .get("mean")
        .and_then(JsonValue::as_f64)
        .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.1}"));
    format!(
        "count {} | mean {mean} | p50 {} | p90 {} | p99 {} | max {}",
        field("count"),
        field("p50"),
        field("p90"),
        field("p99"),
        field("max"),
    )
}

fn render_stats(path: &str, json: &JsonValue) -> Result<String, CliError> {
    let section = |key: &str| {
        json.get(key)
            .and_then(JsonValue::as_object)
            .ok_or_else(|| err(format!("{path}: metrics JSON has no `{key}` object")))
    };
    let counters = section("counters")?;
    let gauges = section("gauges")?;
    let histograms = section("histograms")?;

    let width = counters
        .keys()
        .chain(gauges.keys())
        .chain(histograms.keys())
        .map(String::len)
        .max()
        .unwrap_or(0);

    let mut out = format!(
        "metrics from {path} — {} counter(s), {} gauge(s), {} histogram(s)\n",
        counters.len(),
        gauges.len(),
        histograms.len(),
    );
    if !counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, value) in counters {
            let v = value.as_u64().map_or_else(|| "?".to_owned(), |v| v.to_string());
            writeln!(out, "  {name:<width$}  {v}").expect("write to string");
        }
    }
    if !gauges.is_empty() {
        out.push_str("\ngauges:\n");
        for (name, value) in gauges {
            writeln!(out, "  {name:<width$}  {}", gauge_cell(value)).expect("write to string");
        }
    }
    if !histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        for (name, value) in histograms {
            writeln!(out, "  {name:<width$}  {}", histogram_cell(value))
                .expect("write to string");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphtree_core::obs::Histogram;

    #[test]
    fn stats_renderer_shows_counters_gauges_and_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.counter_set("sim.mcf.SC-64.dram.reads", 1234);
        reg.gauge_set("sim.mcf.SC-64.dram.row_hit_rate", Some(0.875));
        reg.gauge_set("sim.mcf.SC-64.energy.edp", None);
        let mut h = Histogram::new();
        for v in [100, 200, 400] {
            h.record(v);
        }
        reg.histogram_merge("sim.mcf.SC-64.dram.read_latency", &h);

        let json = reg.to_json();
        let text = render_stats("m.json", &json).unwrap();
        assert!(text.contains("1 counter(s), 2 gauge(s), 1 histogram(s)"), "{text}");
        assert!(text.contains("sim.mcf.SC-64.dram.reads"), "{text}");
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("0.8750"), "{text}");
        assert!(text.contains("n/a"), "{text}");
        assert!(text.contains("count 3"), "{text}");
        assert!(text.contains("max 400"), "{text}");
    }

    #[test]
    fn stats_rejects_json_without_the_metrics_schema() {
        let json = parse_json("{\"foo\": 1}").unwrap();
        let e = render_stats("m.json", &json).unwrap_err();
        assert!(e.0.contains("no `counters` object"), "{}", e.0);
    }
}
