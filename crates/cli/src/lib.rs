//! Library backing the `morphtree` command-line tool.
//!
//! Commands (see `morphtree help`):
//!
//! - `geometry` — integrity-tree sizes/heights for any memory size;
//! - `simulate` — run the full-system simulator on a Table II workload;
//! - `capture` / `replay` — record a workload to an `MTRC` trace file and
//!   drive the simulator from it;
//! - `sweep` — regenerate paper figures with the parallel sweep engine;
//! - `perf` — pinned performance suite over the hot paths (counter
//!   increments, one-time pads, engine reads/writes, one figure sweep),
//!   written to `BENCH.json` with speedups versus in-process baselines;
//! - `attack` — seeded fault-injection campaign against the functional
//!   model: randomized tamper/replay/splice attacks on every tree config,
//!   asserting 100% detection at the right tree location;
//! - `snapshot` — write a populated secure memory to a checksummed
//!   snapshot file (`--out`, `--shards N` for a sharded `MTSH` container),
//!   or recover one and re-verify every MAC bottom-up (`--verify`; sharded
//!   images are verified per shard and the first failing shard is named);
//! - `recover` — rebuild a memory from durable state with work bounded by
//!   the open epoch: `--snapshot FILE [--wal FILE]` for a single memory,
//!   `--state PREFIX` for a sharded container plus per-shard WALs (as
//!   written by `serve --epoch-ops ... --state-out PREFIX`), reporting
//!   per-shard recovery modes and quarantining — not dying on — bad
//!   shards;
//! - `prove` — emit a compact verifiable integrity proof for a set of
//!   data lines from a snapshot (`--lines 0,5,9 --out PROOF`), optionally
//!   publishing the checksummed root artifact (`--root-out`); sharded
//!   `MTSH` images compose per-shard sub-proofs under the folded top;
//! - `verify-proof` — check a proof against a published root (`--root
//!   HEX` or `--root-file`) with **no access to the memory image**; any
//!   tamper of proof or root exits with the integrity code;
//! - `crash-campaign` — seeded fault-injected crash drills against the
//!   epoch-bounded sharded engine: kills at random WAL offsets, crashes
//!   between the per-shard seals of a cut, and corrupted-log quarantine
//!   drills, each recovered and compared byte-for-byte against a
//!   full-replay oracle;
//! - `stats` — render a `--metrics` JSON file as a human-readable
//!   summary;
//! - `list` — available workloads and tree configurations.
//!
//! `simulate`, `sweep`, `attack` and `perf` accept `--metrics PATH` to
//! dump an observability report (see [`metrics`]): histogram-backed DRAM
//! latencies, per-level metadata-cache activity, crypto-op counts, and
//! energy gauges, in one deterministic JSON schema.
//!
//! `simulate` and `sweep` accept `--snapshot FILE` / `--resume FILE` to
//! checkpoint results and resume interrupted runs: a resumed invocation
//! serves every run from the checkpoint and renders byte-identical
//! output, and a checkpoint taken under different flags is refused with
//! a typed error rather than silently blended.
//!
//! Argument parsing is hand-rolled (`--key value` flags) to keep the
//! dependency set minimal.
//!
//! Every error carries an [`ErrorKind`]: usage and I/O problems exit 1,
//! cryptographic integrity verdicts (tampered snapshots, failed proofs,
//! quarantined shards) exit 2 — see [`CliError::exit_code`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod perf;
pub mod serve;

use std::collections::HashMap;
use std::fmt::Write as _;

use morphtree_core::attack::{campaign_configs, run_campaign, CampaignConfig};
use morphtree_core::obs::MetricsRegistry;
use morphtree_core::proof::{AnyProof, ProofStats};
use morphtree_core::tree::{TreeConfig, TreeGeometry};
use morphtree_sim::system::{simulate, simulate_nonsecure, SimConfig};
use morphtree_trace::catalog::{Benchmark, MIXES};
use morphtree_trace::io::RecordedTrace;
use morphtree_trace::workload::SystemWorkload;

/// How a [`CliError`] maps to a process exit code — the contract CI
/// scripts key on. Usage mistakes and I/O failures must stay
/// distinguishable from cryptographic verdicts: a deploy script retries a
/// missing file, but must never retry past a tamper detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad flags, unreadable/unwritable files, malformed requests — exit 1.
    Usage,
    /// A cryptographic integrity verdict: tampered snapshot, failed proof,
    /// mismatched root, quarantined shard — exit 2.
    Integrity,
}

/// Errors surfaced to the command line: a user-facing message plus the
/// [`ErrorKind`] that decides the exit code.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String, pub ErrorKind);

impl CliError {
    /// The exit-code class of this error.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        self.1
    }

    /// The process exit code this error maps to.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self.1 {
            ErrorKind::Usage => 1,
            ErrorKind::Integrity => 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError(message.into(), ErrorKind::Usage)
}

/// An integrity verdict (exit 2): the input was read fine but a MAC,
/// checksum, root, or proof check says it is not authentic.
fn integrity_err(message: impl Into<String>) -> CliError {
    CliError(message.into(), ErrorKind::Integrity)
}

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Rejects stray positionals, flags without values, and repeated flags
    /// (letting `--seed 1 --seed 2` silently mean `--seed 2` would undermine
    /// every reproducibility claim a sweep or attack log makes).
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(err(format!("unexpected argument `{arg}` (flags are --key value)")));
            };
            let Some(value) = iter.next() else {
                return Err(err(format!("flag --{key} needs a value")));
            };
            if values.insert(key.to_owned(), value.clone()).is_some() {
                return Err(err(format!("duplicate flag --{key} (each flag may appear once)")));
            }
        }
        Ok(Flags { values })
    }

    /// String flag with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map_or(default, String::as_str)
    }

    /// Optional string flag.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Errors if missing.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing required flag --{key}")))
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Errors if present but unparsable.
    pub fn number_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .replace('_', "")
                .parse()
                .map_err(|_| err(format!("--{key} expects a number, got `{raw}`"))),
        }
    }
}

/// Applies the `--crypto-backend` flag process-wide and returns the
/// backend every subsequently constructed cipher will use. `auto` (the
/// default) restores runtime detection; a named backend is validated
/// against the CPU before being forced, so an impossible request fails
/// here with the probed feature list instead of panicking mid-benchmark.
///
/// # Errors
///
/// Errors on unknown backend names and on backends the CPU cannot run.
pub fn apply_crypto_backend(flags: &Flags) -> Result<morphtree_crypto::AesBackend, CliError> {
    use morphtree_crypto::aes;
    let choice = select_crypto_backend(
        flags.get_or("crypto-backend", "auto"),
        morphtree_crypto::AesBackend::available,
    )?;
    aes::force_backend(choice);
    Ok(aes::selected_backend())
}

/// Resolves a `--crypto-backend` value against an availability probe
/// (`None` = automatic detection). Split from [`apply_crypto_backend`]
/// with the probe injected so the rejection path — a typed usage error
/// (exit 1) for a backend this CPU cannot run — is testable on hosts
/// where every backend happens to be available.
///
/// # Errors
///
/// Errors on unknown backend names and on backends `available` rejects.
fn select_crypto_backend(
    name: &str,
    available: impl Fn(morphtree_crypto::AesBackend) -> bool,
) -> Result<Option<morphtree_crypto::AesBackend>, CliError> {
    use morphtree_crypto::{aes, AesBackend};
    if name == "auto" {
        return Ok(None);
    }
    let backend = AesBackend::parse(name).ok_or_else(|| {
        err(format!(
            "unknown --crypto-backend `{name}` (try: auto, scalar, ttable, aesni, vaes)"
        ))
    })?;
    if !available(backend) {
        return Err(err(format!(
            "--crypto-backend {name} is not available on this CPU \
             (probed features: {})",
            aes::cpu_features(),
        )));
    }
    Ok(Some(backend))
}

/// Resolves a tree configuration by CLI name.
///
/// # Errors
///
/// Errors on unknown names.
pub fn tree_by_name(name: &str) -> Result<TreeConfig, CliError> {
    match name {
        "sgx" => Ok(TreeConfig::sgx()),
        "vault" => Ok(TreeConfig::vault()),
        "sc64" => Ok(TreeConfig::sc64()),
        "sc128" => Ok(TreeConfig::sc128()),
        "morph" | "morphtree" => Ok(TreeConfig::morphtree()),
        "zcc" | "morph-zcc" => Ok(TreeConfig::morphtree_zcc_only()),
        "mcr" | "morph-single-base" => Ok(TreeConfig::morphtree_single_base()),
        other => Err(err(format!(
            "unknown config `{other}` (try: sgx, vault, sc64, sc128, morph, zcc, mcr)"
        ))),
    }
}

/// Top-level usage text.
#[must_use]
pub fn usage() -> String {
    "morphtree — Morphable Counters secure-memory reproduction (MICRO 2018)\n\
     \n\
     USAGE: morphtree <command> [--flag value]...\n\
     \n\
     COMMANDS:\n\
     \x20 geometry  [--memory-gib 16] [--config all|sc64|morph|...]\n\
     \x20 simulate  --workload NAME [--config morph] [--scale 16]\n\
     \x20           [--instructions 2000000] [--warmup 4000000] [--seed 42]\n\
     \x20           [--metrics FILE] [--snapshot FILE] [--resume FILE]\n\
     \x20 capture   --workload NAME --out FILE [--records 100000] [--cores 4]\n\
     \x20 replay    --trace FILE [--config morph] [--scale 16]\n\
     \x20 sweep     [--figure all|NAME[,NAME...]] [--threads 0=auto] [--scale 16]\n\
     \x20           [--seed 42] [--warmup 4000000] [--instructions 2000000]\n\
     \x20           [--metrics FILE] [--reports 1] [--snapshot FILE] [--resume FILE]\n\
     \x20 snapshot  --out FILE | --verify FILE [--config morph] [--shards 0]\n\
     \x20           [--memory-kib 1024] [--lines 64] [--seed 42]\n\
     \x20 recover   --snapshot FILE [--wal FILE] | --state PREFIX\n\
     \x20 prove     --snapshot FILE --lines 0,5,9 --out PROOF\n\
     \x20           [--root-out FILE] [--metrics FILE]\n\
     \x20 verify-proof --proof FILE --root HEX | --root-file FILE\n\
     \x20           [--metrics FILE]\n\
     \x20 perf      [--out BENCH.json] [--quick 1] [--recovery 1] [--metrics FILE]\n\
     \x20           [--crypto-backend auto|scalar|ttable|aesni|vaes] [--gate BASELINE.json]\n\
     \x20 serve     [--threads 1] [--shards 0=threads] [--ops 100000] [--batch 8192]\n\
     \x20           [--memory-mib 256] [--hot-lines 8192] [--write-pct 80]\n\
     \x20           [--config morph] [--seed 42] [--verify 0] [--metrics FILE]\n\
     \x20           [--epoch-ops 0=off] [--state-out PREFIX]\n\
     \x20           [--crypto-backend auto|scalar|ttable|aesni|vaes]\n\
     \x20 crash-campaign [--seed 42] [--kills 24] [--shards 4] [--threads 2]\n\
     \x20           [--epoch-ops 64] [--batches 12] [--batch-ops 32]\n\
     \x20           [--memory-kib 1024] [--hot-lines 192] [--config morph]\n\
     \x20           [--report FILE]\n\
     \x20 attack    [--seed 42] [--count 100] [--config paper|sc64|vault|zcc|mcr|morphtree]\n\
     \x20           [--memory-kib 1024] [--lines 96] [--metrics FILE]\n\
     \x20 stats     FILE (a --metrics JSON dump)\n\
     \x20 list\n\
     \x20 help\n"
        .to_owned()
}

/// Runs a command; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad input.
pub fn run(command: &str, args: &[String]) -> Result<String, CliError> {
    // `stats` takes a positional file path, which the flag parser would
    // reject; handle it before parsing.
    if command == "stats" {
        let [path] = args else {
            return Err(err("usage: morphtree stats <metrics.json>"));
        };
        return metrics::cmd_stats(path);
    }
    let flags = Flags::parse(args)?;
    match command {
        "geometry" => cmd_geometry(&flags),
        "simulate" => cmd_simulate(&flags),
        "capture" => cmd_capture(&flags),
        "replay" => cmd_replay(&flags),
        "sweep" => cmd_sweep(&flags),
        "snapshot" => cmd_snapshot(&flags),
        "recover" => cmd_recover(&flags),
        "prove" => cmd_prove(&flags),
        "verify-proof" => cmd_verify_proof(&flags),
        "perf" => perf::cmd_perf(&flags),
        "serve" => serve::cmd_serve(&flags),
        "attack" => cmd_attack(&flags),
        "crash-campaign" => cmd_crash_campaign(&flags),
        "list" => Ok(cmd_list()),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command `{other}`\n\n{}", usage()))),
    }
}

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

fn cmd_geometry(flags: &Flags) -> Result<String, CliError> {
    let gib = flags.number_or("memory-gib", 16)?;
    if gib == 0 {
        return Err(err("--memory-gib must be positive"));
    }
    let memory = gib << 30;
    let configs: Vec<TreeConfig> = match flags.get_or("config", "all") {
        "all" => vec![
            TreeConfig::sgx(),
            TreeConfig::vault(),
            TreeConfig::sc64(),
            TreeConfig::sc128(),
            TreeConfig::morphtree(),
        ],
        name => vec![tree_by_name(name)?],
    };
    let mut out = format!("integrity-tree geometry for {gib} GiB\n\n");
    for config in configs {
        let g = TreeGeometry::new(&config, memory);
        writeln!(
            out,
            "{:<26} {} levels | counters {:>10} ({:.3}%) | tree {:>10} ({:.4}%)",
            config.name(),
            g.height(),
            human(g.enc_bytes()),
            g.enc_overhead() * 100.0,
            human(g.tree_bytes()),
            g.tree_overhead() * 100.0,
        )
        .expect("write to string");
    }
    Ok(out)
}

fn sim_config(flags: &Flags) -> Result<(SimConfig, u64, u64), CliError> {
    let scale = flags.number_or("scale", 16)?.max(1);
    let seed = flags.number_or("seed", 42)?;
    let cfg = SimConfig {
        memory_bytes: (16 << 30) / scale,
        metadata_cache_bytes: ((128 * 1024) / scale).max(4096) as usize,
        warmup_instructions: flags.number_or("warmup", 4_000_000)?,
        measure_instructions: flags.number_or("instructions", 2_000_000)?,
        ..SimConfig::default()
    };
    Ok((cfg, scale, seed))
}

fn workload_by_name(
    name: &str,
    cores: usize,
    memory: u64,
    seed: u64,
    scale: u64,
) -> Result<SystemWorkload, CliError> {
    if let Some(mix) = MIXES.iter().find(|m| m.name == name) {
        return Ok(SystemWorkload::mix(mix, memory, seed));
    }
    let bench = Benchmark::by_name(name)
        .ok_or_else(|| err(format!("unknown workload `{name}` (see `morphtree list`)")))?;
    Ok(SystemWorkload::rate_scaled(bench, cores, memory, seed, scale))
}

fn format_result(result: &morphtree_sim::system::SimResult, baseline_ipc: f64) -> String {
    // A zero-cycle run has no EDP; render `n/a` rather than NaN.
    let edp = result
        .energy
        .edp()
        .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.3e}"));
    format!
    (
        "{:<26} IPC {:>6.3} | vs non-secure {:>6.3} | traffic {:>6.3}/access | ovfl {:>7.1}/M | EDP {edp} J*s\n",
        result.config,
        result.ipc(),
        result.ipc() / baseline_ipc,
        result.traffic_per_data_access(),
        result.engine.overflows_per_million_accesses(),
    )
}

/// The operating point of a `simulate` invocation, stamped into result
/// snapshots so `--resume` can refuse a checkpoint taken under other
/// flags instead of silently rendering stale numbers.
fn simulate_fingerprint(name: &str, config: &str, scale: u64, cfg: &SimConfig, seed: u64) -> String {
    format!(
        "simulate workload={name} config={config} scale={scale} warmup={} measure={} seed={seed}",
        cfg.warmup_instructions, cfg.measure_instructions,
    )
}

fn cmd_simulate(flags: &Flags) -> Result<String, CliError> {
    use morphtree_sim::persist::{load_results, save_results};
    use morphtree_sim::system::SimResult;

    let name = flags.required("workload")?;
    let (cfg, scale, seed) = sim_config(flags)?;
    let config_flag = flags.get_or("config", "compare");
    let configs: Vec<TreeConfig> = match config_flag {
        "compare" => vec![TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()],
        other => vec![tree_by_name(other)?],
    };
    let fingerprint = simulate_fingerprint(name, config_flag, scale, &cfg, seed);

    // The result batch (non-secure baseline first) comes either from the
    // simulator or, under --resume, verbatim from a prior run's snapshot;
    // everything below renders identically from either source.
    let mut status = String::new();
    let results: Vec<SimResult> = if let Some(path) = flags.get("resume") {
        let bytes =
            std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        let (stored, results) = load_results(&bytes)
            .map_err(|e| err(format!("cannot resume from {path}: {e}")))?;
        if stored != fingerprint {
            return Err(err(format!(
                "snapshot {path} was taken at `{stored}`, which does not match the \
                 requested `{fingerprint}` — rerun without --resume"
            )));
        }
        if results.len() != configs.len() + 1 {
            return Err(err(format!(
                "snapshot {path} holds {} result(s), expected {}",
                results.len(),
                configs.len() + 1,
            )));
        }
        writeln!(status, "\nresumed {} result(s) from {path}", results.len())
            .expect("write to string");
        results
    } else {
        let base = {
            let mut w = workload_by_name(name, cfg.cores, cfg.memory_bytes, seed, scale)?;
            simulate_nonsecure(&mut w, &cfg)
        };
        let mut results = vec![base];
        for tree in configs {
            let mut w = workload_by_name(name, cfg.cores, cfg.memory_bytes, seed, scale)?;
            results.push(simulate(&mut w, tree, &cfg));
        }
        results
    };

    let mut out = format!(
        "simulating `{name}` at scale {scale} ({} memory, {} metadata cache)\n\n",
        human(cfg.memory_bytes),
        human(cfg.metadata_cache_bytes as u64),
    );
    let mut registry = morphtree_core::obs::MetricsRegistry::new();
    let baseline_ipc = results[0].ipc();
    for result in &results {
        out.push_str(&format_result(result, baseline_ipc));
        metrics::sim_metrics(&mut registry, &format!("sim.{name}.{}", result.config), result);
    }
    if let Some(path) = flags.get("snapshot") {
        std::fs::write(path, save_results(&fingerprint, &results))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        writeln!(out, "\nsnapshot written to {path} ({} result(s))", results.len())
            .expect("write to string");
    }
    if let Some(path) = flags.get("metrics") {
        metrics::write_metrics(path, &registry)?;
        writeln!(out, "\nmetrics written to {path}").expect("write to string");
    }
    out.push_str(&status);
    Ok(out)
}

fn cmd_capture(flags: &Flags) -> Result<String, CliError> {
    let name = flags.required("workload")?;
    let path = flags.required("out")?;
    let records = flags.number_or("records", 100_000)? as usize;
    let cores = flags.number_or("cores", 4)? as usize;
    let (cfg, scale, seed) = sim_config(flags)?;
    let mut workload = workload_by_name(name, cores, cfg.memory_bytes, seed, scale)?;
    let trace = RecordedTrace::capture(&mut workload, records)
        .map_err(|e| err(format!("cannot capture `{name}`: {e}")))?;
    trace
        .save(path)
        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    Ok(format!(
        "captured {records} records/core x {cores} cores of `{name}` to {path}\n"
    ))
}

fn cmd_replay(flags: &Flags) -> Result<String, CliError> {
    let path = flags.required("trace")?;
    let (mut cfg, _, _) = sim_config(flags)?;
    let mut trace =
        RecordedTrace::load(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    use morphtree_trace::workload::RecordSource;
    cfg.cores = trace.num_cores();
    let tree = tree_by_name(flags.get_or("config", "morph"))?;
    let result = simulate(&mut trace, tree, &cfg);
    let mut out = format!(
        "replayed `{}` ({} cores) from {path}\n\n",
        result.workload, cfg.cores
    );
    out.push_str(&format_result(&result, result.ipc()));
    Ok(out)
}

fn cmd_sweep(flags: &Flags) -> Result<String, CliError> {
    use morphtree_experiments::{checkpoint, driver, Lab, Setup};

    let figure = flags.get_or("figure", "all");
    let names: Vec<&str> = if figure == "all" {
        driver::figure_names()
    } else {
        figure.split(',').collect()
    };
    let setup = Setup {
        scale: flags.number_or("scale", 16)?.max(1),
        warmup_instructions: flags.number_or("warmup", 4_000_000)?,
        measure_instructions: flags.number_or("instructions", 2_000_000)?,
        seed: flags.number_or("seed", 42)?,
    };
    let threads = flags.number_or("threads", 0)? as usize;
    let mut lab = Lab::new(setup);
    lab.set_threads(threads);
    // `--reports 0` renders in-memory only (no `results/` writes) — used
    // by tests and by metrics-only invocations at off-default operating
    // points, which should not overwrite the committed reports.
    lab.emit_reports = flags.get_or("reports", "1") != "0";
    let mut out = String::new();
    if let Some(path) = flags.get("resume") {
        // Seeding the memo before the sweep makes checkpointed runs
        // cache hits; figure rendering is a pure function of the memo,
        // so resumed output is byte-identical to an uninterrupted run.
        let (sims, engines) = checkpoint::load_checkpoint(&mut lab, std::path::Path::new(path))
            .map_err(|e| err(format!("cannot resume from {path}: {e}")))?;
        writeln!(out, "resumed {} cached run(s) from {path}", sims + engines)
            .expect("write to string");
    }
    let outcome = driver::run_figures(&mut lab, &names).map_err(err)?;
    if let Some(summary) = outcome.failure_summary() {
        out.push_str(&summary);
        out.push('\n');
    }
    if let Some(path) = flags.get("metrics") {
        // The registry holds only simulation-derived data (no wall-clock
        // spans), so this file is byte-identical for any --threads value.
        let mut registry = morphtree_core::obs::MetricsRegistry::new();
        for (key, result) in lab.sim_results() {
            let prefix = format!(
                "sim.{}.{}.c{}.{:?}.{:?}.{:?}",
                key.workload,
                key.config,
                key.cache_bytes,
                key.mac,
                key.verification,
                key.replacement,
            );
            metrics::sim_metrics(&mut registry, &prefix, result);
        }
        for (key, stats) in lab.engine_results() {
            let prefix =
                format!("engine.{}.{}.i{}", key.workload, key.config, key.instructions);
            metrics::engine_metrics(&mut registry, &prefix, stats);
        }
        registry.counter_set("sweep.runs.sim", lab.sim_results().len() as u64);
        registry.counter_set("sweep.runs.engine", lab.engine_results().len() as u64);
        metrics::write_metrics(path, &registry)?;
        writeln!(out, "metrics written to {path}").expect("write to string");
    }
    if let Some(path) = flags.get("snapshot") {
        checkpoint::save_checkpoint(&lab, std::path::Path::new(path))
            .map_err(|e| err(format!("cannot write checkpoint: {e}")))?;
        writeln!(
            out,
            "checkpoint written to {path} ({} run(s))",
            lab.sim_results().len() + lab.engine_results().len(),
        )
        .expect("write to string");
    }
    let rendered = names.len() - outcome.failed_figures.len();
    writeln!(
        out,
        "sweep complete: {rendered}/{} figure(s) regenerated under results/ \
         ({} simulations, {} engine studies memoized)",
        names.len(),
        lab.sim_results().len(),
        lab.engine_results().len(),
    )
    .expect("write to string");
    Ok(out)
}

fn cmd_snapshot(flags: &Flags) -> Result<String, CliError> {
    use morphtree_core::concurrent::{Op, ShardedMemory};
    use morphtree_core::functional::SecureMemory;
    use morphtree_core::persist;

    let tree = tree_by_name(flags.get_or("config", "morph"))?;
    match (flags.get("out"), flags.get("verify")) {
        (Some(_), Some(_)) => Err(err("--out and --verify are mutually exclusive")),
        (None, None) => {
            Err(err("snapshot needs --out FILE (write one) or --verify FILE (recover + check)"))
        }
        (Some(path), None) => {
            let memory_bytes = flags.number_or("memory-kib", 1024)?.max(1) << 10;
            let seed = flags.number_or("seed", 42)?;
            let shards = flags.number_or("shards", 0)? as usize;
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&seed.to_le_bytes());
            if shards > 0 {
                // Sharded image: populate through the engine so each shard's
                // subtree carries real written state, then save as MTSH.
                let mut memory = ShardedMemory::new(tree, memory_bytes, key, shards)
                    .map_err(|e| err(format!("cannot shard {shards} ways: {e}")))?;
                let lines = flags.number_or("lines", 64)?.min(memory.plan().data_lines());
                let ops: Vec<Op> = (0..lines)
                    .map(|line| Op::Write {
                        line,
                        data: [(line as u8).wrapping_mul(37) ^ 0x6d; 64],
                    })
                    .collect();
                memory.run_batch(&ops, 1);
                let bytes = persist::save_sharded(&memory);
                std::fs::write(path, &bytes)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                return Ok(format!(
                    "sharded snapshot of {} over {} ({shards} shard(s), {lines} populated \
                     line(s)) written to {path} ({} bytes)\n",
                    memory.shard(0).config().name(),
                    human(memory_bytes),
                    bytes.len(),
                ));
            }
            let mut memory = SecureMemory::new(tree, memory_bytes, key);
            let lines = flags.number_or("lines", 64)?.min(memory.geometry().data_lines());
            for line in 0..lines {
                memory.write(line, &[(line as u8).wrapping_mul(37) ^ 0x6d; 64]);
            }
            let bytes = persist::save_memory(&memory);
            std::fs::write(path, &bytes)
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "snapshot of {} over {} ({lines} populated line(s), {} tree levels) \
                 written to {path} ({} bytes)\n",
                memory.config().name(),
                human(memory_bytes),
                memory.geometry().top_level() + 1,
                bytes.len(),
            ))
        }
        (None, Some(path)) => {
            let bytes =
                std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
            if bytes.starts_with(&persist::MAGIC_SHARDED) {
                return verify_sharded_image(path, &bytes);
            }
            // Recovery with an empty log replays nothing: this is a pure
            // load + bottom-up re-verification of every stored MAC.
            let memory = persist::recover(&bytes, &[])
                .map_err(|e| integrity_err(format!("{path}: snapshot failed verification: {e}")))?;
            Ok(format!(
                "{path}: snapshot verified — {} over {}, {} data line(s), every \
                 counter level and data MAC re-checked\n",
                memory.config().name(),
                human(memory.geometry().memory_bytes()),
                memory.geometry().data_lines(),
            ))
        }
    }
}

/// Verifies an `MTSH` container shard by shard, rendering one line per
/// shard (geometry, root, status). Any failing shard makes the whole
/// command fail, naming the first bad shard — after the full table, so a
/// degraded image is still fully diagnosed.
fn verify_sharded_image(path: &str, bytes: &[u8]) -> Result<String, CliError> {
    use morphtree_core::persist;

    let reports = persist::verify_shards(bytes)
        .map_err(|e| integrity_err(format!("{path}: container failed verification: {e}")))?;
    let mut out = format!("{path}: sharded image, {} shard(s)\n", reports.len());
    let mut first_bad = None;
    for report in &reports {
        match (&report.status, report.root_digest) {
            (Ok(()), Some(root)) => writeln!(
                out,
                "  shard {:<3} {:>10} {:>2} level(s)  root {root:#018x}  verified",
                report.shard,
                human(report.memory_bytes),
                report.levels,
            )
            .expect("write to string"),
            (status, _) => {
                let what = status.as_ref().err().map_or_else(
                    || "failed without a diagnosis".to_owned(),
                    ToString::to_string,
                );
                writeln!(
                    out,
                    "  shard {:<3} {:>10}  FAILED: {what}",
                    report.shard,
                    human(report.memory_bytes),
                )
                .expect("write to string");
                if first_bad.is_none() {
                    first_bad = Some(report.shard);
                }
            }
        }
    }
    match first_bad {
        None => {
            writeln!(out, "{path}: sharded snapshot verified — every shard checked bottom-up")
                .expect("write to string");
            Ok(out)
        }
        Some(shard) => Err(integrity_err(format!(
            "{out}{path}: shard {shard} failed verification (first failure; see table above)"
        ))),
    }
}

fn cmd_recover(flags: &Flags) -> Result<String, CliError> {
    use morphtree_core::persist;
    use std::time::Instant;

    match (flags.get("state"), flags.get("snapshot")) {
        (Some(_), Some(_)) => Err(err("--state and --snapshot are mutually exclusive")),
        (None, None) => Err(err(
            "recover needs --snapshot FILE [--wal FILE] (single memory) or --state PREFIX \
             (sharded container + per-shard WALs)",
        )),
        (None, Some(path)) => {
            let snapshot =
                std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
            let wal = match flags.get("wal") {
                Some(p) => std::fs::read(p).map_err(|e| err(format!("cannot read {p}: {e}")))?,
                None => Vec::new(),
            };
            let started = Instant::now();
            let (memory, stats) = persist::recover_bounded(&snapshot, &wal)
                .map_err(|e| integrity_err(format!("{path}: recovery failed: {e}")))?;
            let elapsed = started.elapsed();
            let mut out = format!(
                "{path}: recovered {} over {} in {:.1}ms\n",
                memory.config().name(),
                human(memory.geometry().memory_bytes()),
                elapsed.as_secs_f64() * 1e3,
            );
            writeln!(
                out,
                "  mode {} | epoch {} | {} txn(s), {} record(s) replayed | {} line(s) verified{}",
                stats.mode,
                stats.sealed_epoch,
                stats.replayed_txns,
                stats.replayed_records,
                stats.verified_lines,
                if stats.seal_fallback { " | SEAL UNUSABLE — full verification forced" } else { "" },
            )
            .expect("write to string");
            Ok(out)
        }
        (Some(prefix), None) => {
            let container_path = format!("{prefix}.mtsh");
            let container = std::fs::read(&container_path)
                .map_err(|e| err(format!("cannot read {container_path}: {e}")))?;
            let mut wals = Vec::new();
            loop {
                let wal_path = format!("{prefix}.shard{}.wal", wals.len());
                match std::fs::read(&wal_path) {
                    Ok(bytes) => wals.push(bytes),
                    Err(_) => break,
                }
            }
            if wals.is_empty() {
                return Err(err(format!(
                    "no per-shard WALs found at {prefix}.shard0.wal — was the state written \
                     with `serve --epoch-ops ... --state-out {prefix}`?"
                )));
            }
            let started = Instant::now();
            let rec = persist::recover_sharded_bounded(&container, &wals)
                .map_err(|e| integrity_err(format!("{container_path}: recovery failed: {e}")))?;
            let elapsed = started.elapsed();
            let mut out = format!(
                "{prefix}: recovered {} shard(s) in {:.1}ms — resolved epoch {}{}\n",
                rec.shards.len(),
                elapsed.as_secs_f64() * 1e3,
                rec.resolved_epoch,
                if rec.mid_cut { " (crash landed mid-cut; resolved to last consistent epoch)" } else { "" },
            );
            let mut quarantined = Vec::new();
            for shard_rec in &rec.shards {
                match &shard_rec.outcome {
                    Ok(stats) => writeln!(
                        out,
                        "  shard {:<3} mode {:<14} epoch {} | {} txn(s) replayed | {} line(s) verified",
                        shard_rec.shard,
                        stats.mode.to_string(),
                        stats.sealed_epoch,
                        stats.replayed_txns,
                        stats.verified_lines,
                    )
                    .expect("write to string"),
                    Err(e) => {
                        writeln!(out, "  shard {:<3} QUARANTINED: {e}", shard_rec.shard)
                            .expect("write to string");
                        quarantined.push(shard_rec.shard.to_string());
                    }
                }
            }
            if quarantined.is_empty() {
                writeln!(out, "all shards healthy; state is serving").expect("write to string");
                Ok(out)
            } else {
                Err(integrity_err(format!(
                    "{out}degraded: shard(s) {} quarantined — healthy shards serve, \
                     quarantined shards refuse",
                    quarantined.join(", "),
                )))
            }
        }
    }
}

/// Parses a `--lines 0,5,9` comma-separated data-line list.
fn parse_line_list(spec: &str) -> Result<Vec<u64>, CliError> {
    spec.split(',')
        .map(|piece| {
            piece
                .trim()
                .parse::<u64>()
                .map_err(|_| err(format!("--lines: `{piece}` is not a data-line index")))
        })
        .collect()
}

/// Parses a published root as hex (with or without `0x`).
fn parse_root_hex(spec: &str) -> Result<u64, CliError> {
    let digits = spec.strip_prefix("0x").unwrap_or(spec);
    u64::from_str_radix(digits, 16)
        .map_err(|_| err(format!("--root: `{spec}` is not a 64-bit hex root")))
}

/// Records the deterministic size/coverage facts of a proof. No
/// wall-clock here — verification *timing* belongs to `morphtree perf`.
fn proof_metrics(path: &str, encoded_len: usize, stats: &ProofStats) -> Result<(), CliError> {
    let mut reg = MetricsRegistry::new();
    reg.counter_set("proof.bytes", encoded_len as u64);
    reg.counter_set("proof.data_lines", stats.data_lines);
    reg.counter_set("proof.nodes", stats.nodes);
    reg.counter_set("proof.shards", stats.shards);
    reg.counter_set("proof.verify.mac_computes", stats.mac_computes);
    metrics::write_metrics(path, &reg)
}

fn cmd_prove(flags: &Flags) -> Result<String, CliError> {
    use morphtree_core::persist;

    let snapshot_path = flags.required("snapshot")?;
    let out_path = flags.required("out")?;
    let lines = parse_line_list(flags.required("lines")?)?;
    let bytes = std::fs::read(snapshot_path)
        .map_err(|e| err(format!("cannot read {snapshot_path}: {e}")))?;

    // Recovery failures are integrity verdicts (the snapshot's checksums
    // or MACs are wrong); a bad line request against a healthy image is a
    // usage error. Both are distinguishable from unreadable files.
    let (proof, root) = if bytes.starts_with(&persist::MAGIC_SHARDED) {
        let mut memory = persist::recover_sharded(&bytes)
            .map_err(|e| integrity_err(format!("{snapshot_path}: snapshot failed: {e}")))?;
        let root = memory.combined_root();
        let proof = memory
            .prove(&lines)
            .map_err(|e| err(format!("{snapshot_path}: cannot prove: {e}")))?;
        (AnyProof::Sharded(proof), root)
    } else {
        let memory = persist::recover(&bytes, &[])
            .map_err(|e| integrity_err(format!("{snapshot_path}: snapshot failed: {e}")))?;
        let proof = memory
            .prove(&lines)
            .map_err(|e| err(format!("{snapshot_path}: cannot prove: {e}")))?;
        (AnyProof::Serial(proof), memory.root_digest())
    };

    let encoded = proof.encode();
    std::fs::write(out_path, &encoded)
        .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
    if let Some(root_path) = flags.get("root-out") {
        std::fs::write(root_path, persist::save_root(root))
            .map_err(|e| err(format!("cannot write {root_path}: {e}")))?;
    }

    // Self-check the freshly minted proof so a prove run can never emit
    // bytes the standalone verifier would reject.
    let stats = morphtree_core::proof::verify_any_proof(&proof, root)
        .map_err(|e| integrity_err(format!("freshly built proof failed self-check: {e}")))?;
    if let Some(path) = flags.get("metrics") {
        proof_metrics(path, encoded.len(), &stats)?;
    }

    let shard_note = match &proof {
        AnyProof::Serial(_) => String::new(),
        AnyProof::Sharded(_) => format!(", {} shard sub-proof(s)", stats.shards),
    };
    Ok(format!(
        "proof over {} data line(s) ({} counter node(s){shard_note}) written to \
         {out_path} ({} bytes)\n  root {root:#018x}{}\n",
        stats.data_lines,
        stats.nodes,
        encoded.len(),
        flags.get("root-out").map_or(String::new(), |p| format!(" published to {p}")),
    ))
}

fn cmd_verify_proof(flags: &Flags) -> Result<String, CliError> {
    use morphtree_core::persist;
    use morphtree_core::proof::{decode_proof, verify_any_proof};

    let proof_path = flags.required("proof")?;
    let root = match (flags.get("root"), flags.get("root-file")) {
        (Some(_), Some(_)) => return Err(err("--root and --root-file are mutually exclusive")),
        (None, None) => {
            return Err(err("verify-proof needs --root HEX or --root-file FILE"));
        }
        (Some(spec), None) => parse_root_hex(spec)?,
        (None, Some(path)) => {
            let bytes =
                std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
            // A corrupt root artifact is an integrity verdict: the bytes
            // were read fine but fail their own checksum.
            persist::load_root(&bytes)
                .map_err(|e| integrity_err(format!("{path}: root artifact rejected: {e}")))?
        }
    };
    let encoded = std::fs::read(proof_path)
        .map_err(|e| err(format!("cannot read {proof_path}: {e}")))?;
    // From here on every failure is an integrity verdict — a proof that
    // does not parse is indistinguishable from a tampered one.
    let proof = decode_proof(&encoded)
        .map_err(|e| integrity_err(format!("{proof_path}: proof rejected: {e}")))?;
    let stats = verify_any_proof(&proof, root)
        .map_err(|e| integrity_err(format!("{proof_path}: proof rejected: {e}")))?;
    if let Some(path) = flags.get("metrics") {
        proof_metrics(path, encoded.len(), &stats)?;
    }
    let shard_note = match stats.shards {
        0 => String::new(),
        n => format!(", {n} shard sub-proof(s)"),
    };
    Ok(format!(
        "{proof_path}: proof verified against root {root:#018x} — {} data line(s), \
         {} counter node(s){shard_note}, {} MAC(s) recomputed, no memory image consulted\n",
        stats.data_lines, stats.nodes, stats.mac_computes,
    ))
}

fn cmd_crash_campaign(flags: &Flags) -> Result<String, CliError> {
    use morphtree_core::attack::{run_crash_campaign, CrashCampaignConfig};

    let campaign = CrashCampaignConfig {
        seed: flags.number_or("seed", 42)?,
        kills: flags.number_or("kills", 24)? as usize,
        shards: flags.number_or("shards", 4)? as usize,
        threads: flags.number_or("threads", 2)? as usize,
        epoch_ops: flags.number_or("epoch-ops", 64)?,
        batches: flags.number_or("batches", 12)? as usize,
        batch_ops: flags.number_or("batch-ops", 32)? as usize,
        memory_bytes: flags.number_or("memory-kib", 1024)? << 10,
        hot_lines: flags.number_or("hot-lines", 192)?,
    };
    let tree = tree_by_name(flags.get_or("config", "morph"))?;
    let report = run_crash_campaign(&tree, &campaign)
        .map_err(|e| err(format!("crash campaign could not run: {e}")))?;
    let rendered = report.render();
    if let Some(path) = flags.get("report") {
        std::fs::write(path, &rendered)
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }
    let mut out = rendered;
    if let Some(path) = flags.get("report") {
        writeln!(out, "report written to {path}").expect("write to string");
    }
    if report.passed() {
        Ok(out)
    } else {
        Err(err(format!(
            "{out}CRASH HOLE: {} divergence(s) — {}",
            report.divergences,
            report.first_divergence().unwrap_or("unrecorded"),
        )))
    }
}

fn cmd_attack(flags: &Flags) -> Result<String, CliError> {
    let campaign = CampaignConfig {
        seed: flags.number_or("seed", 42)?,
        count: flags.number_or("count", 100)? as usize,
        memory_bytes: flags.number_or("memory-kib", 1024)? << 10,
        working_lines: flags.number_or("lines", 96)?,
    };
    if campaign.count == 0 {
        return Err(err("--count must be positive"));
    }
    let targets: Vec<(String, TreeConfig)> = match flags.get_or("config", "paper") {
        "paper" | "all" => campaign_configs()
            .into_iter()
            .map(|(name, tree)| (name.to_owned(), tree))
            .collect(),
        name => vec![(name.to_owned(), tree_by_name(name)?)],
    };
    let mut out = String::new();
    let mut missed = Vec::new();
    let mut registry = morphtree_core::obs::MetricsRegistry::new();
    for (name, tree) in &targets {
        let report = run_campaign(tree, &campaign)
            .map_err(|e| err(format!("campaign on `{name}` failed: {e}")))?;
        registry.counter_set(
            &format!("attack.{name}.attempts"),
            report.total_attempts() as u64,
        );
        registry.counter_set(
            &format!("attack.{name}.detected"),
            report.total_detected() as u64,
        );
        registry.counter_set(
            &format!("attack.{name}.located"),
            report.total_located() as u64,
        );
        out.push_str(&report.render());
        out.push('\n');
        if !report.all_detected() {
            missed.push(format!(
                "{name}: {}/{} detected ({})",
                report.total_detected(),
                report.total_attempts(),
                report.first_miss().unwrap_or("miss unrecorded"),
            ));
        }
    }
    if let Some(path) = flags.get("metrics") {
        metrics::write_metrics(path, &registry)?;
        writeln!(out, "metrics written to {path}").expect("write to string");
    }
    if missed.is_empty() {
        writeln!(
            out,
            "campaign verdict: {} attack(s) x {} config(s), all detected at the expected tree location",
            campaign.count,
            targets.len(),
        )
        .expect("write to string");
        Ok(out)
    } else {
        Err(err(format!(
            "INTEGRITY HOLE: undetected tampering!\n{}",
            missed.join("\n")
        )))
    }
}

fn cmd_list() -> String {
    let mut out = String::from("workloads (Table II):\n");
    for bench in Benchmark::all() {
        writeln!(
            out,
            "  {:<12} {:>5.1} read-PKI {:>5.1} write-PKI {:>5.1} GB",
            bench.name, bench.read_pki, bench.write_pki, bench.footprint_gb
        )
        .expect("write to string");
    }
    out.push_str("mixes: ");
    for mix in &MIXES {
        out.push_str(mix.name);
        out.push(' ');
    }
    out.push_str(
        "\nconfigs: sgx vault sc64 sc128 morph zcc mcr\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let flags = Flags::parse(&strs(&["--a", "1", "--b", "x"])).unwrap();
        assert_eq!(flags.required("a").unwrap(), "1");
        assert_eq!(flags.get_or("b", "y"), "x");
        assert_eq!(flags.get_or("c", "y"), "y");
        assert_eq!(flags.number_or("a", 9).unwrap(), 1);
    }

    #[test]
    fn flags_reject_stray_positionals() {
        assert!(Flags::parse(&strs(&["oops"])).is_err());
        assert!(Flags::parse(&strs(&["--key"])).is_err());
    }

    #[test]
    fn flags_reject_duplicates() {
        // Regression: `--seed 1 --seed 2` used to silently mean `--seed 2`.
        let e = Flags::parse(&strs(&["--seed", "1", "--seed", "2"])).unwrap_err();
        assert!(e.0.contains("duplicate flag --seed"), "{}", e.0);
        // Distinct flags still parse, whatever the order.
        let flags = Flags::parse(&strs(&["--seed", "1", "--count", "2"])).unwrap();
        assert_eq!(flags.number_or("seed", 0).unwrap(), 1);
    }

    #[test]
    fn numbers_accept_underscores() {
        let flags = Flags::parse(&strs(&["--n", "1_000_000"])).unwrap();
        assert_eq!(flags.number_or("n", 0).unwrap(), 1_000_000);
    }

    #[test]
    fn crypto_backend_flag_validates_names_and_availability() {
        // `auto` and the always-available software backends resolve; the
        // selection they produce is process-global, so restore detection
        // before returning (behavior-neutral either way — every backend
        // is the same permutation).
        let flags = Flags::parse(&strs(&["--crypto-backend", "scalar"])).unwrap();
        assert_eq!(
            apply_crypto_backend(&flags).unwrap(),
            morphtree_crypto::AesBackend::Scalar
        );
        let flags = Flags::parse(&strs(&["--crypto-backend", "auto"])).unwrap();
        assert_eq!(
            apply_crypto_backend(&flags).unwrap(),
            morphtree_crypto::aes::detected_backend()
        );
        let flags = Flags::parse(&strs(&["--crypto-backend", "bogus"])).unwrap();
        let e = apply_crypto_backend(&flags).unwrap_err();
        assert!(e.0.contains("unknown --crypto-backend"), "{}", e.0);
        assert!(e.0.contains("vaes"), "suggestions must list vaes: {}", e.0);
        assert_eq!(e.kind(), ErrorKind::Usage);
        morphtree_crypto::aes::force_backend(None);
    }

    /// Satellite bugfix regression: forcing a backend the CPU cannot run
    /// must fail with a typed availability error (usage kind, exit 1) —
    /// never a crash or a silent fallback. The probe is injected so the
    /// rejection path runs even on hosts where every backend is
    /// available (this container has the full VAES set, real fleets do
    /// not), and the hardware-backend branch also runs live when the
    /// host genuinely lacks the features.
    #[test]
    fn unavailable_crypto_backend_is_a_typed_usage_error() {
        use morphtree_crypto::AesBackend;
        // Injected probe: the host "has" nothing but software paths.
        let software_only =
            |b: AesBackend| matches!(b, AesBackend::Scalar | AesBackend::TTable);
        for name in ["aesni", "vaes"] {
            let e = select_crypto_backend(name, software_only).unwrap_err();
            assert_eq!(e.kind(), ErrorKind::Usage, "{name}");
            assert_eq!(e.exit_code(), 1, "{name}");
            assert!(
                e.0.contains(&format!("--crypto-backend {name} is not available")),
                "{name}: {}",
                e.0
            );
            assert!(e.0.contains("probed features"), "{name}: {}", e.0);
        }
        // Software backends pass the same probe; `auto` never probes.
        assert_eq!(
            select_crypto_backend("scalar", software_only).unwrap(),
            Some(AesBackend::Scalar)
        );
        assert_eq!(select_crypto_backend("auto", |_| false).unwrap(), None);
        // Live probe: any backend the real CPU lacks is rejected the
        // same way, and available ones are accepted.
        for backend in [AesBackend::AesNi, AesBackend::Vaes] {
            let result = select_crypto_backend(backend.as_str(), AesBackend::available);
            if backend.available() {
                assert_eq!(result.unwrap(), Some(backend));
            } else {
                assert_eq!(result.unwrap_err().kind(), ErrorKind::Usage);
            }
        }
    }

    #[test]
    fn tree_names_resolve() {
        assert_eq!(tree_by_name("morph").unwrap().name(), "MorphCtr-128");
        assert_eq!(tree_by_name("sc64").unwrap().name(), "SC-64");
        assert_eq!(tree_by_name("zcc").unwrap().name(), "MorphCtr-128 (ZCC-only)");
        assert_eq!(tree_by_name("mcr").unwrap().name(), "MorphCtr-128 (single-base)");
        assert!(tree_by_name("bogus").is_err());
    }

    #[test]
    fn geometry_command_prints_the_paper_numbers() {
        let out = run("geometry", &strs(&["--memory-gib", "16"])).unwrap();
        assert!(out.contains("MorphCtr-128"), "{out}");
        assert!(out.contains("3 levels"), "{out}");
        assert!(out.contains("292.57 MiB") || out.contains("292.6"), "{out}");
    }

    #[test]
    fn attack_command_runs_the_paper_campaign() {
        // 14 attacks = 2 per class; the five paper configs by default.
        let out = run("attack", &strs(&["--count", "14"])).unwrap();
        for config in ["SC-64", "VAULT", "MorphCtr-128 (ZCC-only)",
                       "MorphCtr-128 (single-base)", "MorphCtr-128"] {
            assert!(out.contains(&format!("attack campaign · {config}")), "{out}");
        }
        assert!(out.contains("stale-replay"), "{out}");
        assert!(
            out.contains("campaign verdict: 14 attack(s) x 5 config(s), all detected"),
            "{out}"
        );
    }

    #[test]
    fn attack_command_is_deterministic_and_takes_a_config() {
        let args = strs(&["--seed", "9", "--count", "21", "--config", "morphtree"]);
        let first = run("attack", &args).unwrap();
        let second = run("attack", &args).unwrap();
        assert_eq!(first, second);
        assert!(first.contains("seed 9 · 21 attacks"), "{first}");
        assert!(!first.contains("SC-64"), "single-config run: {first}");
    }

    #[test]
    fn attack_command_rejects_bad_flags() {
        assert!(run("attack", &strs(&["--count", "0"])).is_err());
        assert!(run("attack", &strs(&["--config", "bogus"])).is_err());
    }

    #[test]
    fn list_command_covers_catalog() {
        let out = cmd_list();
        assert!(out.contains("mcf"));
        assert!(out.contains("cc-web"));
        assert!(out.contains("mix6"));
    }

    #[test]
    fn sweep_rejects_unknown_figures() {
        let e = run("sweep", &strs(&["--figure", "fig99"])).unwrap_err();
        assert!(e.0.contains("unknown figure `fig99`"), "{}", e.0);
    }

    #[test]
    fn sweep_runs_analytic_figures() {
        // ext_scaling is analytic (no simulations), so this exercises the
        // full plan/prefetch/render path in milliseconds.
        let out = run("sweep", &strs(&["--figure", "ext_scaling"])).unwrap();
        assert!(out.contains("sweep complete: 1/1 figure(s)"), "{out}");
    }

    #[test]
    fn unknown_command_shows_usage() {
        let e = run("frobnicate", &[]).unwrap_err();
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn simulate_requires_a_workload() {
        let e = run("simulate", &[]).unwrap_err();
        assert!(e.0.contains("--workload"));
    }

    #[test]
    fn snapshot_writes_and_verifies() {
        let path = std::env::temp_dir().join("morphtree-cli-snap.mtsn");
        let path_str = path.to_str().unwrap().to_owned();
        let out = run(
            "snapshot",
            &strs(&["--out", &path_str, "--config", "sc64", "--memory-kib", "256",
                    "--lines", "16"]),
        )
        .unwrap();
        assert!(out.contains("16 populated line(s)"), "{out}");
        let out = run("snapshot", &strs(&["--verify", &path_str])).unwrap();
        assert!(out.contains("snapshot verified"), "{out}");
        assert!(out.contains("SC-64"), "{out}");

        // A flipped byte in the image must fail verification with a typed
        // message, not verify or panic.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let e = run("snapshot", &strs(&["--verify", &path_str])).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(e.0.contains("failed verification"), "{}", e.0);
    }

    #[test]
    fn snapshot_writes_and_verifies_sharded_images() {
        let path = std::env::temp_dir().join("morphtree-cli-snap.mtsh");
        let path_str = path.to_str().unwrap().to_owned();
        let out = run(
            "snapshot",
            &strs(&["--out", &path_str, "--config", "sc64", "--memory-kib", "256",
                    "--shards", "4", "--lines", "32"]),
        )
        .unwrap();
        assert!(out.contains("sharded snapshot"), "{out}");
        assert!(out.contains("4 shard(s)"), "{out}");
        let out = run("snapshot", &strs(&["--verify", &path_str])).unwrap();
        assert!(out.contains("sharded image, 4 shard(s)"), "{out}");
        assert!(out.contains("shard 3"), "{out}");
        assert!(out.contains("sharded snapshot verified"), "{out}");

        // Corrupt the last shard's payload and patch its section checksum:
        // framing stays valid, so verification must fail *per shard* and
        // name the culprit rather than refusing the whole container.
        let mut bytes = std::fs::read(&path).unwrap();
        let mut offset = 8; // MAGIC + VERSION
        let mut last_payload = 0..0;
        while offset + 12 <= bytes.len() {
            let len =
                u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().unwrap()) as usize;
            last_payload = offset + 12..offset + 12 + len;
            offset = offset + 12 + len + 8;
        }
        bytes[last_payload.end - 9] ^= 0x40;
        let crc = {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in &bytes[last_payload.clone()] {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        };
        let crc_at = last_payload.end;
        bytes[crc_at..crc_at + 8].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let e = run("snapshot", &strs(&["--verify", &path_str])).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(e.0.contains("shard 3 failed verification"), "{}", e.0);
        assert!(e.0.contains("shard 0") && e.0.contains("verified"), "healthy rows: {}", e.0);
    }

    #[test]
    fn recover_command_reports_single_memory_stats() {
        let path = std::env::temp_dir().join("morphtree-cli-recover.mtsn");
        let path_str = path.to_str().unwrap().to_owned();
        run(
            "snapshot",
            &strs(&["--out", &path_str, "--config", "sc64", "--memory-kib", "256",
                    "--lines", "8"]),
        )
        .unwrap();
        // No WAL and no seal: the full path, reported as such.
        let out = run("recover", &strs(&["--snapshot", &path_str])).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("recovered SC-64"), "{out}");
        assert!(out.contains("mode full"), "{out}");
    }

    #[test]
    fn recover_command_recovers_serve_state() {
        let dir = std::env::temp_dir().join("morphtree-cli-recover-state");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("st").to_str().unwrap().to_owned();
        run(
            "serve",
            &strs(&["--threads", "2", "--ops", "1200", "--memory-mib", "4", "--batch", "400",
                    "--epoch-ops", "500", "--state-out", &prefix]),
        )
        .unwrap();
        let out = run("recover", &strs(&["--state", &prefix])).unwrap();
        assert!(out.contains("recovered 2 shard(s)"), "{out}");
        assert!(out.contains("resolved epoch"), "{out}");
        assert!(out.contains("all shards healthy"), "{out}");

        // Corrupt shard 1's WAL (a complete record, not a torn tail): the
        // shard must be quarantined and the exit must be non-zero.
        let wal_path = format!("{prefix}.shard1.wal");
        let mut wal = std::fs::read(&wal_path).unwrap();
        wal[6] ^= 0xff;
        std::fs::write(&wal_path, &wal).unwrap();
        let e = run("recover", &strs(&["--state", &prefix])).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(e.0.contains("shard 1   QUARANTINED"), "{}", e.0);
        assert!(e.0.contains("shard(s) 1 quarantined"), "{}", e.0);
    }

    #[test]
    fn recover_command_rejects_flag_misuse() {
        let e = run("recover", &[]).unwrap_err();
        assert!(e.0.contains("--snapshot"), "{}", e.0);
        let e = run("recover", &strs(&["--snapshot", "a", "--state", "b"])).unwrap_err();
        assert!(e.0.contains("mutually exclusive"), "{}", e.0);
        let e = run("recover", &strs(&["--state", "/nonexistent/prefix"])).unwrap_err();
        assert!(e.0.contains("cannot read"), "{}", e.0);
    }

    #[test]
    fn crash_campaign_command_passes_and_writes_report() {
        let path = std::env::temp_dir().join("morphtree-cli-crash-report.txt");
        let path_str = path.to_str().unwrap().to_owned();
        let out = run(
            "crash-campaign",
            &strs(&["--kills", "6", "--shards", "2", "--threads", "2", "--batches", "4",
                    "--epoch-ops", "48", "--hot-lines", "96", "--report", &path_str]),
        )
        .unwrap();
        assert!(out.contains("crash campaign result: PASS"), "{out}");
        assert!(out.contains("recovery latency"), "{out}");
        let report = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(report.contains("crash campaign result: PASS"), "{report}");
    }

    #[test]
    fn crash_campaign_rejects_bad_flags() {
        assert!(run("crash-campaign", &strs(&["--batches", "0"])).is_err());
        assert!(run("crash-campaign", &strs(&["--config", "bogus"])).is_err());
    }

    #[test]
    fn snapshot_rejects_flag_misuse() {
        let e = run("snapshot", &[]).unwrap_err();
        assert!(e.0.contains("--out"), "{}", e.0);
        let e = run("snapshot", &strs(&["--out", "a", "--verify", "b"])).unwrap_err();
        assert!(e.0.contains("mutually exclusive"), "{}", e.0);
        let e = run("snapshot", &strs(&["--verify", "/nonexistent/x.mtsn"])).unwrap_err();
        assert!(e.0.contains("cannot read"), "{}", e.0);
    }

    #[test]
    fn simulate_resume_renders_identically_without_simulating() {
        let path = std::env::temp_dir().join("morphtree-cli-simresume.mtsr");
        let path_str = path.to_str().unwrap().to_owned();
        let base = [
            "--workload", "libquantum", "--config", "sc64", "--scale", "1024",
            "--warmup", "20000", "--instructions", "20000",
        ];
        let mut with_snapshot = strs(&base);
        with_snapshot.extend(strs(&["--snapshot", &path_str]));
        let fresh = run("simulate", &with_snapshot).unwrap();
        assert!(fresh.contains("snapshot written to"), "{fresh}");

        let mut with_resume = strs(&base);
        with_resume.extend(strs(&["--resume", &path_str]));
        let resumed = run("simulate", &with_resume).unwrap();
        assert!(resumed.contains("resumed 2 result(s) from"), "{resumed}");
        // Identical body: everything up to the status lines matches byte
        // for byte, so a resume is a faithful re-render, not a re-run.
        let body = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("snapshot written") && !l.contains("resumed "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&fresh), body(&resumed));

        // Different flags must be refused, not blended.
        let mut mismatched = strs(&[
            "--workload", "libquantum", "--config", "sc64", "--scale", "1024",
            "--warmup", "20000", "--instructions", "20000", "--seed", "7",
        ]);
        mismatched.extend(strs(&["--resume", &path_str]));
        let e = run("simulate", &mismatched).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(e.0.contains("does not match"), "{}", e.0);
    }

    #[test]
    fn sweep_snapshot_and_resume_flags_round_trip() {
        let path = std::env::temp_dir().join("morphtree-cli-sweepck.mtlc");
        let path_str = path.to_str().unwrap().to_owned();
        // ext_scaling is analytic (zero runs), so this exercises the
        // checkpoint plumbing end-to-end in milliseconds.
        let out = run(
            "sweep",
            &strs(&["--figure", "ext_scaling", "--reports", "0", "--snapshot", &path_str]),
        )
        .unwrap();
        assert!(out.contains("checkpoint written to"), "{out}");
        let out = run(
            "sweep",
            &strs(&["--figure", "ext_scaling", "--reports", "0", "--resume", &path_str]),
        )
        .unwrap();
        assert!(out.contains("resumed 0 cached run(s) from"), "{out}");
        // A checkpoint from one operating point must not seed another.
        let e = run(
            "sweep",
            &strs(&["--figure", "ext_scaling", "--reports", "0", "--seed", "9",
                    "--resume", &path_str]),
        )
        .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(e.0.contains("does not match"), "{}", e.0);
    }

    #[test]
    fn capture_and_replay_roundtrip() {
        let path = std::env::temp_dir().join("morphtree-cli-test.mtrc");
        let path_str = path.to_str().unwrap().to_owned();
        let out = run(
            "capture",
            &strs(&["--workload", "milc", "--out", &path_str, "--records", "20000",
                    "--cores", "2"]),
        )
        .unwrap();
        assert!(out.contains("captured"));
        let out = run(
            "replay",
            &strs(&["--trace", &path_str, "--config", "sc64", "--warmup", "50000",
                    "--instructions", "50000"]),
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("replayed `milc`"), "{out}");
        assert!(out.contains("SC-64"), "{out}");
    }

    #[test]
    fn error_kinds_map_to_distinct_exit_codes() {
        assert_eq!(err("nope").exit_code(), 1);
        assert_eq!(err("nope").kind(), ErrorKind::Usage);
        assert_eq!(integrity_err("tampered").exit_code(), 2);
        assert_eq!(integrity_err("tampered").kind(), ErrorKind::Integrity);
        // Usage mistakes on real commands are the usage kind.
        assert_eq!(run("recover", &[]).unwrap_err().kind(), ErrorKind::Usage);
        assert_eq!(run("prove", &[]).unwrap_err().kind(), ErrorKind::Usage);
        assert_eq!(run("verify-proof", &[]).unwrap_err().kind(), ErrorKind::Usage);
    }

    #[test]
    fn tampered_snapshot_is_an_integrity_verdict_not_usage() {
        let path = std::env::temp_dir().join("morphtree-cli-kind.mtsn");
        let path_str = path.to_str().unwrap().to_owned();
        run("snapshot", &strs(&["--out", &path_str, "--memory-kib", "256"])).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let e = run("snapshot", &strs(&["--verify", &path_str])).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(e.kind(), ErrorKind::Integrity, "{}", e.0);
        // An unreadable file stays a usage/IO error, clearly separated.
        let e = run("snapshot", &strs(&["--verify", "/nonexistent/x.mtsn"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage, "{}", e.0);
    }

    #[test]
    fn prove_then_verify_proof_needs_no_memory_image() {
        let dir = std::env::temp_dir().join("morphtree-cli-proof");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("image.mtsn").to_str().unwrap().to_owned();
        let proof = dir.join("lines.mtpr").to_str().unwrap().to_owned();
        let root = dir.join("root.mtrt").to_str().unwrap().to_owned();
        run(
            "snapshot",
            &strs(&["--out", &snap, "--config", "sc64", "--memory-kib", "256",
                    "--lines", "32"]),
        )
        .unwrap();
        let out = run(
            "prove",
            &strs(&["--snapshot", &snap, "--lines", "0,5,9,31", "--out", &proof,
                    "--root-out", &root]),
        )
        .unwrap();
        assert!(out.contains("proof over 4 data line(s)"), "{out}");
        assert!(out.contains(&format!("published to {root}")), "{out}");

        // The verifier needs only the proof and the published root — the
        // snapshot can be gone.
        std::fs::remove_file(&snap).unwrap();
        let out = run(
            "verify-proof",
            &strs(&["--proof", &proof, "--root-file", &root]),
        )
        .unwrap();
        assert!(out.contains("proof verified"), "{out}");
        assert!(out.contains("no memory image consulted"), "{out}");

        // The same root as a hex literal also verifies.
        let hex_at = out.find("root 0x").unwrap() + "root ".len();
        let hex = &out[hex_at..hex_at + 18];
        let out2 =
            run("verify-proof", &strs(&["--proof", &proof, "--root", hex])).unwrap();
        assert!(out2.contains("proof verified"), "{out2}");

        // A flipped byte anywhere in the proof is an integrity verdict.
        let mut bytes = std::fs::read(&proof).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&proof, &bytes).unwrap();
        let e = run("verify-proof", &strs(&["--proof", &proof, "--root-file", &root]))
            .unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Integrity, "{}", e.0);
        bytes[mid] ^= 1;
        std::fs::write(&proof, &bytes).unwrap();

        // So is a flipped byte in the published root artifact.
        let mut root_bytes = std::fs::read(&root).unwrap();
        root_bytes[10] ^= 1;
        std::fs::write(&root, &root_bytes).unwrap();
        let e = run("verify-proof", &strs(&["--proof", &proof, "--root-file", &root]))
            .unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Integrity, "{}", e.0);

        // And a wrong-but-well-formed root is a root mismatch.
        let e = run(
            "verify-proof",
            &strs(&["--proof", &proof, "--root", "0xdeadbeefdeadbeef"]),
        )
        .unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Integrity, "{}", e.0);
        assert!(e.0.contains("root"), "{}", e.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prove_composes_sharded_snapshots() {
        let dir = std::env::temp_dir().join("morphtree-cli-proof-sharded");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("image.mtsh").to_str().unwrap().to_owned();
        let proof = dir.join("lines.mtpr").to_str().unwrap().to_owned();
        run(
            "snapshot",
            &strs(&["--out", &snap, "--config", "morph", "--memory-kib", "256",
                    "--shards", "4", "--lines", "64"]),
        )
        .unwrap();
        let root = dir.join("root.mtrt").to_str().unwrap().to_owned();
        let out = run(
            "prove",
            &strs(&["--snapshot", &snap, "--lines", "0,17,63", "--out", &proof,
                    "--root-out", &root]),
        )
        .unwrap();
        assert!(out.contains("shard sub-proof(s)"), "{out}");
        let out = run(
            "verify-proof",
            &strs(&["--proof", &proof, "--root-file", &root]),
        )
        .unwrap();
        assert!(out.contains("proof verified"), "{out}");
        assert!(out.contains("shard sub-proof(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prove_rejects_bad_requests_as_usage_errors() {
        let dir = std::env::temp_dir().join("morphtree-cli-proof-usage");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("image.mtsn").to_str().unwrap().to_owned();
        let proof = dir.join("lines.mtpr").to_str().unwrap().to_owned();
        run("snapshot", &strs(&["--out", &snap, "--memory-kib", "256", "--lines", "8"]))
            .unwrap();
        // Unparsable line list.
        let e = run(
            "prove",
            &strs(&["--snapshot", &snap, "--lines", "0,banana", "--out", &proof]),
        )
        .unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage, "{}", e.0);
        // A never-written line is a bad request against a healthy image.
        let e = run(
            "prove",
            &strs(&["--snapshot", &snap, "--lines", "2000", "--out", &proof]),
        )
        .unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage, "{}", e.0);
        assert!(e.0.contains("cannot prove"), "{}", e.0);
        // Bad root hex on the verify side is usage too.
        let e = run(
            "verify-proof",
            &strs(&["--proof", &proof, "--root", "zzzz"]),
        )
        .unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage, "{}", e.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
