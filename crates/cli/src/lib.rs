//! Library backing the `morphtree` command-line tool.
//!
//! Commands (see `morphtree help`):
//!
//! - `geometry` — integrity-tree sizes/heights for any memory size;
//! - `simulate` — run the full-system simulator on a Table II workload;
//! - `capture` / `replay` — record a workload to an `MTRC` trace file and
//!   drive the simulator from it;
//! - `sweep` — regenerate paper figures with the parallel sweep engine;
//! - `perf` — pinned performance suite over the hot paths (counter
//!   increments, one-time pads, engine reads/writes, one figure sweep),
//!   written to `BENCH.json` with speedups versus in-process baselines;
//! - `attack` — seeded fault-injection campaign against the functional
//!   model: randomized tamper/replay/splice attacks on every tree config,
//!   asserting 100% detection at the right tree location;
//! - `stats` — render a `--metrics` JSON file as a human-readable
//!   summary;
//! - `list` — available workloads and tree configurations.
//!
//! `simulate`, `sweep`, `attack` and `perf` accept `--metrics PATH` to
//! dump an observability report (see [`metrics`]): histogram-backed DRAM
//! latencies, per-level metadata-cache activity, crypto-op counts, and
//! energy gauges, in one deterministic JSON schema.
//!
//! Argument parsing is hand-rolled (`--key value` flags) to keep the
//! dependency set minimal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod perf;

use std::collections::HashMap;
use std::fmt::Write as _;

use morphtree_core::attack::{campaign_configs, run_campaign, CampaignConfig};
use morphtree_core::tree::{TreeConfig, TreeGeometry};
use morphtree_sim::system::{simulate, simulate_nonsecure, SimConfig};
use morphtree_trace::catalog::{Benchmark, MIXES};
use morphtree_trace::io::RecordedTrace;
use morphtree_trace::workload::SystemWorkload;

/// Errors surfaced to the command line.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Rejects stray positionals and flags without values.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(err(format!("unexpected argument `{arg}` (flags are --key value)")));
            };
            let Some(value) = iter.next() else {
                return Err(err(format!("flag --{key} needs a value")));
            };
            values.insert(key.to_owned(), value.clone());
        }
        Ok(Flags { values })
    }

    /// String flag with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map_or(default, String::as_str)
    }

    /// Optional string flag.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Errors if missing.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing required flag --{key}")))
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Errors if present but unparsable.
    pub fn number_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .replace('_', "")
                .parse()
                .map_err(|_| err(format!("--{key} expects a number, got `{raw}`"))),
        }
    }
}

/// Resolves a tree configuration by CLI name.
///
/// # Errors
///
/// Errors on unknown names.
pub fn tree_by_name(name: &str) -> Result<TreeConfig, CliError> {
    match name {
        "sgx" => Ok(TreeConfig::sgx()),
        "vault" => Ok(TreeConfig::vault()),
        "sc64" => Ok(TreeConfig::sc64()),
        "sc128" => Ok(TreeConfig::sc128()),
        "morph" | "morphtree" => Ok(TreeConfig::morphtree()),
        "zcc" | "morph-zcc" => Ok(TreeConfig::morphtree_zcc_only()),
        "mcr" | "morph-single-base" => Ok(TreeConfig::morphtree_single_base()),
        other => Err(err(format!(
            "unknown config `{other}` (try: sgx, vault, sc64, sc128, morph, zcc, mcr)"
        ))),
    }
}

/// Top-level usage text.
#[must_use]
pub fn usage() -> String {
    "morphtree — Morphable Counters secure-memory reproduction (MICRO 2018)\n\
     \n\
     USAGE: morphtree <command> [--flag value]...\n\
     \n\
     COMMANDS:\n\
     \x20 geometry  [--memory-gib 16] [--config all|sc64|morph|...]\n\
     \x20 simulate  --workload NAME [--config morph] [--scale 16]\n\
     \x20           [--instructions 2000000] [--warmup 4000000] [--seed 42]\n\
     \x20           [--metrics FILE]\n\
     \x20 capture   --workload NAME --out FILE [--records 100000] [--cores 4]\n\
     \x20 replay    --trace FILE [--config morph] [--scale 16]\n\
     \x20 sweep     [--figure all|NAME[,NAME...]] [--threads 0=auto] [--scale 16]\n\
     \x20           [--seed 42] [--warmup 4000000] [--instructions 2000000]\n\
     \x20           [--metrics FILE] [--reports 1]\n\
     \x20 perf      [--out BENCH.json] [--quick 1] [--metrics FILE]\n\
     \x20 attack    [--seed 42] [--count 100] [--config paper|sc64|vault|zcc|mcr|morphtree]\n\
     \x20           [--memory-kib 1024] [--lines 96] [--metrics FILE]\n\
     \x20 stats     FILE (a --metrics JSON dump)\n\
     \x20 list\n\
     \x20 help\n"
        .to_owned()
}

/// Runs a command; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad input.
pub fn run(command: &str, args: &[String]) -> Result<String, CliError> {
    // `stats` takes a positional file path, which the flag parser would
    // reject; handle it before parsing.
    if command == "stats" {
        let [path] = args else {
            return Err(err("usage: morphtree stats <metrics.json>"));
        };
        return metrics::cmd_stats(path);
    }
    let flags = Flags::parse(args)?;
    match command {
        "geometry" => cmd_geometry(&flags),
        "simulate" => cmd_simulate(&flags),
        "capture" => cmd_capture(&flags),
        "replay" => cmd_replay(&flags),
        "sweep" => cmd_sweep(&flags),
        "perf" => perf::cmd_perf(&flags),
        "attack" => cmd_attack(&flags),
        "list" => Ok(cmd_list()),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command `{other}`\n\n{}", usage()))),
    }
}

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

fn cmd_geometry(flags: &Flags) -> Result<String, CliError> {
    let gib = flags.number_or("memory-gib", 16)?;
    if gib == 0 {
        return Err(err("--memory-gib must be positive"));
    }
    let memory = gib << 30;
    let configs: Vec<TreeConfig> = match flags.get_or("config", "all") {
        "all" => vec![
            TreeConfig::sgx(),
            TreeConfig::vault(),
            TreeConfig::sc64(),
            TreeConfig::sc128(),
            TreeConfig::morphtree(),
        ],
        name => vec![tree_by_name(name)?],
    };
    let mut out = format!("integrity-tree geometry for {gib} GiB\n\n");
    for config in configs {
        let g = TreeGeometry::new(&config, memory);
        writeln!(
            out,
            "{:<26} {} levels | counters {:>10} ({:.3}%) | tree {:>10} ({:.4}%)",
            config.name(),
            g.height(),
            human(g.enc_bytes()),
            g.enc_overhead() * 100.0,
            human(g.tree_bytes()),
            g.tree_overhead() * 100.0,
        )
        .expect("write to string");
    }
    Ok(out)
}

fn sim_config(flags: &Flags) -> Result<(SimConfig, u64, u64), CliError> {
    let scale = flags.number_or("scale", 16)?.max(1);
    let seed = flags.number_or("seed", 42)?;
    let cfg = SimConfig {
        memory_bytes: (16 << 30) / scale,
        metadata_cache_bytes: ((128 * 1024) / scale).max(4096) as usize,
        warmup_instructions: flags.number_or("warmup", 4_000_000)?,
        measure_instructions: flags.number_or("instructions", 2_000_000)?,
        ..SimConfig::default()
    };
    Ok((cfg, scale, seed))
}

fn workload_by_name(
    name: &str,
    cores: usize,
    memory: u64,
    seed: u64,
    scale: u64,
) -> Result<SystemWorkload, CliError> {
    if let Some(mix) = MIXES.iter().find(|m| m.name == name) {
        return Ok(SystemWorkload::mix(mix, memory, seed));
    }
    let bench = Benchmark::by_name(name)
        .ok_or_else(|| err(format!("unknown workload `{name}` (see `morphtree list`)")))?;
    Ok(SystemWorkload::rate_scaled(bench, cores, memory, seed, scale))
}

fn format_result(result: &morphtree_sim::system::SimResult, baseline_ipc: f64) -> String {
    // A zero-cycle run has no EDP; render `n/a` rather than NaN.
    let edp = result
        .energy
        .edp()
        .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.3e}"));
    format!
    (
        "{:<26} IPC {:>6.3} | vs non-secure {:>6.3} | traffic {:>6.3}/access | ovfl {:>7.1}/M | EDP {edp} J*s\n",
        result.config,
        result.ipc(),
        result.ipc() / baseline_ipc,
        result.traffic_per_data_access(),
        result.engine.overflows_per_million_accesses(),
    )
}

fn cmd_simulate(flags: &Flags) -> Result<String, CliError> {
    let name = flags.required("workload")?;
    let (cfg, scale, seed) = sim_config(flags)?;
    let mut out = format!(
        "simulating `{name}` at scale {scale} ({} memory, {} metadata cache)\n\n",
        human(cfg.memory_bytes),
        human(cfg.metadata_cache_bytes as u64),
    );
    let base = {
        let mut w = workload_by_name(name, cfg.cores, cfg.memory_bytes, seed, scale)?;
        simulate_nonsecure(&mut w, &cfg)
    };
    out.push_str(&format_result(&base, base.ipc()));
    let mut registry = morphtree_core::obs::MetricsRegistry::new();
    metrics::sim_metrics(&mut registry, &format!("sim.{name}.{}", base.config), &base);
    let configs: Vec<TreeConfig> = match flags.get_or("config", "compare") {
        "compare" => vec![TreeConfig::vault(), TreeConfig::sc64(), TreeConfig::morphtree()],
        other => vec![tree_by_name(other)?],
    };
    for tree in configs {
        let mut w = workload_by_name(name, cfg.cores, cfg.memory_bytes, seed, scale)?;
        let result = simulate(&mut w, tree, &cfg);
        out.push_str(&format_result(&result, base.ipc()));
        metrics::sim_metrics(
            &mut registry,
            &format!("sim.{name}.{}", result.config),
            &result,
        );
    }
    if let Some(path) = flags.get("metrics") {
        metrics::write_metrics(path, &registry)?;
        writeln!(out, "\nmetrics written to {path}").expect("write to string");
    }
    Ok(out)
}

fn cmd_capture(flags: &Flags) -> Result<String, CliError> {
    let name = flags.required("workload")?;
    let path = flags.required("out")?;
    let records = flags.number_or("records", 100_000)? as usize;
    let cores = flags.number_or("cores", 4)? as usize;
    let (cfg, scale, seed) = sim_config(flags)?;
    let mut workload = workload_by_name(name, cores, cfg.memory_bytes, seed, scale)?;
    let trace = RecordedTrace::capture(&mut workload, records)
        .map_err(|e| err(format!("cannot capture `{name}`: {e}")))?;
    trace
        .save(path)
        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    Ok(format!(
        "captured {records} records/core x {cores} cores of `{name}` to {path}\n"
    ))
}

fn cmd_replay(flags: &Flags) -> Result<String, CliError> {
    let path = flags.required("trace")?;
    let (mut cfg, _, _) = sim_config(flags)?;
    let mut trace =
        RecordedTrace::load(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    use morphtree_trace::workload::RecordSource;
    cfg.cores = trace.num_cores();
    let tree = tree_by_name(flags.get_or("config", "morph"))?;
    let result = simulate(&mut trace, tree, &cfg);
    let mut out = format!(
        "replayed `{}` ({} cores) from {path}\n\n",
        result.workload, cfg.cores
    );
    out.push_str(&format_result(&result, result.ipc()));
    Ok(out)
}

fn cmd_sweep(flags: &Flags) -> Result<String, CliError> {
    use morphtree_experiments::{driver, Lab, Setup};

    let figure = flags.get_or("figure", "all");
    let names: Vec<&str> = if figure == "all" {
        driver::figure_names()
    } else {
        figure.split(',').collect()
    };
    let setup = Setup {
        scale: flags.number_or("scale", 16)?.max(1),
        warmup_instructions: flags.number_or("warmup", 4_000_000)?,
        measure_instructions: flags.number_or("instructions", 2_000_000)?,
        seed: flags.number_or("seed", 42)?,
    };
    let threads = flags.number_or("threads", 0)? as usize;
    let mut lab = Lab::new(setup);
    lab.set_threads(threads);
    // `--reports 0` renders in-memory only (no `results/` writes) — used
    // by tests and by metrics-only invocations at off-default operating
    // points, which should not overwrite the committed reports.
    lab.emit_reports = flags.get_or("reports", "1") != "0";
    let outcome = driver::run_figures(&mut lab, &names).map_err(err)?;
    let mut out = String::new();
    if let Some(summary) = outcome.failure_summary() {
        out.push_str(&summary);
        out.push('\n');
    }
    if let Some(path) = flags.get("metrics") {
        // The registry holds only simulation-derived data (no wall-clock
        // spans), so this file is byte-identical for any --threads value.
        let mut registry = morphtree_core::obs::MetricsRegistry::new();
        for (key, result) in lab.sim_results() {
            let prefix = format!(
                "sim.{}.{}.c{}.{:?}.{:?}.{:?}",
                key.workload,
                key.config,
                key.cache_bytes,
                key.mac,
                key.verification,
                key.replacement,
            );
            metrics::sim_metrics(&mut registry, &prefix, result);
        }
        for (key, stats) in lab.engine_results() {
            let prefix =
                format!("engine.{}.{}.i{}", key.workload, key.config, key.instructions);
            metrics::engine_metrics(&mut registry, &prefix, stats);
        }
        registry.counter_set("sweep.runs.sim", lab.sim_results().len() as u64);
        registry.counter_set("sweep.runs.engine", lab.engine_results().len() as u64);
        metrics::write_metrics(path, &registry)?;
        writeln!(out, "metrics written to {path}").expect("write to string");
    }
    let rendered = names.len() - outcome.failed_figures.len();
    writeln!(
        out,
        "sweep complete: {rendered}/{} figure(s) regenerated under results/ \
         ({} simulations, {} engine studies memoized)",
        names.len(),
        lab.sim_results().len(),
        lab.engine_results().len(),
    )
    .expect("write to string");
    Ok(out)
}

fn cmd_attack(flags: &Flags) -> Result<String, CliError> {
    let campaign = CampaignConfig {
        seed: flags.number_or("seed", 42)?,
        count: flags.number_or("count", 100)? as usize,
        memory_bytes: flags.number_or("memory-kib", 1024)? << 10,
        working_lines: flags.number_or("lines", 96)?,
    };
    if campaign.count == 0 {
        return Err(err("--count must be positive"));
    }
    let targets: Vec<(String, TreeConfig)> = match flags.get_or("config", "paper") {
        "paper" | "all" => campaign_configs()
            .into_iter()
            .map(|(name, tree)| (name.to_owned(), tree))
            .collect(),
        name => vec![(name.to_owned(), tree_by_name(name)?)],
    };
    let mut out = String::new();
    let mut missed = Vec::new();
    let mut registry = morphtree_core::obs::MetricsRegistry::new();
    for (name, tree) in &targets {
        let report = run_campaign(tree, &campaign)
            .map_err(|e| err(format!("campaign on `{name}` failed: {e}")))?;
        registry.counter_set(
            &format!("attack.{name}.attempts"),
            report.total_attempts() as u64,
        );
        registry.counter_set(
            &format!("attack.{name}.detected"),
            report.total_detected() as u64,
        );
        registry.counter_set(
            &format!("attack.{name}.located"),
            report.total_located() as u64,
        );
        out.push_str(&report.render());
        out.push('\n');
        if !report.all_detected() {
            missed.push(format!(
                "{name}: {}/{} detected ({})",
                report.total_detected(),
                report.total_attempts(),
                report.first_miss().unwrap_or("miss unrecorded"),
            ));
        }
    }
    if let Some(path) = flags.get("metrics") {
        metrics::write_metrics(path, &registry)?;
        writeln!(out, "metrics written to {path}").expect("write to string");
    }
    if missed.is_empty() {
        writeln!(
            out,
            "campaign verdict: {} attack(s) x {} config(s), all detected at the expected tree location",
            campaign.count,
            targets.len(),
        )
        .expect("write to string");
        Ok(out)
    } else {
        Err(err(format!(
            "INTEGRITY HOLE: undetected tampering!\n{}",
            missed.join("\n")
        )))
    }
}

fn cmd_list() -> String {
    let mut out = String::from("workloads (Table II):\n");
    for bench in Benchmark::all() {
        writeln!(
            out,
            "  {:<12} {:>5.1} read-PKI {:>5.1} write-PKI {:>5.1} GB",
            bench.name, bench.read_pki, bench.write_pki, bench.footprint_gb
        )
        .expect("write to string");
    }
    out.push_str("mixes: ");
    for mix in &MIXES {
        out.push_str(mix.name);
        out.push(' ');
    }
    out.push_str(
        "\nconfigs: sgx vault sc64 sc128 morph zcc mcr\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let flags = Flags::parse(&strs(&["--a", "1", "--b", "x"])).unwrap();
        assert_eq!(flags.required("a").unwrap(), "1");
        assert_eq!(flags.get_or("b", "y"), "x");
        assert_eq!(flags.get_or("c", "y"), "y");
        assert_eq!(flags.number_or("a", 9).unwrap(), 1);
    }

    #[test]
    fn flags_reject_stray_positionals() {
        assert!(Flags::parse(&strs(&["oops"])).is_err());
        assert!(Flags::parse(&strs(&["--key"])).is_err());
    }

    #[test]
    fn numbers_accept_underscores() {
        let flags = Flags::parse(&strs(&["--n", "1_000_000"])).unwrap();
        assert_eq!(flags.number_or("n", 0).unwrap(), 1_000_000);
    }

    #[test]
    fn tree_names_resolve() {
        assert_eq!(tree_by_name("morph").unwrap().name(), "MorphCtr-128");
        assert_eq!(tree_by_name("sc64").unwrap().name(), "SC-64");
        assert_eq!(tree_by_name("zcc").unwrap().name(), "MorphCtr-128 (ZCC-only)");
        assert_eq!(tree_by_name("mcr").unwrap().name(), "MorphCtr-128 (single-base)");
        assert!(tree_by_name("bogus").is_err());
    }

    #[test]
    fn geometry_command_prints_the_paper_numbers() {
        let out = run("geometry", &strs(&["--memory-gib", "16"])).unwrap();
        assert!(out.contains("MorphCtr-128"), "{out}");
        assert!(out.contains("3 levels"), "{out}");
        assert!(out.contains("292.57 MiB") || out.contains("292.6"), "{out}");
    }

    #[test]
    fn attack_command_runs_the_paper_campaign() {
        // 14 attacks = 2 per class; the five paper configs by default.
        let out = run("attack", &strs(&["--count", "14"])).unwrap();
        for config in ["SC-64", "VAULT", "MorphCtr-128 (ZCC-only)",
                       "MorphCtr-128 (single-base)", "MorphCtr-128"] {
            assert!(out.contains(&format!("attack campaign · {config}")), "{out}");
        }
        assert!(out.contains("stale-replay"), "{out}");
        assert!(
            out.contains("campaign verdict: 14 attack(s) x 5 config(s), all detected"),
            "{out}"
        );
    }

    #[test]
    fn attack_command_is_deterministic_and_takes_a_config() {
        let args = strs(&["--seed", "9", "--count", "21", "--config", "morphtree"]);
        let first = run("attack", &args).unwrap();
        let second = run("attack", &args).unwrap();
        assert_eq!(first, second);
        assert!(first.contains("seed 9 · 21 attacks"), "{first}");
        assert!(!first.contains("SC-64"), "single-config run: {first}");
    }

    #[test]
    fn attack_command_rejects_bad_flags() {
        assert!(run("attack", &strs(&["--count", "0"])).is_err());
        assert!(run("attack", &strs(&["--config", "bogus"])).is_err());
    }

    #[test]
    fn list_command_covers_catalog() {
        let out = cmd_list();
        assert!(out.contains("mcf"));
        assert!(out.contains("cc-web"));
        assert!(out.contains("mix6"));
    }

    #[test]
    fn sweep_rejects_unknown_figures() {
        let e = run("sweep", &strs(&["--figure", "fig99"])).unwrap_err();
        assert!(e.0.contains("unknown figure `fig99`"), "{}", e.0);
    }

    #[test]
    fn sweep_runs_analytic_figures() {
        // ext_scaling is analytic (no simulations), so this exercises the
        // full plan/prefetch/render path in milliseconds.
        let out = run("sweep", &strs(&["--figure", "ext_scaling"])).unwrap();
        assert!(out.contains("sweep complete: 1/1 figure(s)"), "{out}");
    }

    #[test]
    fn unknown_command_shows_usage() {
        let e = run("frobnicate", &[]).unwrap_err();
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn simulate_requires_a_workload() {
        let e = run("simulate", &[]).unwrap_err();
        assert!(e.0.contains("--workload"));
    }

    #[test]
    fn capture_and_replay_roundtrip() {
        let path = std::env::temp_dir().join("morphtree-cli-test.mtrc");
        let path_str = path.to_str().unwrap().to_owned();
        let out = run(
            "capture",
            &strs(&["--workload", "milc", "--out", &path_str, "--records", "20000",
                    "--cores", "2"]),
        )
        .unwrap();
        assert!(out.contains("captured"));
        let out = run(
            "replay",
            &strs(&["--trace", &path_str, "--config", "sc64", "--warmup", "50000",
                    "--instructions", "50000"]),
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("replayed `milc`"), "{out}");
        assert!(out.contains("SC-64"), "{out}");
    }
}
