//! The `morphtree` command-line tool (see `morphtree help`).
//!
//! Exit codes: 0 success; 1 usage or I/O error; 2 integrity verdict (a
//! tampered snapshot, failed proof, mismatched root, or quarantined
//! shard) — scripts can retry a 1 but must never retry past a 2.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print!("{}", morphtree_cli::usage());
        return ExitCode::FAILURE;
    };
    match morphtree_cli::run(command, rest) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}
