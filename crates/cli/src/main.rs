//! The `morphtree` command-line tool (see `morphtree help`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print!("{}", morphtree_cli::usage());
        return ExitCode::FAILURE;
    };
    match morphtree_cli::run(command, rest) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
