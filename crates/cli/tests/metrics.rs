//! Integration tests for the observability surface (ISSUE 4): `--metrics`
//! dumps from `simulate`/`sweep`/`attack`, the `stats` renderer, and the
//! determinism contract — a sweep's metrics file must be byte-identical
//! whether the runs execute serially or on four worker threads.

use morphtree_cli::run;
use morphtree_core::obs::{parse_json, JsonValue};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|a| (*a).to_owned()).collect()
}

/// Temp-file path for a metrics dump, as `(PathBuf, String)`.
fn tmp(name: &str) -> (std::path::PathBuf, String) {
    let path = std::env::temp_dir().join(name);
    let s = path.to_str().expect("utf-8 temp path").to_owned();
    (path, s)
}

#[test]
fn simulate_metrics_dump_covers_every_layer() {
    let (path, path_str) = tmp("morphtree-metrics-simulate.json");
    let out = run(
        "simulate",
        &args(&[
            "--workload", "libquantum", "--config", "sc64", "--scale", "256", "--warmup",
            "20000", "--instructions", "20000", "--metrics", &path_str,
        ]),
    )
    .expect("simulate runs");
    assert!(out.contains(&format!("metrics written to {path_str}")), "{out}");

    let text = std::fs::read_to_string(&path).expect("metrics file exists");
    let json = parse_json(&text).expect("metrics file is valid JSON");
    let counter = |name: &str| {
        json.get("counters")
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_u64)
    };
    let histogram_count = |name: &str| {
        json.get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(JsonValue::as_u64)
    };

    // Histogram-backed DRAM latency for both the non-secure baseline and
    // the secure config, with the full percentile summary.
    for cfg in ["Non-Secure", "SC-64"] {
        let name = format!("sim.libquantum.{cfg}.dram.read_latency");
        let h = json
            .get("histograms")
            .and_then(|h| h.get(&name))
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(h.get("count").and_then(JsonValue::as_u64).expect("count") > 0);
        for key in ["sum", "min", "max", "mean", "p50", "p90", "p99", "buckets"] {
            assert!(h.get(key).is_some(), "histogram {name} missing {key}");
        }
    }
    assert!(histogram_count("sim.libquantum.SC-64.dram.queue_delay").expect("qd") > 0);

    // Per-level metadata-cache activity and crypto-op counters exist for
    // the secure config only.
    assert!(counter("sim.libquantum.SC-64.cache.hits").expect("hits") > 0);
    assert!(counter("sim.libquantum.SC-64.cache.l0.hits").is_some(), "level-0 attribution");
    assert!(counter("sim.libquantum.SC-64.crypto.otp_ops").expect("otp") > 0);
    assert!(counter("sim.libquantum.SC-64.crypto.mac_ops").expect("mac") > 0);
    assert!(histogram_count("sim.libquantum.SC-64.engine.fetch_depth").expect("fd") > 0);

    // The non-secure baseline has no cache traffic: its hit rate is JSON
    // null (unmeasurable), never a fake 0.0 (ISSUE 4 satellite 3).
    assert_eq!(
        json.get("gauges").and_then(|g| g.get("sim.libquantum.Non-Secure.cache.hit_rate")),
        Some(&JsonValue::Null),
    );

    // `morphtree stats` renders the same file for humans.
    let rendered = run("stats", &args(&[&path_str])).expect("stats renders");
    std::fs::remove_file(&path).ok();
    assert!(rendered.contains("sim.libquantum.SC-64.dram.read_latency"), "{rendered}");
    assert!(rendered.contains("p99"), "{rendered}");
    assert!(rendered.contains("n/a"), "{rendered}");
}

#[test]
fn sweep_metrics_are_byte_identical_across_thread_counts() {
    let (path_serial, serial_str) = tmp("morphtree-metrics-sweep-t1.json");
    let (path_parallel, parallel_str) = tmp("morphtree-metrics-sweep-t4.json");
    for (threads, file) in [("1", &serial_str), ("4", &parallel_str)] {
        let out = run(
            "sweep",
            &args(&[
                "--figure", "ext_sgx", "--scale", "256", "--warmup", "20000",
                "--instructions", "20000", "--threads", threads, "--metrics", file,
                "--reports", "0",
            ]),
        )
        .expect("sweep runs");
        assert!(out.contains("metrics written to"), "{out}");
    }
    let serial = std::fs::read(&path_serial).expect("serial metrics");
    let parallel = std::fs::read(&path_parallel).expect("parallel metrics");
    std::fs::remove_file(&path_serial).ok();
    std::fs::remove_file(&path_parallel).ok();
    assert!(
        serial == parallel,
        "sweep metrics must not depend on the thread count (wall-clock data \
         belongs in the span timeline, not the registry)"
    );
    // And the shared content is a non-trivial metrics file.
    let json = parse_json(&String::from_utf8(serial).expect("utf-8")).expect("valid JSON");
    assert_eq!(
        json.get("counters")
            .and_then(|c| c.get("sweep.runs.sim"))
            .and_then(JsonValue::as_u64),
        Some(14),
        "ext_sgx plans 7 workloads x 2 configs"
    );
}

#[test]
fn attack_metrics_count_detections() {
    let (path, path_str) = tmp("morphtree-metrics-attack.json");
    let out = run(
        "attack",
        &args(&["--count", "6", "--config", "morphtree", "--metrics", &path_str]),
    )
    .expect("attack campaign runs");
    assert!(out.contains("metrics written to"), "{out}");
    let text = std::fs::read_to_string(&path).expect("metrics file");
    std::fs::remove_file(&path).ok();
    let json = parse_json(&text).expect("valid JSON");
    let counter = |name: &str| {
        json.get("counters")
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_u64)
    };
    let attempts = counter("attack.morphtree.attempts").expect("attempts");
    assert_eq!(counter("attack.morphtree.detected"), Some(attempts));
    assert!(attempts >= 6);
}

#[test]
fn stats_command_rejects_bad_input() {
    let e = run("stats", &[]).expect_err("needs a path");
    assert!(e.0.contains("usage: morphtree stats"), "{}", e.0);

    let e = run("stats", &args(&["/nonexistent/metrics.json"])).expect_err("missing file");
    assert!(e.0.contains("cannot read"), "{}", e.0);

    let (path, path_str) = tmp("morphtree-metrics-garbage.json");
    std::fs::write(&path, "not json {").expect("write garbage");
    let e = run("stats", &args(&[&path_str])).expect_err("invalid JSON");
    std::fs::remove_file(&path).ok();
    assert!(e.0.contains("invalid metrics JSON"), "{}", e.0);
}
