//! Golden equivalence suite (CLI layer): the optimized engine — paged
//! flat stores, flat-array metadata cache, fused cache ops, T-table AES —
//! must produce byte-identical end-to-end outputs to the seed `HashMap`
//! implementation.
//!
//! `simulate_*` fixtures and `fig07_seed.txt` were captured from the seed
//! implementation before the optimization landed; `fig07_quick.txt` pins
//! the (already-verified-equivalent) engine at a fast operating point so
//! debug test runs still cover the figure pipeline.

use morphtree_cli::run;
use morphtree_experiments::{checkpoint, driver, Lab, Setup};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|a| (*a).to_owned()).collect()
}

#[test]
fn simulate_mix1_matches_seed_capture() {
    let out = run(
        "simulate",
        &args(&[
            "--workload", "mix1", "--scale", "64", "--warmup", "100000", "--instructions",
            "100000", "--seed", "7",
        ]),
    )
    .expect("simulate runs");
    assert_eq!(out, include_str!("fixtures/simulate_mix1_seed7.txt"));
}

#[test]
fn simulate_mcf_sc64_matches_seed_capture() {
    let out = run(
        "simulate",
        &args(&[
            "--workload", "mcf", "--config", "sc64", "--scale", "64", "--warmup", "80000",
            "--instructions", "80000", "--seed", "11",
        ]),
    )
    .expect("simulate runs");
    assert_eq!(out, include_str!("fixtures/simulate_mcf_sc64_seed11.txt"));
}

/// Renders `fig07` in-memory (no `results/` side effects) and returns the
/// figure text as [`driver::run_figures`] embeds it in the report.
fn render_fig07(setup: Setup) -> String {
    let mut lab = Lab::new(setup);
    lab.emit_reports = false;
    let outcome = driver::run_figures(&mut lab, &["fig07"]).expect("fig07 is a known figure");
    assert!(outcome.is_clean(), "sweep reported failures");
    outcome.report
}

#[test]
fn fig07_quick_point_matches_fixture() {
    let report = render_fig07(Setup {
        scale: 64,
        warmup_instructions: 200_000,
        measure_instructions: 100_000,
        seed: 42,
    });
    let expected = format!("\n==== fig07 ====\n\n{}\n", include_str!("fixtures/fig07_quick.txt"));
    assert_eq!(report, expected);
}

/// Interrupt-and-resume must be invisible in the output: a sweep resumed
/// from a checkpoint serves every run from the checkpoint (zero new
/// simulations) and renders the figure byte-identical to the golden
/// fixture from an uninterrupted run.
#[test]
fn fig07_resumed_sweep_matches_the_golden_fixture() {
    let setup = Setup {
        scale: 64,
        warmup_instructions: 200_000,
        measure_instructions: 100_000,
        seed: 42,
    };

    // The "interrupted" sweep: run to completion, checkpoint the memo.
    let mut lab = Lab::new(setup.clone());
    lab.emit_reports = false;
    driver::run_figures(&mut lab, &["fig07"]).expect("fig07 is a known figure");
    let path = std::env::temp_dir().join("morphtree-golden-fig07.mtlc");
    checkpoint::save_checkpoint(&lab, &path).expect("checkpoint writes");
    let runs_before = lab.sim_results().len() + lab.engine_results().len();
    assert!(runs_before > 0, "fig07 must memoize runs");

    // The resumed sweep: a fresh lab seeded only from the checkpoint.
    let mut resumed = Lab::new(setup);
    resumed.emit_reports = false;
    let (sims, engines) =
        checkpoint::load_checkpoint(&mut resumed, &path).expect("checkpoint loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(sims + engines, runs_before, "every memoized run round-trips");
    let outcome = driver::run_figures(&mut resumed, &["fig07"]).expect("resumed sweep renders");
    assert!(outcome.is_clean(), "resumed sweep reported failures");
    assert_eq!(
        resumed.sim_results().len() + resumed.engine_results().len(),
        runs_before,
        "a resumed sweep must not simulate anything new"
    );
    let expected = format!("\n==== fig07 ====\n\n{}\n", include_str!("fixtures/fig07_quick.txt"));
    assert_eq!(outcome.report, expected, "resumed render must be byte-identical");
}

/// The full default operating point — the exact output captured from the
/// seed implementation. Takes ~1 min unoptimized, so it is ignored by
/// default; CI runs it in release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow in debug builds; run with --ignored (release)"]
fn fig07_default_point_matches_seed_capture() {
    let report = render_fig07(Setup {
        scale: 16,
        warmup_instructions: 4_000_000,
        measure_instructions: 2_000_000,
        seed: 42,
    });
    let expected = format!("\n==== fig07 ====\n\n{}\n", include_str!("fixtures/fig07_seed.txt"));
    assert_eq!(report, expected);
}
