//! Offline in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the benchmark-harness API subset its `benches/` actually use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::throughput`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: a short warm-up, then a fixed
//! measurement window, reporting mean time per iteration (and derived
//! throughput when declared). There is no statistical analysis, plotting,
//! or baseline comparison — the benches exist to be runnable and to give
//! order-of-magnitude numbers, not publication-grade confidence
//! intervals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Default sample size; scales the windows to criterion's usual
/// 300 ms warm-up / 1 s measurement.
const DEFAULT_SAMPLE_SIZE: u64 = 100;
/// Lower bound on `--sample-size`, criterion-style: below this the mean is
/// too noisy to be meaningful even for a smoke run.
const MIN_SAMPLE_SIZE: u64 = 10;
/// Measurement window contributed per sample (100 samples → 1 s).
const MEASURE_PER_SAMPLE: Duration = Duration::from_millis(10);
/// Warm-up window contributed per sample (100 samples → 300 ms).
const WARM_UP_PER_SAMPLE: Duration = Duration::from_millis(3);

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    /// Reads `--sample-size N` from the process arguments (the flag real
    /// criterion accepts), clamped to a floor of 10; CI passes
    /// `--sample-size 10` for a fast smoke run.
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let sample_size = sample_size_from(&args);
        Criterion {
            warm_up: WARM_UP_PER_SAMPLE * u32::try_from(sample_size).unwrap_or(u32::MAX),
            measure: MEASURE_PER_SAMPLE * u32::try_from(sample_size).unwrap_or(u32::MAX),
        }
    }
}

/// Extracts `--sample-size N` from an argument list, applying the default
/// and the floor.
fn sample_size_from(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--sample-size")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SAMPLE_SIZE)
        .max(MIN_SAMPLE_SIZE)
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }
}

/// Declared per-iteration work, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Times one benchmark: calls `f` with a [`Bencher`] whose
    /// [`iter`](Bencher::iter) loop is measured.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { total: Duration::ZERO, iterations: 0 };

        // Warm-up: run without recording.
        let warm_up_end = Instant::now() + self.criterion.warm_up;
        while Instant::now() < warm_up_end {
            f(&mut bencher);
        }
        bencher.total = Duration::ZERO;
        bencher.iterations = 0;

        let measure_end = Instant::now() + self.criterion.measure;
        while Instant::now() < measure_end {
            f(&mut bencher);
        }

        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.total / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(1)
        };
        let mut line = format!(
            "{}/{id}: {:>12} per iter ({} iters)",
            self.name,
            format_duration(per_iter),
            bencher.iterations,
        );
        if let Some(throughput) = self.throughput {
            let seconds = per_iter.as_secs_f64();
            if seconds > 0.0 {
                match throughput {
                    Throughput::Bytes(bytes) => {
                        let gib = bytes as f64 / seconds / (1u64 << 30) as f64;
                        line.push_str(&format!(", {gib:.3} GiB/s"));
                    }
                    Throughput::Elements(elements) => {
                        let meps = elements as f64 / seconds / 1e6;
                        line.push_str(&format!(", {meps:.3} Melem/s"));
                    }
                }
            }
        }
        eprintln!("{line}");
        self
    }

    /// Ends the group (kept for API compatibility; no cleanup needed).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; times the `iter` loop.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` in a timed batch and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const BATCH: u64 = 64;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += BATCH;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test -q` runs bench binaries with `--test`; a smoke
            // pass would re-time every bench, so only run when invoked
            // directly (no harness flags) or with `--bench`.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_duration_picks_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(format_duration(Duration::from_secs(4)), "4.00 s");
    }

    #[test]
    fn sample_size_flag_is_parsed_with_default_and_floor() {
        let to_args = |s: &[&str]| s.iter().map(|a| (*a).to_string()).collect::<Vec<_>>();
        assert_eq!(sample_size_from(&to_args(&["bench"])), DEFAULT_SAMPLE_SIZE);
        assert_eq!(
            sample_size_from(&to_args(&["bench", "--sample-size", "20"])),
            20
        );
        assert_eq!(
            sample_size_from(&to_args(&["bench", "--sample-size", "3"])),
            MIN_SAMPLE_SIZE,
            "floor applies"
        );
        assert_eq!(
            sample_size_from(&to_args(&["bench", "--sample-size", "bogus"])),
            DEFAULT_SAMPLE_SIZE,
            "unparsable value falls back to the default"
        );
        assert_eq!(
            sample_size_from(&to_args(&["bench", "--sample-size"])),
            DEFAULT_SAMPLE_SIZE,
            "missing value falls back to the default"
        );
    }

    #[test]
    fn bencher_accumulates_iterations() {
        let mut bencher = Bencher { total: Duration::ZERO, iterations: 0 };
        let mut count = 0u64;
        bencher.iter(|| count += 1);
        assert_eq!(bencher.iterations, 64);
        assert_eq!(count, 64);
        assert!(bencher.total > Duration::ZERO || count > 0);
    }
}
