//! The full-system secure-memory simulator: cores + metadata engine +
//! DRAM + energy (the paper's §VI methodology).
//!
//! Each simulation runs a warm-up phase (counters and metadata cache warm
//! up, statistics discarded — the paper warms 25 B instructions before
//! measuring 5 B) followed by a measured phase in which every memory access
//! the metadata engine emits is replayed into the DDR3 model, and data
//! reads gate core retirement on the completion of their critical fetch
//! chain.

use morphtree_core::metadata::{CacheStats, EngineOptions, MacMode, MemAccess, MetadataEngine, ReplacementPolicy, VerificationMode};
use morphtree_core::tree::TreeConfig;
use morphtree_trace::workload::RecordSource;

use crate::cpu::CoreModel;
use crate::dram::{DramGeometry, DramModel, DramStats, DramTiming};
use crate::energy::{EnergyBreakdown, EnergyModel};

/// Cacheline size in bytes.
pub const CACHELINE_BYTES: u64 = 64;

/// Simulation parameters (defaults = Table I).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores (Table I: 4).
    pub cores: usize,
    /// Fetch/retire width (Table I: 4).
    pub fetch_width: u64,
    /// ROB entries (Table I: 192).
    pub rob_size: u64,
    /// Physical memory size (Table I: 16 GB).
    pub memory_bytes: u64,
    /// Metadata cache capacity (Table I: 128 KB).
    pub metadata_cache_bytes: usize,
    /// MAC organization (Inline = Synergy, the paper's default).
    pub mac_mode: MacMode,
    /// Whether counter fetches gate data returns (Strict, the paper's
    /// model) or only consume bandwidth (Speculative, PoisonIvy-style).
    pub verification: VerificationMode,
    /// Metadata-cache victim selection.
    pub replacement: ReplacementPolicy,
    /// Warm-up instructions per core (statistics discarded).
    pub warmup_instructions: u64,
    /// Measured instructions per core.
    pub measure_instructions: u64,
    /// Energy-model constants.
    pub energy: EnergyModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 4,
            fetch_width: 4,
            rob_size: 192,
            memory_bytes: 16 << 30,
            metadata_cache_bytes: 128 * 1024,
            mac_mode: MacMode::Inline,
            verification: VerificationMode::Strict,
            replacement: ReplacementPolicy::Lru,
            warmup_instructions: 2_000_000,
            measure_instructions: 2_000_000,
            energy: EnergyModel::default(),
        }
    }
}

/// Results of one simulation.
///
/// Derives `PartialEq` so the experiment layer's determinism tests can
/// assert that serial and parallel sweeps produce identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Secure-memory configuration name (`Non-Secure` for the baseline).
    pub config: String,
    /// Instructions retired across all cores (measured phase).
    pub instructions: u64,
    /// Execution cycles of the measured phase.
    pub cycles: u64,
    /// Metadata-engine statistics (empty for the non-secure baseline).
    pub engine: morphtree_core::metadata::EngineStats,
    /// Metadata-cache hit/miss/eviction statistics by tree level (all-zero
    /// for the non-secure baseline, and covering the measured phase only).
    pub cache: CacheStats,
    /// DRAM activity.
    pub dram: DramStats,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl SimResult {
    /// Instructions per cycle, summed over cores.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// Performance relative to `baseline` (> 1 is a speedup), comparing
    /// equal instruction counts by inverse cycles.
    #[must_use]
    pub fn speedup_vs(&self, baseline: &SimResult) -> f64 {
        self.ipc() / baseline.ipc()
    }

    /// Memory accesses per data access (Fig 5b/16's y-axis).
    #[must_use]
    pub fn traffic_per_data_access(&self) -> f64 {
        self.engine.traffic_per_data_access()
    }
}

/// Simulates `workload` under secure memory with the given tree
/// configuration.
///
/// # Panics
///
/// Panics if the workload's core count differs from `cfg.cores`.
#[must_use]
pub fn simulate<S: RecordSource + ?Sized>(
    workload: &mut S,
    tree: TreeConfig,
    cfg: &SimConfig,
) -> SimResult {
    run(workload, Some(tree), cfg)
}

/// Simulates `workload` without any secure-memory machinery — the
/// "Non-Secure" reference of Fig 5(a).
#[must_use]
pub fn simulate_nonsecure<S: RecordSource + ?Sized>(
    workload: &mut S,
    cfg: &SimConfig,
) -> SimResult {
    run(workload, None, cfg)
}

fn run<S: RecordSource + ?Sized>(
    workload: &mut S,
    tree: Option<TreeConfig>,
    cfg: &SimConfig,
) -> SimResult {
    assert_eq!(
        workload.num_cores(),
        cfg.cores,
        "workload core count must match the configuration"
    );
    let config_name = tree
        .as_ref()
        .map_or_else(|| "Non-Secure".to_owned(), |t| t.name().to_owned());
    let mut engine = tree.map(|t| {
        MetadataEngine::with_options(
            t,
            cfg.memory_bytes,
            cfg.metadata_cache_bytes,
            EngineOptions {
                mac_mode: cfg.mac_mode,
                verification: cfg.verification,
                replacement: cfg.replacement,
            },
        )
    });

    let mut accesses: Vec<MemAccess> = Vec::with_capacity(512);

    // ---- Warm-up: counters and metadata cache fill; no timing. ----
    if let Some(engine) = engine.as_mut() {
        for core in 0..cfg.cores {
            let mut instrs = 0u64;
            while instrs < cfg.warmup_instructions {
                let rec = workload.next_record(core);
                instrs += u64::from(rec.gap) + 1;
                accesses.clear();
                if rec.is_write {
                    engine.write(rec.line, &mut accesses);
                } else {
                    engine.read(rec.line, &mut accesses);
                }
            }
        }
        engine.reset_stats();
    }

    // ---- Measured phase. ----
    let mut dram = DramModel::new(DramGeometry::default(), DramTiming::default());
    let mut cores: Vec<CoreModel> = (0..cfg.cores)
        .map(|_| CoreModel::new(cfg.fetch_width, cfg.rob_size))
        .collect();
    let mut done = vec![false; cfg.cores];

    while !done.iter().all(|&d| d) {
        // Advance the core that is furthest behind in time, so DRAM sees
        // requests in (approximate) global arrival order.
        let core_idx = (0..cfg.cores)
            .filter(|&c| !done[c])
            .min_by_key(|&c| cores[c].now())
            .expect("some core active");
        let rec = workload.next_record(core_idx);
        let issue = cores[core_idx].advance_to_mem_op(rec.gap);

        accesses.clear();
        match engine.as_mut() {
            Some(engine) => {
                if rec.is_write {
                    engine.write(rec.line, &mut accesses);
                } else {
                    engine.read(rec.line, &mut accesses);
                }
            }
            None => {
                accesses.push(MemAccess {
                    addr: rec.line * CACHELINE_BYTES,
                    is_write: rec.is_write,
                    category: morphtree_core::metadata::AccessCategory::Data,
                    critical: !rec.is_write,
                });
            }
        }

        let mut completion = issue;
        for access in &accesses {
            let finished = dram.request(issue, access.addr, access.is_write);
            if access.critical && !access.is_write {
                completion = completion.max(finished);
            }
        }
        if !rec.is_write {
            cores[core_idx].record_load(completion);
        }
        if cores[core_idx].instructions() >= cfg.measure_instructions {
            done[core_idx] = true;
        }
    }

    let cycles = cores.iter().map(CoreModel::finish_cycle).max().expect("cores");
    let instructions: u64 = cores.iter().map(CoreModel::instructions).sum();
    let cache_stats = engine
        .as_ref()
        .map(|e| *e.cache().stats())
        .unwrap_or_default();
    let engine_stats = engine
        .as_ref()
        .map(|e| e.stats().clone())
        .unwrap_or_else(|| {
            let mut s = morphtree_core::metadata::EngineStats::new(0);
            // Count the raw data traffic for consistent ratios.
            s.data_reads = dram.stats().reads;
            s.data_writes = dram.stats().writes;
            s.reads[0] = dram.stats().reads;
            s.writes[0] = dram.stats().writes;
            s
        });
    // Zero-cycle runs have no meaningful breakdown; the all-zero default
    // reports `None` power/EDP downstream rather than NaN.
    let energy = cfg
        .energy
        .evaluate(cycles, instructions, dram.stats())
        .unwrap_or_default();

    SimResult {
        workload: workload.name().to_owned(),
        config: config_name,
        instructions,
        cycles,
        engine: engine_stats,
        cache: cache_stats,
        dram: *dram.stats(),
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphtree_trace::catalog::Benchmark;
    use morphtree_trace::workload::SystemWorkload;

    /// A quick configuration for tests: small memory, short runs.
    fn quick() -> SimConfig {
        SimConfig {
            cores: 2,
            memory_bytes: 1 << 30,
            metadata_cache_bytes: 32 * 1024,
            warmup_instructions: 100_000,
            measure_instructions: 100_000,
            ..SimConfig::default()
        }
    }

    fn workload(name: &str, cfg: &SimConfig, seed: u64) -> SystemWorkload {
        SystemWorkload::rate(
            Benchmark::by_name(name).unwrap(),
            cfg.cores,
            cfg.memory_bytes,
            seed,
        )
    }

    #[test]
    fn nonsecure_is_fastest() {
        let cfg = quick();
        let base = simulate_nonsecure(&mut workload("mcf", &cfg, 1), &cfg);
        let secure = simulate(&mut workload("mcf", &cfg, 1), TreeConfig::sc64(), &cfg);
        assert!(
            base.ipc() > secure.ipc(),
            "non-secure {} !> secure {}",
            base.ipc(),
            secure.ipc()
        );
    }

    #[test]
    fn secure_traffic_exceeds_one_access_per_data_access() {
        let cfg = quick();
        let r = simulate(&mut workload("mcf", &cfg, 2), TreeConfig::sc64(), &cfg);
        assert!(r.traffic_per_data_access() > 1.0);
        assert!(r.engine.data_accesses() > 0);
    }

    #[test]
    fn morphtree_reduces_counter_traffic_vs_sc64_on_random_workload() {
        let cfg = quick();
        let sc64 = simulate(&mut workload("mcf", &cfg, 3), TreeConfig::sc64(), &cfg);
        let morph = simulate(&mut workload("mcf", &cfg, 3), TreeConfig::morphtree(), &cfg);
        assert!(
            morph.traffic_per_data_access() < sc64.traffic_per_data_access(),
            "morph {} !< sc64 {}",
            morph.traffic_per_data_access(),
            sc64.traffic_per_data_access()
        );
    }

    #[test]
    fn vault_has_more_counter_traffic_than_sc64() {
        let cfg = quick();
        let sc64 = simulate(&mut workload("mcf", &cfg, 4), TreeConfig::sc64(), &cfg);
        let vault = simulate(&mut workload("mcf", &cfg, 4), TreeConfig::vault(), &cfg);
        assert!(
            vault.traffic_per_data_access() > sc64.traffic_per_data_access(),
            "vault {} !> sc64 {}",
            vault.traffic_per_data_access(),
            sc64.traffic_per_data_access()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = quick();
        let a = simulate(&mut workload("milc", &cfg, 9), TreeConfig::morphtree(), &cfg);
        let b = simulate(&mut workload("milc", &cfg, 9), TreeConfig::morphtree(), &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn instruction_quota_respected() {
        let cfg = quick();
        let r = simulate(&mut workload("libquantum", &cfg, 5), TreeConfig::sc64(), &cfg);
        let per_core_min = cfg.measure_instructions;
        assert!(r.instructions >= per_core_min * cfg.cores as u64);
        // Quota overshoot is bounded by one record's gap.
        assert!(r.instructions < (per_core_min + 10_000) * cfg.cores as u64);
    }

    #[test]
    fn cache_stats_cover_the_measured_phase_only() {
        let cfg = quick();
        let secure = simulate(&mut workload("mcf", &cfg, 7), TreeConfig::sc64(), &cfg);
        // The warm-up resets cache stats, so whatever remains was accrued
        // during measurement and must agree with the engine's miss traffic.
        assert!(secure.cache.hits + secure.cache.misses > 0);
        assert!(secure.cache.hit_rate().is_some());
        let base = simulate_nonsecure(&mut workload("mcf", &cfg, 7), &cfg);
        assert_eq!(base.cache, CacheStats::default());
        assert_eq!(base.cache.hit_rate(), None);
    }

    #[test]
    fn energy_fields_are_consistent() {
        let cfg = quick();
        let r = simulate(&mut workload("lbm", &cfg, 6), TreeConfig::sc64(), &cfg);
        assert!(r.energy.power_w().unwrap() > 0.0);
        assert!(
            (r.energy.edp().unwrap() - r.energy.energy_j() * r.energy.time_s).abs() < 1e-15
        );
        assert!(r.ipc() > 0.0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn rejects_core_mismatch() {
        let cfg = quick();
        let mut w = SystemWorkload::rate(
            Benchmark::by_name("mcf").unwrap(),
            1,
            cfg.memory_bytes,
            1,
        );
        let _ = simulate(&mut w, TreeConfig::sc64(), &cfg);
    }

    #[test]
    fn simulation_types_are_send() {
        // The parallel sweep engine runs `simulate` on worker threads:
        // configs cross the spawn boundary and results cross back.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SimConfig>();
        assert_sync::<SimConfig>();
        assert_send::<SimResult>();
    }
}
