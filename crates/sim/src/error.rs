//! Typed errors for the timing/power simulator.
//!
//! PR 2 established a panic-free policy for the substrate: invalid inputs
//! surface as typed errors, never `assert!` panics. This module extends
//! that policy to the sim crate (ISSUE 4 satellite 1: the energy model
//! used to panic on zero-cycle runs).

use std::fmt;

/// An error from the timing/power simulation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The energy model was asked to evaluate a run of zero cycles —
    /// there is no elapsed time to attribute static energy or power to.
    ZeroCycleRun,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroCycleRun => {
                write!(f, "energy model evaluated over a zero-cycle run")
            }
        }
    }
}

impl std::error::Error for SimError {}
