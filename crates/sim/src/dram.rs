//! DDR3-1600 memory-system timing model.
//!
//! Table I's memory system: 800 MHz bus, 2 channels × 2 ranks × 8 banks,
//! 64 K rows per bank, 128 cachelines (8 KB) per row, open-page policy.
//!
//! The model tracks, per bank, the open row and the earliest cycle the bank
//! can accept a new column command, and per channel the data-bus busy time.
//! A request's completion is `max(arrival, bank ready, bus free)` plus the
//! row-hit or row-miss access latency plus the burst. Requests are serviced
//! in arrival order with an open-row policy, so streaming access patterns
//! enjoy row hits and bank-level parallelism overlaps independent requests
//! — the two first-order DDR behaviours the paper's traffic-bloat argument
//! rests on. Rank-level constraints are modeled too: tRRD and the
//! four-activate window (tFAW) gate activations, and one refresh per tREFI
//! blocks the rank for tRFC. (Command-bus contention is second-order for
//! these experiments and is not modeled; see DESIGN.md.)
//!
//! All times are in **CPU cycles** (3.2 GHz core, 800 MHz bus ⇒ one bus
//! cycle = 4 CPU cycles).

use morphtree_core::obs::Histogram;

/// CPU cycles per DRAM bus cycle (3.2 GHz / 800 MHz).
pub const CPU_PER_BUS_CYCLE: u64 = 4;

/// DDR3 timing parameters, in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row-to-column delay (activate → read/write).
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// CAS (column access) latency.
    pub t_cas: u64,
    /// Data burst duration for one 64-byte line (BL8).
    pub t_burst: u64,
    /// Write recovery added to the bank busy time after a write.
    pub t_wr: u64,
    /// Minimum activate-to-activate gap between banks of one rank.
    pub t_rrd: u64,
    /// Four-activate window per rank (at most 4 activates per tFAW).
    pub t_faw: u64,
    /// Refresh cycle time: the rank is unavailable this long per refresh.
    pub t_rfc: u64,
    /// Average refresh interval (one refresh per tREFI per rank); zero
    /// disables refresh modeling.
    pub t_refi: u64,
}

impl Default for DramTiming {
    /// DDR3-1600 11-11-11 (4 Gb devices) in bus cycles, scaled to CPU
    /// cycles.
    fn default() -> Self {
        DramTiming {
            t_rcd: 11 * CPU_PER_BUS_CYCLE,
            t_rp: 11 * CPU_PER_BUS_CYCLE,
            t_cas: 11 * CPU_PER_BUS_CYCLE,
            t_burst: 4 * CPU_PER_BUS_CYCLE,
            t_wr: 12 * CPU_PER_BUS_CYCLE,
            t_rrd: 5 * CPU_PER_BUS_CYCLE,
            t_faw: 24 * CPU_PER_BUS_CYCLE,
            t_rfc: 208 * CPU_PER_BUS_CYCLE,
            t_refi: 6240 * CPU_PER_BUS_CYCLE,
        }
    }
}

impl DramTiming {
    /// Latency of a row-hit access (CAS only).
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        self.t_cas
    }

    /// Latency of a row-miss access (precharge + activate + CAS).
    #[must_use]
    pub fn miss_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas
    }
}

/// Geometry of the memory system (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramGeometry {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Cachelines per row (128 × 64 B = 8 KB row buffer).
    pub lines_per_row: u64,
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry { channels: 2, ranks: 2, banks: 8, lines_per_row: 128 }
    }
}

impl DramGeometry {
    /// Total banks across the system.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }
}

/// Where an address landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedAddr {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Flat bank index within the channel (rank * banks + bank).
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
}

/// Per-rank activation bookkeeping for tRRD/tFAW and refresh accounting.
#[derive(Debug, Clone, Copy, Default)]
struct RankState {
    /// Completion times of the last four activates (ring buffer).
    recent_activates: [u64; 4],
    /// Cursor into `recent_activates`.
    cursor: usize,
    /// Time of the most recent activate.
    last_activate: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    ready: u64,
}

/// Aggregate DRAM activity: event counters (inputs to the energy model)
/// plus full latency distributions (inputs to the observability layer).
///
/// The latency fields are log2-bucket [`Histogram`]s rather than scalar
/// sums, so `--metrics` can report p50/p90/p99 tails; histograms track the
/// exact sum, so [`DramStats::mean_read_latency`] is unchanged in value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Row activations (row misses).
    pub activates: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Requests delayed by an in-progress refresh.
    pub refresh_conflicts: u64,
    /// Distribution of read latencies (arrival → data return), CPU cycles.
    pub read_latency: Histogram,
    /// Distribution of write latencies (arrival → burst complete), CPU
    /// cycles.
    pub write_latency: Histogram,
    /// Distribution of queueing delays (arrival → service start) across
    /// all requests, CPU cycles — the bank/refresh wait before the access
    /// itself begins.
    pub queue_delay: Histogram,
}

impl DramStats {
    /// Total bursts serviced.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all accesses, or `None` when no access
    /// has been serviced — "no traffic" must stay distinguishable from a
    /// true 0% hit rate (ISSUE 4 satellite 3).
    #[must_use]
    pub fn row_hit_rate(&self) -> Option<f64> {
        let accesses = self.accesses();
        (accesses > 0).then(|| self.row_hits as f64 / accesses as f64)
    }

    /// Mean read latency in CPU cycles, or `None` when no read has been
    /// serviced.
    #[must_use]
    pub fn mean_read_latency(&self) -> Option<f64> {
        self.read_latency.mean()
    }
}

/// The DDR3 memory system.
#[derive(Debug, Clone)]
pub struct DramModel {
    timing: DramTiming,
    geometry: DramGeometry,
    /// Per-channel data-bus free time.
    bus_free: Vec<u64>,
    /// Per (channel, flat bank) state.
    banks: Vec<BankState>,
    /// Per (channel, rank) activation windows.
    ranks: Vec<RankState>,
    stats: DramStats,
}

impl DramModel {
    /// Creates a memory system with the given geometry and timing.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: DramTiming) -> Self {
        DramModel {
            timing,
            geometry,
            bus_free: vec![0; geometry.channels],
            banks: vec![BankState::default(); geometry.total_banks()],
            ranks: vec![RankState::default(); geometry.channels * geometry.ranks],
            stats: DramStats::default(),
        }
    }

    /// Activity counters so far.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears activity counters (bank/bus state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Open-page address mapping: column bits low (so a row sweep stays in
    /// one row buffer), then channel, rank, bank, row —
    /// `row | bank | rank | channel | column | offset`.
    #[must_use]
    pub fn map(&self, addr: u64) -> MappedAddr {
        let g = &self.geometry;
        let mut line = addr / crate::system::CACHELINE_BYTES;
        line /= g.lines_per_row; // drop column bits
        let channel = (line % g.channels as u64) as usize;
        line /= g.channels as u64;
        let rank = (line % g.ranks as u64) as usize;
        line /= g.ranks as u64;
        let bank = (line % g.banks as u64) as usize;
        let row = line / g.banks as u64;
        MappedAddr { channel, rank, bank: rank * g.banks + bank, row }
    }

    /// If `at` falls inside a refresh window (one per tREFI, lasting tRFC),
    /// returns the cycle the window ends; otherwise `at`.
    fn after_refresh(&mut self, at: u64) -> u64 {
        if self.timing.t_refi == 0 {
            return at;
        }
        let phase = at % self.timing.t_refi;
        if phase < self.timing.t_rfc {
            self.stats.refresh_conflicts += 1;
            at - phase + self.timing.t_rfc
        } else {
            at
        }
    }

    /// Earliest cycle an activate may issue on `rank_idx` at or after
    /// `at`, respecting tRRD and the four-activate window, and records it.
    fn schedule_activate(&mut self, rank_idx: usize, at: u64) -> u64 {
        let t = self.timing;
        let rank = &mut self.ranks[rank_idx];
        let oldest = rank.recent_activates[rank.cursor];
        let start = at
            .max(rank.last_activate + t.t_rrd)
            .max(oldest + t.t_faw);
        rank.recent_activates[rank.cursor] = start;
        rank.cursor = (rank.cursor + 1) % 4;
        rank.last_activate = start;
        start
    }

    /// Services one 64-byte request arriving at CPU cycle `at`; returns the
    /// cycle its data burst completes.
    pub fn request(&mut self, at: u64, addr: u64, is_write: bool) -> u64 {
        let mapped = self.map(addr);
        let bank_idx = mapped.channel * self.geometry.ranks * self.geometry.banks + mapped.bank;
        let rank_idx = mapped.channel * self.geometry.ranks + mapped.rank;

        // Refresh blocks the whole rank for tRFC once per tREFI.
        let bank_ready = self.banks[bank_idx].ready;
        let arrival = self.after_refresh(at.max(bank_ready));

        let hit = matches!(self.banks[bank_idx].open_row, Some(row) if row == mapped.row);
        let (start, latency) = if hit {
            (arrival, self.timing.hit_latency())
        } else {
            // Row conflict or closed row: precharge (if open) then an
            // activate constrained by the rank's tRRD/tFAW window.
            let precharge = if self.banks[bank_idx].open_row.is_some() {
                self.timing.t_rp
            } else {
                0
            };
            let act_start = self.schedule_activate(rank_idx, arrival + precharge);
            (act_start - precharge, precharge + self.timing.t_rcd + self.timing.t_cas)
        };
        let bank = &mut self.banks[bank_idx];
        bank.open_row = Some(mapped.row);
        let bus = &mut self.bus_free[mapped.channel];

        // The data bus is only occupied during the burst itself, so bank
        // latencies on different banks overlap (bank-level parallelism).
        let data_start = (start + latency).max(*bus);
        let completion = data_start + self.timing.t_burst;
        *bus = completion;
        bank.ready = if is_write {
            completion + self.timing.t_wr
        } else {
            data_start
        };

        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.activates += 1;
        }
        // Queue delay = how long the request sat before its access began
        // (bank busy, refresh, activate-window stalls).
        self.stats.queue_delay.record(start.saturating_sub(at));
        if is_write {
            self.stats.writes += 1;
            self.stats.write_latency.record(completion - at);
        } else {
            self.stats.reads += 1;
            self.stats.read_latency.record(completion - at);
        }
        completion
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::new(DramGeometry::default(), DramTiming::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::default()
    }

    #[test]
    fn sequential_lines_hit_the_row_buffer() {
        let mut d = dram();
        let first = d.request(0, 0, false);
        assert!(first >= DramTiming::default().t_rcd);
        // Next line in the same row: hit (shorter bank latency).
        let _ = d.request(first, 64, false);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().activates, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let g = DramGeometry::default();
        let t = DramTiming::default();
        // Two addresses in the same bank, different rows: stride one full
        // row * channels * ranks * banks.
        let stride = 64 * g.lines_per_row * (g.channels * g.ranks * g.banks) as u64;
        let c1 = d.request(0, 0, false);
        let c2 = d.request(c1, stride, false);
        assert!(c2 - c1 >= t.miss_latency(), "conflict latency {}", c2 - c1);
        assert_eq!(d.stats().activates, 2);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = dram();
        let g = DramGeometry::default();
        // Lines in different channels: row-sized stride flips the channel bit.
        let ch_stride = 64 * g.lines_per_row;
        assert_ne!(d.map(0).channel, d.map(ch_stride).channel);
        let c1 = d.request(0, 0, false);
        let c2 = d.request(0, ch_stride, false);
        // Both issued at 0: they finish within a burst of each other.
        assert!(c2.abs_diff(c1) <= DramTiming::default().t_burst);
    }

    #[test]
    fn same_channel_serializes_on_the_data_bus() {
        let mut d = dram();
        let t = DramTiming::default();
        let g = DramGeometry::default();
        // Same channel, different banks: bus is shared.
        let bank_stride = 64 * g.lines_per_row * (g.channels * g.ranks) as u64;
        let a = d.map(0);
        let b = d.map(bank_stride);
        assert_eq!(a.channel, b.channel);
        assert_ne!(a.bank, b.bank);
        let c1 = d.request(0, 0, false);
        let c2 = d.request(0, bank_stride, false);
        assert!(c2 >= c1 + t.t_burst, "bursts must not overlap on one bus");
    }

    #[test]
    fn bandwidth_saturates_under_load() {
        // Hammer one channel: completions spread out by at least t_burst.
        let mut d = dram();
        let t = DramTiming::default();
        let mut last = 0;
        for i in 0..100u64 {
            let done = d.request(0, i * 64, false);
            assert!(done >= last, "monotone completions");
            last = done;
        }
        // 100 bursts on one row: total time at least 100 * burst.
        assert!(last >= 100 * t.t_burst);
    }

    #[test]
    fn writes_add_recovery_time() {
        let mut d = dram();
        let t = DramTiming::default();
        let w = d.request(0, 0, true);
        let r = d.request(w, 64, false);
        // The read waits for write recovery on the bank.
        assert!(r >= w + t.t_wr, "read at {r}, write done {w}");
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn latency_accounting() {
        let mut d = dram();
        let done = d.request(100, 0, false);
        let h = &d.stats().read_latency;
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), u128::from(done - 100));
        assert_eq!(h.max(), Some(done - 100));
        assert!(d.stats().mean_read_latency().unwrap() > 0.0);
        // A write records into the write histogram, not the read one.
        let w_done = d.request(done, 64, true);
        assert_eq!(d.stats().write_latency.count(), 1);
        assert_eq!(d.stats().write_latency.max(), Some(w_done - done));
        assert_eq!(d.stats().read_latency.count(), 1);
    }

    #[test]
    fn empty_stats_report_none_not_zero() {
        // Regression (ISSUE 4 satellite 3): "no accesses" used to report
        // 0.0, indistinguishable from a true 0% hit rate / 0-cycle mean.
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), None);
        assert_eq!(s.mean_read_latency(), None);
        assert!(s.queue_delay.is_empty());
    }

    #[test]
    fn queue_delay_measures_the_wait_before_service() {
        // Disable refresh so the only queueing source is bank contention,
        // and issue past the initial activate window (tFAW bookkeeping
        // starts at zero) so the first request truly has an idle bank.
        let t = DramTiming { t_refi: 0, ..DramTiming::default() };
        let mut d = DramModel::new(DramGeometry::default(), t);
        let calm = t.t_faw + 1;
        let c1 = d.request(calm, 0, false);
        assert_eq!(d.stats().queue_delay.max(), Some(0));
        // Second request to the SAME bank issued while it is still busy
        // (same arrival, different row): it queues behind the first.
        let g = DramGeometry::default();
        let stride = 64 * g.lines_per_row * (g.channels * g.ranks * g.banks) as u64;
        let _ = d.request(calm, stride, false);
        let delayed = d.stats().queue_delay.max().unwrap();
        assert!(delayed > 0, "conflicting request must queue, got {delayed}");
        assert!(delayed >= c1.saturating_sub(calm + t.t_burst));
    }

    #[test]
    fn map_covers_all_banks() {
        let d = dram();
        let g = DramGeometry::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.total_banks() as u64 {
            let m = d.map(i * 64 * g.lines_per_row);
            seen.insert((m.channel, m.bank));
        }
        assert_eq!(seen.len(), g.total_banks());
    }

    #[test]
    fn reset_stats_preserves_bank_state() {
        let mut d = dram();
        d.request(0, 0, false);
        d.reset_stats();
        assert_eq!(d.stats().accesses(), 0);
        // Still a row hit: the row stayed open across the reset.
        d.request(1000, 64, false);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn refresh_windows_delay_requests() {
        let t = DramTiming::default();
        let mut d = dram();
        // A request arriving inside the first refresh window is pushed out.
        let inside = t.t_rfc / 2;
        let done = d.request(inside, 0, false);
        assert!(done >= t.t_rfc, "request must wait out the refresh");
        assert_eq!(d.stats().refresh_conflicts, 1);
        // A request between windows is unaffected.
        let calm = t.t_rfc + 100;
        let mut d2 = dram();
        let done2 = d2.request(calm, 64 * 128 * 32, false);
        assert!(done2 < calm + t.miss_latency() + t.t_burst + 1);
        assert_eq!(d2.stats().refresh_conflicts, 0);
    }

    #[test]
    fn refresh_can_be_disabled() {
        let t = DramTiming { t_refi: 0, ..DramTiming::default() };
        let mut d = DramModel::new(DramGeometry::default(), t);
        let done = d.request(10, 0, false);
        assert!(done < t.t_rfc, "no refresh stall when disabled");
        assert_eq!(d.stats().refresh_conflicts, 0);
    }

    #[test]
    fn four_activate_window_throttles_activation_storms() {
        let t = DramTiming { t_refi: 0, ..DramTiming::default() }; // isolate tFAW
        let mut d = DramModel::new(DramGeometry::default(), t);
        let g = DramGeometry::default();
        // Five row conflicts on five different banks of the SAME rank,
        // all arriving at cycle 0: the fifth activate must wait for tFAW.
        let bank_stride = 64 * g.lines_per_row * (g.channels * g.ranks) as u64;
        let mut completions = Vec::new();
        for i in 0..5u64 {
            let addr = i * bank_stride;
            let mapped = d.map(addr);
            assert_eq!(mapped.rank, 0);
            assert_eq!(mapped.channel, 0);
            completions.push(d.request(0, addr, false));
        }
        // All five are closed-row activates; the fifth cannot start its
        // activate before tFAW after the first.
        let first_act = completions[0] - t.t_burst - t.t_cas - t.t_rcd;
        let fifth_act = completions[4] - t.t_burst - t.t_cas - t.t_rcd;
        assert!(
            fifth_act >= first_act + t.t_faw,
            "fifth activate at {fifth_act}, first at {first_act}"
        );
        // And consecutive activates respect tRRD.
        for pair in completions.windows(2) {
            assert!(pair[1] >= pair[0].saturating_sub(t.t_burst) , "monotone-ish");
        }
    }

    #[test]
    fn row_hit_rate_math() {
        let mut d = dram();
        for i in 0..10 {
            d.request(0, i * 64, false);
        }
        assert_eq!(d.stats().row_hits, 9);
        assert!((d.stats().row_hit_rate().unwrap() - 0.9).abs() < 1e-12);
    }
}
