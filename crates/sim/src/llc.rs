//! A last-level-cache filter for raw access traces.
//!
//! The paper's traces (and this reproduction's synthetic workloads) are
//! *post-LLC*: they contain only the accesses that reach memory. Users
//! replaying their own raw traces need Table I's 8 MB shared LLC in front
//! of the memory system — [`LlcFilter`] wraps any
//! [`RecordSource`] of raw accesses and emits exactly the misses and dirty
//! writebacks an inclusive, write-back, write-allocate LRU LLC would send
//! to memory.

use morphtree_trace::workload::{RecordSource, TraceRecord};

/// Configuration of the shared LLC (Table I: 8 MB, 8-way, 64 B lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig { capacity_bytes: 8 << 20, ways: 8 }
    }
}

#[derive(Debug, Clone, Copy)]
struct LlcEntry {
    line: u64,
    dirty: bool,
}

/// LLC hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Raw accesses observed.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (these become memory reads).
    pub misses: u64,
    /// Dirty evictions (these become memory writes).
    pub writebacks: u64,
}

impl LlcStats {
    /// Miss rate over raw accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Wraps a raw-access [`RecordSource`] and yields the post-LLC stream.
///
/// Each emitted record is either a demand miss (`is_write == false`; reads
/// *and* write-allocate fills both fetch the line) or a dirty writeback
/// (`is_write == true`). Instruction gaps of hits are accumulated onto the
/// next emitted record, preserving the instruction count.
#[derive(Debug)]
pub struct LlcFilter<S> {
    source: S,
    config: LlcConfig,
    sets: Vec<Vec<LlcEntry>>,
    stats: LlcStats,
    /// Writebacks waiting to be emitted, per core.
    pending: Vec<Vec<TraceRecord>>,
    /// Hit gaps accumulated per core.
    carried_gap: Vec<u64>,
}

impl<S: RecordSource> LlcFilter<S> {
    /// Wraps `source` with an LLC of the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * 64`.
    #[must_use]
    pub fn new(source: S, config: LlcConfig) -> Self {
        let lines = config.capacity_bytes / 64;
        assert!(
            config.ways >= 1 && lines >= config.ways && lines.is_multiple_of(config.ways),
            "LLC capacity incompatible with associativity"
        );
        let cores = source.num_cores();
        LlcFilter {
            config,
            sets: vec![Vec::with_capacity(config.ways); lines / config.ways],
            stats: LlcStats::default(),
            pending: vec![Vec::new(); cores],
            carried_gap: vec![0; cores],
            source,
        }
    }

    /// LLC statistics so far.
    #[must_use]
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Consumes the filter, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.source
    }

    /// Simulates one raw access.
    fn access(&mut self, line: u64, is_write: bool) -> AccessResult {
        self.stats.accesses += 1;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.line == line) {
            let mut entry = set.remove(pos);
            entry.dirty |= is_write;
            set.push(entry);
            self.stats.hits += 1;
            return AccessResult::Hit;
        }
        self.stats.misses += 1;
        let victim = if set.len() == ways { Some(set.remove(0)) } else { None };
        set.push(LlcEntry { line, dirty: is_write });
        let writeback = match victim {
            Some(v) if v.dirty => {
                self.stats.writebacks += 1;
                Some(v.line)
            }
            _ => None,
        };
        AccessResult::Miss { writeback }
    }
}

/// Outcome of one raw access against the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessResult {
    Hit,
    Miss {
        /// Dirty victim line, if any.
        writeback: Option<u64>,
    },
}

impl<S: RecordSource> RecordSource for LlcFilter<S> {
    fn num_cores(&self) -> usize {
        self.source.num_cores()
    }

    fn name(&self) -> &str {
        self.source.name()
    }

    fn next_record(&mut self, core: usize) -> TraceRecord {
        if let Some(record) = self.pending[core].pop() {
            return record;
        }
        loop {
            let raw = self.source.next_record(core);
            let gap_total = self.carried_gap[core] + u64::from(raw.gap);
            match self.access(raw.line, raw.is_write) {
                AccessResult::Miss { writeback } => {
                    if let Some(victim) = writeback {
                        // Emit the demand miss now; queue the writeback.
                        self.pending[core].push(TraceRecord {
                            gap: 0,
                            line: victim,
                            is_write: true,
                        });
                    }
                    self.carried_gap[core] = 0;
                    return TraceRecord {
                        gap: gap_total.min(u64::from(u32::MAX)) as u32,
                        line: raw.line,
                        is_write: false,
                    };
                }
                AccessResult::Hit => {
                    // Carry the instructions forward and keep pulling.
                    self.carried_gap[core] = gap_total + 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphtree_trace::io::RecordedTrace;

    fn raw(records: Vec<TraceRecord>) -> RecordedTrace {
        RecordedTrace::new("raw", vec![records]).unwrap()
    }

    fn rec(line: u64, is_write: bool) -> TraceRecord {
        TraceRecord { gap: 10, line, is_write }
    }

    fn tiny_llc<S: RecordSource>(source: S) -> LlcFilter<S> {
        // 2 sets x 2 ways.
        LlcFilter::new(source, LlcConfig { capacity_bytes: 4 * 64, ways: 2 })
    }

    #[test]
    fn hits_are_filtered_and_gaps_carried() {
        // Same line twice: second access hits; its instructions carry to
        // the next miss.
        let mut f = tiny_llc(raw(vec![rec(0, false), rec(0, false), rec(2, false)]));
        let first = f.next_record(0);
        assert_eq!(first.line, 0);
        assert_eq!(first.gap, 10);
        let second = f.next_record(0);
        assert_eq!(second.line, 2, "the hit was filtered");
        assert_eq!(u64::from(second.gap), 10 + 10 + 1, "hit instructions carried");
        assert_eq!(f.stats().hits, 1);
        assert_eq!(f.stats().misses, 2);
    }

    #[test]
    fn dirty_eviction_emits_a_writeback() {
        // Fill set 0 (lines 0, 2 map to set 0 with 2 sets) with a dirty
        // line, then evict it.
        let mut f = tiny_llc(raw(vec![rec(0, true), rec(2, false), rec(4, false)]));
        assert_eq!(f.next_record(0).line, 0);
        assert_eq!(f.next_record(0).line, 2);
        // Line 4 evicts line 0 (dirty): the miss comes first, then the
        // writeback.
        let miss = f.next_record(0);
        assert_eq!(miss.line, 4);
        assert!(!miss.is_write);
        let writeback = f.next_record(0);
        assert_eq!(writeback.line, 0);
        assert!(writeback.is_write);
        assert_eq!(f.stats().writebacks, 1);
    }

    #[test]
    fn clean_evictions_are_silent() {
        let mut f = tiny_llc(raw(vec![rec(0, false), rec(2, false), rec(4, false), rec(6, false)]));
        for expect in [0u64, 2, 4, 6] {
            let r = f.next_record(0);
            assert_eq!(r.line, expect);
            assert!(!r.is_write);
        }
        assert_eq!(f.stats().writebacks, 0);
    }

    #[test]
    fn write_allocate_fetches_then_dirties() {
        let mut f = tiny_llc(raw(vec![rec(8, true), rec(10, false), rec(12, false)]));
        // The write miss is emitted as a fetch (write-allocate).
        let fill = f.next_record(0);
        assert_eq!(fill.line, 8);
        assert!(!fill.is_write, "write-allocate fetches the line");
        // Evicting it later produces the dirty writeback.
        let _ = f.next_record(0); // line 10 (set 0? 10 % 2 == 0 -> set 0)
        let miss12 = f.next_record(0);
        assert_eq!(miss12.line, 12);
        let wb = f.next_record(0);
        assert_eq!(wb.line, 8);
        assert!(wb.is_write);
    }

    #[test]
    fn miss_rate_reflects_locality() {
        // A looping scan of 2 lines in a 4-line cache: everything after the
        // first pass hits. Drive raw accesses directly (pulling filtered
        // records would block on an all-hit stream).
        let mut f = tiny_llc(raw(vec![rec(0, false), rec(1, false)]));
        for i in 0..40u64 {
            let _ = f.access(i % 2, false);
        }
        assert_eq!(f.stats().misses, 2);
        assert_eq!(f.stats().hits, 38);
        assert!(f.stats().miss_rate() < 0.1);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn rejects_bad_geometry() {
        let _ = LlcFilter::new(raw(vec![rec(0, false)]), LlcConfig {
            capacity_bytes: 100,
            ways: 8,
        });
    }
}
