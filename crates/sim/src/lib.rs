//! Memory-system timing and power simulator for the morphtree
//! reproduction — the USIMM-equivalent substrate of the paper's §VI.
//!
//! The simulator is trace-driven and models:
//!
//! - a DDR3-1600 memory system (2 channels × 2 ranks × 8 banks, open-page
//!   policy, bank timing and data-bus occupancy) — [`dram`];
//! - four out-of-order cores (4-wide, 192-entry ROB, 3.2 GHz) whose reads
//!   block retirement until memory responds — [`cpu`];
//! - the secure-memory metadata engine from `morphtree-core`, whose counter
//!   fetches, write propagation and overflow traffic share the DRAM with
//!   program data — [`system`];
//! - a DRAM + core energy model for the Fig 18 power/energy/EDP results —
//!   [`energy`];
//! - a discrete-event FR-FCFS memory controller with write-drain
//!   watermarks, USIMM's actual scheduling model — [`controller`];
//! - a last-level-cache filter turning raw access traces into the post-LLC
//!   streams the simulator consumes — [`llc`];
//! - a checksummed checkpoint codec for simulation results, so
//!   interrupted sweeps resume without re-simulating — [`persist`].
//!
//! # Example
//!
//! ```no_run
//! use morphtree_core::tree::TreeConfig;
//! use morphtree_sim::system::{simulate, SimConfig};
//! use morphtree_trace::catalog::Benchmark;
//! use morphtree_trace::workload::SystemWorkload;
//!
//! let cfg = SimConfig::default();
//! let bench = Benchmark::by_name("mcf").unwrap();
//! let mut workload = SystemWorkload::rate(bench, cfg.cores, cfg.memory_bytes, 1);
//! let result = simulate(&mut workload, TreeConfig::morphtree(), &cfg);
//! println!("IPC = {:.3}", result.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod cpu;
pub mod dram;
pub mod energy;
pub mod error;
pub mod llc;
pub mod persist;
pub mod system;

pub use error::SimError;
pub use system::{simulate, SimConfig, SimResult};
