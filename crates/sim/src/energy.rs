//! System power and energy model (Fig 18).
//!
//! The paper uses USIMM's Micron-style DRAM power model with 4 Gb x8 DDR3
//! parameters. We model the same three components, which is all Fig 18's
//! relative results require:
//!
//! - **static/background power** (cores idle + uncore + DRAM background):
//!   proportional to execution time;
//! - **core dynamic energy**: proportional to instructions executed (this
//!   is why a faster run has *higher* average power — the same work in
//!   less time, the paper's §VII-G observation);
//! - **DRAM activity energy**: per activate / read / write burst, from
//!   datasheet-scale constants.

use crate::dram::DramStats;
use crate::error::SimError;

/// CPU clock in Hz (Table I: 3.2 GHz).
pub const CPU_HZ: f64 = 3.2e9;

/// Energy-model constants. Tuned to datasheet magnitudes; only the ratios
/// matter for Fig 18's normalized results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Static + background power in watts (4 cores + uncore + DRAM
    /// background).
    pub static_power_w: f64,
    /// Core dynamic energy per instruction, joules.
    pub energy_per_instruction_j: f64,
    /// Energy per DRAM row activation (activate + precharge), joules.
    pub energy_per_activate_j: f64,
    /// Energy per read burst, joules.
    pub energy_per_read_j: f64,
    /// Energy per write burst, joules.
    pub energy_per_write_j: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            static_power_w: 12.0,
            energy_per_instruction_j: 0.8e-9,
            energy_per_activate_j: 18.0e-9,
            energy_per_read_j: 12.0e-9,
            energy_per_write_j: 13.0e-9,
        }
    }
}

/// Energy/power breakdown of one simulation (the four bars of Fig 18).
///
/// The all-zero [`Default`] value is the "no data" breakdown: its
/// derived quantities ([`EnergyBreakdown::power_w`],
/// [`EnergyBreakdown::edp`]) report `None` rather than NaN/inf.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Execution time in seconds.
    pub time_s: f64,
    /// DRAM activity energy in joules.
    pub dram_energy_j: f64,
    /// Core dynamic energy in joules.
    pub core_energy_j: f64,
    /// Static/background energy in joules.
    pub static_energy_j: f64,
}

impl EnergyBreakdown {
    /// Total system energy in joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.dram_energy_j + self.core_energy_j + self.static_energy_j
    }

    /// Average system power in watts, or `None` when no time elapsed —
    /// dividing by a zero `time_s` would put NaN/inf into reports.
    #[must_use]
    pub fn power_w(&self) -> Option<f64> {
        (self.time_s > 0.0).then(|| self.energy_j() / self.time_s)
    }

    /// Energy-delay product (J·s), or `None` when no time elapsed — a
    /// zero-delay EDP of `0.0` would rank as the best possible result
    /// instead of as missing data.
    #[must_use]
    pub fn edp(&self) -> Option<f64> {
        (self.time_s > 0.0).then(|| self.energy_j() * self.time_s)
    }
}

impl EnergyModel {
    /// Evaluates the model for a run of `cycles` CPU cycles retiring
    /// `instructions` with the given DRAM activity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroCycleRun`] when `cycles` is zero: there is
    /// no elapsed time to attribute static energy to.
    pub fn evaluate(
        &self,
        cycles: u64,
        instructions: u64,
        dram: &DramStats,
    ) -> Result<EnergyBreakdown, SimError> {
        if cycles == 0 {
            return Err(SimError::ZeroCycleRun);
        }
        let time_s = cycles as f64 / CPU_HZ;
        let dram_energy_j = dram.activates as f64 * self.energy_per_activate_j
            + dram.reads as f64 * self.energy_per_read_j
            + dram.writes as f64 * self.energy_per_write_j;
        Ok(EnergyBreakdown {
            time_s,
            dram_energy_j,
            core_energy_j: instructions as f64 * self.energy_per_instruction_j,
            static_energy_j: self.static_power_w * time_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(reads: u64, writes: u64, activates: u64) -> DramStats {
        DramStats { reads, writes, activates, ..DramStats::default() }
    }

    #[test]
    fn energy_components_add_up() {
        let m = EnergyModel::default();
        let e = m
            .evaluate(3_200_000, 1_000_000, &activity(1000, 500, 300))
            .unwrap();
        assert!(e.energy_j() > 0.0);
        assert!(
            (e.energy_j() - (e.dram_energy_j + e.core_energy_j + e.static_energy_j)).abs()
                < 1e-15
        );
        // 3.2M cycles at 3.2 GHz = 1 ms.
        assert!((e.time_s - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn same_work_in_less_time_raises_power() {
        // §VII-G: MorphCtr does the same work in a shorter time, so its
        // average power is higher even though its energy is lower.
        let m = EnergyModel::default();
        let slow = m
            .evaluate(4_000_000, 1_000_000, &activity(10_000, 5_000, 5_000))
            .unwrap();
        let fast = m
            .evaluate(3_600_000, 1_000_000, &activity(9_000, 4_500, 4_500))
            .unwrap();
        let (fast_p, slow_p) = (fast.power_w().unwrap(), slow.power_w().unwrap());
        assert!(fast_p > slow_p, "{fast_p} !> {slow_p}");
        assert!(fast.energy_j() < slow.energy_j());
        assert!(fast.edp().unwrap() < slow.edp().unwrap());
    }

    #[test]
    fn more_dram_traffic_costs_more_energy() {
        let m = EnergyModel::default();
        let light = m
            .evaluate(1_000_000, 100_000, &activity(1_000, 500, 200))
            .unwrap();
        let heavy = m
            .evaluate(1_000_000, 100_000, &activity(10_000, 5_000, 2_000))
            .unwrap();
        assert!(heavy.energy_j() > light.energy_j());
        assert_eq!(heavy.core_energy_j, light.core_energy_j);
        assert_eq!(heavy.static_energy_j, light.static_energy_j);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let m = EnergyModel::default();
        let e = m.evaluate(3_200_000, 1, &activity(0, 0, 0)).unwrap();
        assert!((e.edp().unwrap() - e.energy_j() * e.time_s).abs() < 1e-18);
    }

    #[test]
    fn rejects_zero_cycles_with_a_typed_error() {
        // Regression (ISSUE 4 satellite 1): this used to assert!-panic.
        let err = EnergyModel::default()
            .evaluate(0, 0, &DramStats::default())
            .unwrap_err();
        assert_eq!(err, SimError::ZeroCycleRun);
        assert!(err.to_string().contains("zero-cycle"));
    }

    #[test]
    fn zero_time_breakdown_reports_na_not_nan() {
        // Regression (ISSUE 4 satellite 2): power_w/edp used to return
        // inf/NaN when time_s == 0.
        let e = EnergyBreakdown::default();
        assert_eq!(e.power_w(), None);
        assert_eq!(e.edp(), None);
        assert_eq!(e.energy_j(), 0.0);
    }
}
