//! A discrete-event FR-FCFS memory controller — the scheduling model USIMM
//! implements (§VI), built on the same DDR3 bank/bus timing as
//! [`crate::dram`].
//!
//! Where [`crate::dram::DramModel`] services requests in arrival order (fast,
//! and sufficient for the paper's relative results), this controller queues
//! requests per channel and schedules them the way a real memory controller
//! does:
//!
//! - **FR-FCFS**: among ready requests, row-buffer hits go first; ties break
//!   by age. An age cap prevents starvation of row-miss requests.
//! - **Read priority with write draining**: reads are served ahead of
//!   writes; writes buffer in a per-channel write queue and drain in batches
//!   once the queue crosses a high watermark (or opportunistically when no
//!   reads are pending), stopping at a low watermark — USIMM's write-drain
//!   policy.
//!
//! The experiment `ext_scheduler` replays identical request streams through
//! both models; `tests` verify the scheduling properties directly.

use crate::dram::{DramGeometry, DramStats, DramTiming};

/// Identifier of an enqueued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

/// Scheduler parameters (USIMM-style defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Write-queue occupancy that triggers a drain.
    pub drain_high: usize,
    /// Occupancy at which a drain stops.
    pub drain_low: usize,
    /// A request that has waited `max_age` cycles or longer is served
    /// before any younger row-hit (starvation cap, inclusive boundary).
    pub max_age: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { drain_high: 32, drain_low: 16, max_age: 4000 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: RequestId,
    arrival: u64,
    addr: u64,
    is_write: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready: u64,
}

#[derive(Debug, Default)]
struct Channel {
    reads: Vec<Pending>,
    writes: Vec<Pending>,
    draining: bool,
    bus_free: u64,
}

/// The discrete-event memory controller.
#[derive(Debug)]
pub struct MemoryController {
    geometry: DramGeometry,
    timing: DramTiming,
    config: SchedulerConfig,
    channels: Vec<Channel>,
    banks: Vec<Bank>,
    /// Completion cycle per request, indexed by the sequential request id
    /// (`completions[id]`). Ids are issued monotonically from zero, so a
    /// flat `Vec` replaces the hash map the seed used: `enqueue` pushes a
    /// `None` slot and `service` fills it in.
    completions: Vec<Option<u64>>,
    next_id: u64,
    stats: DramStats,
}

impl MemoryController {
    /// Creates a controller over the given memory geometry.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: DramTiming, config: SchedulerConfig) -> Self {
        assert!(config.drain_low < config.drain_high, "watermarks inverted");
        MemoryController {
            geometry,
            timing,
            config,
            channels: (0..geometry.channels).map(|_| Channel::default()).collect(),
            banks: vec![Bank::default(); geometry.total_banks()],
            completions: Vec::new(),
            next_id: 0,
            stats: DramStats::default(),
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Requests currently queued (reads + writes, all channels).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.channels.iter().map(|c| c.reads.len() + c.writes.len()).sum()
    }

    fn map_channel(&self, addr: u64) -> usize {
        crate::dram::DramModel::new(self.geometry, self.timing)
            .map(addr)
            .channel
    }

    /// Enqueues a request arriving at cycle `at`; returns its id (use
    /// [`MemoryController::complete`] to resolve the completion time).
    pub fn enqueue(&mut self, at: u64, addr: u64, is_write: bool) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.completions.push(None);
        let channel = self.map_channel(addr);
        let pending = Pending { id, arrival: at, addr, is_write };
        if is_write {
            self.channels[channel].writes.push(pending);
        } else {
            self.channels[channel].reads.push(pending);
        }
        id
    }

    /// Runs the scheduler until `id` has been serviced and returns its data
    /// completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never enqueued.
    pub fn complete(&mut self, id: RequestId) -> u64 {
        loop {
            if let Some(Some(cycle)) = self.completions.get(id.0 as usize) {
                return *cycle;
            }
            let progressed = self.step();
            assert!(progressed, "request {id:?} was never enqueued");
        }
    }

    /// Drains every queued request; returns when all queues are empty.
    pub fn drain_all(&mut self) {
        while self.step() {}
    }

    /// Schedules one request on one channel (the one that can act
    /// earliest); returns false when all queues are empty.
    fn step(&mut self) -> bool {
        // Pick the channel with work whose bus frees earliest.
        let channel = (0..self.channels.len())
            .filter(|&c| !self.channels[c].reads.is_empty() || !self.channels[c].writes.is_empty())
            .min_by_key(|&c| self.channels[c].bus_free);
        let Some(channel) = channel else { return false };
        self.schedule_on(channel);
        true
    }

    /// FR-FCFS pick among `queue` at decision time `now`: the oldest
    /// over-age request if any, else the oldest row hit, else the oldest.
    fn pick(&self, queue: &[Pending], now: u64) -> usize {
        debug_assert!(!queue.is_empty());
        let dram = crate::dram::DramModel::new(self.geometry, self.timing);
        let mut oldest = 0;
        let mut oldest_hit: Option<usize> = None;
        for (i, p) in queue.iter().enumerate() {
            if p.arrival < queue[oldest].arrival {
                oldest = i;
            }
            let mapped = dram.map(p.addr);
            let bank = &self.banks[mapped.channel * self.geometry.ranks * self.geometry.banks
                + mapped.bank];
            let is_hit = bank.open_row == Some(mapped.row) && bank.ready <= now;
            if is_hit
                && oldest_hit.is_none_or(|h| p.arrival < queue[h].arrival)
            {
                oldest_hit = Some(i);
            }
        }
        // Starvation cap fires the moment the wait *reaches* max_age: the
        // seed's `>` comparison let a request aged exactly `max_age` lose
        // one more arbitration round (ISSUE 4 satellite 4).
        if now.saturating_sub(queue[oldest].arrival) >= self.config.max_age {
            return oldest;
        }
        oldest_hit.unwrap_or(oldest)
    }

    fn schedule_on(&mut self, channel_idx: usize) {
        // Write-drain policy: enter drain mode above the high watermark or
        // when there is nothing else to do; leave it at the low watermark.
        {
            let channel = &mut self.channels[channel_idx];
            if channel.writes.len() >= self.config.drain_high || channel.reads.is_empty() {
                channel.draining = true;
            }
            if channel.writes.len() <= self.config.drain_low && !channel.reads.is_empty() {
                channel.draining = false;
            }
        }
        let channel = &self.channels[channel_idx];
        let serve_write = channel.draining && !channel.writes.is_empty();
        let queue: &[Pending] = if serve_write { &channel.writes } else { &channel.reads };
        let idx = self.pick(queue, channel.bus_free);

        let pending = if serve_write {
            self.channels[channel_idx].writes.swap_remove(idx)
        } else {
            self.channels[channel_idx].reads.swap_remove(idx)
        };
        self.service(channel_idx, pending);
    }

    /// Issues the DRAM commands for one request (same timing algebra as
    /// the analytic model).
    fn service(&mut self, channel_idx: usize, pending: Pending) {
        let dram = crate::dram::DramModel::new(self.geometry, self.timing);
        let mapped = dram.map(pending.addr);
        let bank_idx =
            mapped.channel * self.geometry.ranks * self.geometry.banks + mapped.bank;
        let bank = &mut self.banks[bank_idx];
        let channel = &mut self.channels[channel_idx];

        let start = pending.arrival.max(bank.ready);
        let (latency, hit) = match bank.open_row {
            Some(row) if row == mapped.row => (self.timing.hit_latency(), true),
            Some(_) => (self.timing.miss_latency(), false),
            None => (self.timing.t_rcd + self.timing.t_cas, false),
        };
        bank.open_row = Some(mapped.row);
        // The data bus is held only for the burst (bank latencies overlap).
        let data_start = (start + latency).max(channel.bus_free);
        let completion = data_start + self.timing.t_burst;
        channel.bus_free = completion;
        bank.ready = if pending.is_write {
            completion + self.timing.t_wr
        } else {
            data_start
        };

        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.activates += 1;
        }
        self.stats
            .queue_delay
            .record(start.saturating_sub(pending.arrival));
        if pending.is_write {
            self.stats.writes += 1;
            self.stats
                .write_latency
                .record(completion - pending.arrival);
        } else {
            self.stats.reads += 1;
            self.stats.read_latency.record(completion - pending.arrival);
        }
        self.completions[pending.id.0 as usize] = Some(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> MemoryController {
        // Disable refresh to isolate scheduling effects.
        let timing = DramTiming { t_refi: 0, ..DramTiming::default() };
        MemoryController::new(DramGeometry::default(), timing, SchedulerConfig::default())
    }

    /// Addresses that map to the same channel+bank but different rows.
    fn same_bank_row(row: u64) -> u64 {
        let g = DramGeometry::default();
        row * 64 * g.lines_per_row * (g.channels * g.ranks * g.banks) as u64
    }

    #[test]
    fn fr_fcfs_serves_row_hits_before_older_misses() {
        let mut c = controller();
        // Open row 0 with a first request.
        let warm = c.enqueue(0, same_bank_row(0), false);
        c.complete(warm);
        // An older row-miss and a younger row-hit, both pending.
        let miss = c.enqueue(10, same_bank_row(5), false);
        let hit = c.enqueue(20, same_bank_row(0) + 64, false);
        c.drain_all();
        assert!(
            c.complete(hit) < c.complete(miss),
            "hit {} should finish before miss {}",
            c.complete(hit),
            c.complete(miss)
        );
    }

    #[test]
    fn starvation_cap_eventually_serves_the_miss() {
        let mut c = controller();
        let warm = c.enqueue(0, same_bank_row(0), false);
        c.complete(warm);
        let miss = c.enqueue(1, same_bank_row(9), false);
        // A stream of row hits that would starve the miss forever without
        // the age cap.
        let mut last_hit = 0;
        for i in 0..600u64 {
            let id = c.enqueue(2 + i, same_bank_row(0) + 64 * (i % 128), false);
            last_hit = c.complete(id).max(last_hit);
        }
        let miss_done = c.complete(miss);
        assert!(
            miss_done < last_hit,
            "the capped miss ({miss_done}) must overtake the hit stream ({last_hit})"
        );
    }

    #[test]
    fn writes_wait_for_the_drain_watermark() {
        let mut c = controller();
        // Queue reads to keep the channel busy and some writes below the
        // high watermark: while reads exist, writes wait.
        for i in 0..8u64 {
            c.enqueue(0, same_bank_row(0) + 64 * i, false);
        }
        for i in 0..4u64 {
            c.enqueue(0, same_bank_row(3) + 64 * i, true);
        }
        // Serve 8 requests (one per step): all must be the reads.
        for _ in 0..8 {
            assert!(c.step());
        }
        assert_eq!(c.stats().reads, 8, "reads go first");
        assert_eq!(c.stats().writes, 0, "writes still buffered");
        // With no reads left, the drain happens opportunistically.
        c.drain_all();
        assert_eq!(c.stats().writes, 4);
    }

    #[test]
    fn high_watermark_forces_a_drain_despite_pending_reads() {
        let cfg = SchedulerConfig { drain_high: 4, drain_low: 1, max_age: 1_000_000 };
        let timing = DramTiming { t_refi: 0, ..DramTiming::default() };
        let mut c = MemoryController::new(DramGeometry::default(), timing, cfg);
        for i in 0..4u64 {
            c.enqueue(0, same_bank_row(3) + 64 * i, true);
        }
        c.enqueue(0, same_bank_row(0), false);
        // First scheduling decision: the write queue is at the high
        // watermark, so writes drain ahead of the read.
        assert!(c.step());
        assert_eq!(c.stats().writes, 1);
        // Drain continues to the low watermark before reads resume.
        assert!(c.step());
        assert!(c.step());
        assert_eq!(c.stats().writes, 3);
        assert!(c.step());
        assert_eq!(c.stats().reads, 1, "reads resume at the low watermark");
    }

    #[test]
    fn reordering_beats_arrival_order_on_interleaved_rows() {
        // Alternate rows A/B/A/B...: arrival order thrashes the row buffer;
        // FR-FCFS groups the hits.
        let mut queue_model = controller();
        let mut ids = Vec::new();
        for i in 0..32u64 {
            let row = i % 2;
            ids.push(queue_model.enqueue(0, same_bank_row(row) + 64 * (i / 2), false));
        }
        queue_model.drain_all();
        let queue_finish = ids.iter().map(|&id| queue_model.complete(id)).max().unwrap();

        let mut arrival_model = crate::dram::DramModel::new(
            DramGeometry::default(),
            DramTiming { t_refi: 0, ..DramTiming::default() },
        );
        let mut arrival_finish = 0;
        for i in 0..32u64 {
            let row = i % 2;
            arrival_finish =
                arrival_finish.max(arrival_model.request(0, same_bank_row(row) + 64 * (i / 2), false));
        }
        assert!(
            queue_finish < arrival_finish,
            "FR-FCFS {queue_finish} must beat arrival order {arrival_finish}"
        );
        // And the scheduler achieved a higher row-hit rate.
        assert!(
            queue_model.stats().row_hit_rate().unwrap()
                > arrival_model.stats().row_hit_rate().unwrap()
        );
    }

    #[test]
    fn starvation_cap_fires_at_exactly_max_age() {
        // Regression (ISSUE 4 satellite 4): with the seed's exclusive `>`
        // check, a request aged exactly `max_age` at decision time still
        // lost to a younger row hit. The boundary is inclusive.
        let timing = DramTiming { t_refi: 0, ..DramTiming::default() };
        let cfg = SchedulerConfig { max_age: 100, ..SchedulerConfig::default() };
        let mut c = MemoryController::new(DramGeometry::default(), timing, cfg);
        // Open row 0; afterwards bus_free == the warm request's completion,
        // which is the `now` used by the next scheduling decision.
        let warm = c.enqueue(0, same_bank_row(0), false);
        let now = c.complete(warm);
        assert!(now > cfg.max_age, "warm-up must outlast the cap");
        // A row-miss aged EXACTLY max_age at decision time, and a younger
        // row-hit. Inclusive cap ⇒ the miss is picked first.
        let miss = c.enqueue(now - cfg.max_age, same_bank_row(7), false);
        let hit = c.enqueue(now - 1, same_bank_row(0) + 64, false);
        c.drain_all();
        assert!(
            c.complete(miss) < c.complete(hit),
            "a request aged exactly max_age must win: miss {} vs hit {}",
            c.complete(miss),
            c.complete(hit)
        );
    }

    #[test]
    fn starvation_cap_does_not_fire_below_max_age() {
        // The complement boundary: one cycle under max_age, FR-FCFS still
        // prefers the row hit.
        let timing = DramTiming { t_refi: 0, ..DramTiming::default() };
        let cfg = SchedulerConfig { max_age: 100, ..SchedulerConfig::default() };
        let mut c = MemoryController::new(DramGeometry::default(), timing, cfg);
        let warm = c.enqueue(0, same_bank_row(0), false);
        let now = c.complete(warm);
        let miss = c.enqueue(now - (cfg.max_age - 1), same_bank_row(7), false);
        let hit = c.enqueue(now - 1, same_bank_row(0) + 64, false);
        c.drain_all();
        assert!(
            c.complete(hit) < c.complete(miss),
            "below the cap the row hit still wins: hit {} vs miss {}",
            c.complete(hit),
            c.complete(miss)
        );
    }

    #[test]
    fn complete_is_idempotent() {
        let mut c = controller();
        let id = c.enqueue(5, 0, false);
        let t1 = c.complete(id);
        let t2 = c.complete(id);
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "never enqueued")]
    fn unknown_request_panics() {
        let mut c = controller();
        let _ = c.complete(RequestId(99));
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn rejects_inverted_watermarks() {
        let cfg = SchedulerConfig { drain_high: 4, drain_low: 8, max_age: 100 };
        let _ = MemoryController::new(DramGeometry::default(), DramTiming::default(), cfg);
    }
}
