//! Checkpoint format for simulation results: a versioned, checksummed
//! binary encoding of [`SimResult`] batches, so interrupted sweeps can
//! resume without re-simulating and render byte-identical figures.
//!
//! Layout: `b"MTSR"` magic, `u32` version, payload, trailing FNV-1a-64
//! checksum of the payload. The payload is a fingerprint string (the
//! caller's encoding of the operating point — resuming under different
//! flags must be refused, not silently blended) followed by the result
//! records. Individual results are serialized field-exactly with
//! [`write_result`]/[`read_result`], reusing the core persistence codec
//! and its typed [`RecoveryError`] taxonomy: every malformed input maps
//! to an error, never a panic.

use morphtree_core::persist::codec::{fnv1a, ByteReader, ByteWriter};
use morphtree_core::persist::engine::{
    read_cache_stats, read_histogram, read_stats, write_cache_stats, write_histogram,
    write_stats,
};
use morphtree_core::persist::RecoveryError;

use crate::dram::DramStats;
use crate::energy::EnergyBreakdown;
use crate::system::SimResult;

/// Result-checkpoint magic (`MTSR` = MorphTree Sim Results).
pub const RESULT_MAGIC: [u8; 4] = *b"MTSR";

/// Result-checkpoint format version.
pub const RESULT_VERSION: u32 = 1;

/// Upper bound on results per checkpoint: a full paper sweep is a few
/// hundred runs, so anything beyond this is a corrupt count field, not a
/// workload — reject it before allocating.
const MAX_RESULTS: usize = 1 << 16;

/// Serializes one [`SimResult`] field-exactly into `w` (embeddable inside
/// a larger checkpoint payload).
pub fn write_result(w: &mut ByteWriter, result: &SimResult) {
    w.str(&result.workload);
    w.str(&result.config);
    w.u64(result.instructions);
    w.u64(result.cycles);
    write_stats(w, &result.engine);
    write_cache_stats(w, &result.cache);
    w.u64(result.dram.reads);
    w.u64(result.dram.writes);
    w.u64(result.dram.activates);
    w.u64(result.dram.row_hits);
    w.u64(result.dram.refresh_conflicts);
    write_histogram(w, &result.dram.read_latency);
    write_histogram(w, &result.dram.write_latency);
    write_histogram(w, &result.dram.queue_delay);
    w.f64(result.energy.time_s);
    w.f64(result.energy.dram_energy_j);
    w.f64(result.energy.core_energy_j);
    w.f64(result.energy.static_energy_j);
}

/// Reads back a [`write_result`] payload.
///
/// # Errors
///
/// Returns a [`RecoveryError`] on truncation or malformed embedded
/// statistics.
pub fn read_result(r: &mut ByteReader<'_>) -> Result<SimResult, RecoveryError> {
    let workload = r.str()?.to_owned();
    let config = r.str()?.to_owned();
    let instructions = r.u64()?;
    let cycles = r.u64()?;
    let engine = read_stats(r)?;
    let cache = read_cache_stats(r)?;
    let dram = DramStats {
        reads: r.u64()?,
        writes: r.u64()?,
        activates: r.u64()?,
        row_hits: r.u64()?,
        refresh_conflicts: r.u64()?,
        read_latency: read_histogram(r)?,
        write_latency: read_histogram(r)?,
        queue_delay: read_histogram(r)?,
    };
    let energy = EnergyBreakdown {
        time_s: r.f64()?,
        dram_energy_j: r.f64()?,
        core_energy_j: r.f64()?,
        static_energy_j: r.f64()?,
    };
    Ok(SimResult { workload, config, instructions, cycles, engine, cache, dram, energy })
}

/// Serializes a batch of results under an operating-point fingerprint.
#[must_use]
pub fn save_results(fingerprint: &str, results: &[SimResult]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(fingerprint);
    w.u32(results.len() as u32);
    for result in results {
        write_result(&mut w, result);
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&RESULT_MAGIC);
    out.extend_from_slice(&RESULT_VERSION.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

/// Loads a [`save_results`] checkpoint, returning the fingerprint and the
/// result batch.
///
/// # Errors
///
/// Returns a [`RecoveryError`] on bad magic/version, truncation, checksum
/// mismatch, a corrupt count, or trailing garbage.
pub fn load_results(bytes: &[u8]) -> Result<(String, Vec<SimResult>), RecoveryError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(|_| RecoveryError::BadMagic)? != RESULT_MAGIC {
        return Err(RecoveryError::BadMagic);
    }
    let version = r.u32()?;
    if version != RESULT_VERSION {
        return Err(RecoveryError::UnsupportedVersion { version });
    }
    let remaining = r.remaining();
    if remaining < 8 {
        return Err(RecoveryError::Truncated { offset: r.offset() });
    }
    let payload = r.bytes(remaining - 8)?;
    let stored = u64::from_le_bytes(
        r.bytes(8)?.try_into().map_err(|_| RecoveryError::BadMagic)?,
    );
    if fnv1a(payload) != stored {
        return Err(RecoveryError::ChecksumMismatch { section: 0 });
    }
    let mut p = ByteReader::new(payload);
    let fingerprint = p.str()?.to_owned();
    let offset = p.offset();
    let count = p.u32()? as usize;
    if count > MAX_RESULTS {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }
    let mut results = Vec::with_capacity(count);
    for _ in 0..count {
        results.push(read_result(&mut p)?);
    }
    if !p.is_exhausted() {
        return Err(RecoveryError::CorruptSnapshot { offset: p.offset() });
    }
    Ok((fingerprint, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{simulate, simulate_nonsecure, SimConfig};
    use morphtree_core::tree::TreeConfig;
    use morphtree_trace::catalog::Benchmark;
    use morphtree_trace::workload::SystemWorkload;

    fn quick_results() -> Vec<SimResult> {
        let cfg = SimConfig {
            cores: 2,
            memory_bytes: 1 << 28,
            metadata_cache_bytes: 8 * 1024,
            warmup_instructions: 30_000,
            measure_instructions: 30_000,
            ..SimConfig::default()
        };
        let bench = Benchmark::by_name("libquantum").unwrap();
        let mut w = SystemWorkload::rate(bench, cfg.cores, cfg.memory_bytes, 5);
        let base = simulate_nonsecure(&mut w, &cfg);
        let mut w = SystemWorkload::rate(bench, cfg.cores, cfg.memory_bytes, 5);
        let secure = simulate(&mut w, TreeConfig::morphtree(), &cfg);
        vec![base, secure]
    }

    #[test]
    fn results_round_trip_byte_exactly() {
        let results = quick_results();
        let bytes = save_results("scale=64 seed=5", &results);
        let (fingerprint, restored) = load_results(&bytes).unwrap();
        assert_eq!(fingerprint, "scale=64 seed=5");
        assert_eq!(restored, results);
        // Serialization is a pure function of the results: re-saving the
        // restored batch reproduces the checkpoint bit for bit.
        assert_eq!(save_results(&fingerprint, &restored), bytes);
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors_never_panics() {
        let results = quick_results();
        let bytes = save_results("fp", &results);

        assert_eq!(load_results(b"MTEN").unwrap_err(), RecoveryError::BadMagic);
        let mut wrong = bytes.clone();
        wrong[4] = 99;
        assert_eq!(
            load_results(&wrong).unwrap_err(),
            RecoveryError::UnsupportedVersion { version: 99 }
        );
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(
            matches!(
                load_results(&flipped).unwrap_err(),
                RecoveryError::ChecksumMismatch { .. }
            ),
            "payload corruption must fail the checksum"
        );
        for cut in 0..bytes.len().min(64) {
            let err = load_results(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    RecoveryError::BadMagic
                        | RecoveryError::Truncated { .. }
                        | RecoveryError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }
}
