//! Out-of-order core model (Table I: 4-wide fetch/retire, 192-entry ROB,
//! 3.2 GHz).
//!
//! The model captures the two ways memory latency throttles a core:
//!
//! 1. **Fetch bandwidth**: instructions are fetched/retired at most
//!    `width` per cycle, so `gap` non-memory instructions cost
//!    `gap / width` cycles.
//! 2. **ROB occupancy**: a load occupies a ROB entry until its data
//!    returns; when the ROB is full of instructions younger than an
//!    outstanding load, fetch stalls until that load completes. Memory
//!    writes retire immediately (posted through the write buffer), as in
//!    USIMM.
//!
//! Independent loads overlap freely within the ROB window, so memory-level
//! parallelism is bounded by `rob_size`, exactly as in the paper's setup.

use std::collections::VecDeque;

/// One core's architectural timing state.
#[derive(Debug, Clone)]
pub struct CoreModel {
    width: u64,
    rob_size: u64,
    /// Fetch progress in fractional cycles (instructions / width).
    fetch_cycle: f64,
    /// Instructions fetched so far.
    instructions: u64,
    /// Outstanding loads: (instruction number, completion cycle), in fetch
    /// order.
    inflight: VecDeque<(u64, u64)>,
    /// Latest completion among retired loads (lower bound on finish time).
    last_completion: u64,
}

impl CoreModel {
    /// Creates a core with the given fetch/retire width and ROB capacity.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `rob_size` is zero.
    #[must_use]
    pub fn new(width: u64, rob_size: u64) -> Self {
        assert!(width > 0 && rob_size > 0);
        CoreModel {
            width,
            rob_size,
            fetch_cycle: 0.0,
            instructions: 0,
            inflight: VecDeque::new(),
            last_completion: 0,
        }
    }

    /// A Table I core: 4-wide, 192-entry ROB.
    #[must_use]
    pub fn table1() -> Self {
        CoreModel::new(4, 192)
    }

    /// Instructions fetched so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Current fetch cycle — the cycle at which the *next* instruction will
    /// be fetched (before any ROB stall).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.fetch_cycle as u64
    }

    /// Advances over `gap` non-memory instructions plus one memory
    /// instruction, applying the ROB-occupancy stall, and returns the cycle
    /// at which the memory instruction issues to the memory system.
    pub fn advance_to_mem_op(&mut self, gap: u32) -> u64 {
        self.instructions += u64::from(gap) + 1;
        self.fetch_cycle += (u64::from(gap) + 1) as f64 / self.width as f64;

        // ROB constraint: with the oldest incomplete load at `instr_no`,
        // the ROB holds `instructions - instr_no + 1` entries; fetching
        // beyond `rob_size` of them stalls until that load retires.
        while let Some(&(instr_no, completion)) = self.inflight.front() {
            if self.instructions >= instr_no + self.rob_size {
                // That load must have retired before this fetch: stall.
                if (completion as f64) > self.fetch_cycle {
                    self.fetch_cycle = completion as f64;
                }
                self.last_completion = self.last_completion.max(completion);
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        self.fetch_cycle as u64
    }

    /// Registers a load issued by [`CoreModel::advance_to_mem_op`] that will
    /// complete at `completion`.
    pub fn record_load(&mut self, completion: u64) {
        self.inflight.push_back((self.instructions, completion));
    }

    /// The cycle at which everything fetched so far has retired.
    #[must_use]
    pub fn finish_cycle(&self) -> u64 {
        let pending = self
            .inflight
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0);
        (self.fetch_cycle.ceil() as u64)
            .max(pending)
            .max(self.last_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_memory_instructions_run_at_full_width() {
        let mut core = CoreModel::new(4, 192);
        let issue = core.advance_to_mem_op(399); // 400 instrs @ width 4
        assert_eq!(issue, 100);
        assert_eq!(core.instructions(), 400);
    }

    #[test]
    fn independent_loads_overlap_within_the_rob() {
        let mut core = CoreModel::new(4, 192);
        // Two loads 4 instructions apart, each 200 cycles: they overlap.
        let i1 = core.advance_to_mem_op(3);
        core.record_load(i1 + 200);
        let i2 = core.advance_to_mem_op(3);
        core.record_load(i2 + 200);
        assert_eq!(i2, 2, "no stall for the second load");
        assert!(core.finish_cycle() <= i1 + 201 + 1);
    }

    #[test]
    fn rob_full_stalls_fetch() {
        let mut core = CoreModel::new(4, 8); // tiny ROB
        let i1 = core.advance_to_mem_op(0);
        core.record_load(i1 + 1000);
        // 8 more instructions exceed the ROB while the load is outstanding.
        let issue = core.advance_to_mem_op(7);
        assert!(issue >= 1000, "fetch stalled until the load returned: {issue}");
    }

    #[test]
    fn memory_latency_bounds_throughput_with_dependent_loads() {
        // A pointer chase: each load completes before the next fetch can
        // pass the ROB limit.
        let mut core = CoreModel::new(4, 4);
        for _ in 0..10 {
            let issue = core.advance_to_mem_op(3);
            core.record_load(issue + 300);
        }
        assert!(core.finish_cycle() >= 9 * 300, "latency-bound chain");
    }

    #[test]
    fn finish_cycle_includes_outstanding_loads() {
        let mut core = CoreModel::new(4, 192);
        let issue = core.advance_to_mem_op(0);
        core.record_load(issue + 500);
        assert!(core.finish_cycle() >= issue + 500);
    }

    #[test]
    fn ipc_reaches_width_without_memory() {
        let mut core = CoreModel::new(4, 192);
        for _ in 0..100 {
            let issue = core.advance_to_mem_op(999);
            core.record_load(issue); // zero-latency memory
        }
        let ipc = core.instructions() as f64 / core.finish_cycle() as f64;
        assert!((ipc - 4.0).abs() < 0.1, "ipc {ipc}");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_width() {
        let _ = CoreModel::new(0, 192);
    }
}
