//! Snapshot format for the metadata (timing) engine: counter lines, exact
//! cache residency — tags, dirty bits, LRU ticks — and statistics.
//!
//! The acceptance bar is *lockstep continuation*: an engine restored from
//! a snapshot must emit the same access stream, access for access, as the
//! original engine continuing uninterrupted. That requires more than the
//! architectural state — LRU victim selection depends on the per-way tick
//! values and the global tick counter, so both are serialized verbatim.
//!
//! Layout mirrors the memory snapshot (`b"MTEN"` magic + version +
//! checksummed sections); see [`crate::persist`] for the framing.

use crate::counters::CounterLine;
use crate::metadata::stats::USED_FRACTION_BINS;
use crate::metadata::{
    CacheStats, EngineOptions, EngineStats, MacMode, MetadataEngine, ReplacementPolicy,
    VerificationMode,
};
use crate::obs::{Histogram, NUM_BUCKETS};

use super::codec::{ByteReader, ByteWriter};
use super::{
    read_config, read_section, write_config, write_section, RecoveryError, SEC_CONFIG,
};

/// Engine snapshot magic (`MTEN` = MorphTree ENgine).
pub const ENGINE_MAGIC: [u8; 4] = *b"MTEN";

const SEC_OPTIONS: u32 = 2;
const SEC_LEVELS: u32 = 5;
const SEC_CACHE: u32 = 6;
const SEC_STATS: u32 = 7;

/// Serializes a [`Histogram`] field-exactly (buckets, count, 128-bit sum,
/// min/max sentinels), for embedding inside a larger snapshot payload.
pub fn write_histogram(w: &mut ByteWriter, histogram: &Histogram) {
    let (buckets, count, sum, min, max) = histogram.export_parts();
    for &v in &buckets {
        w.u64(v);
    }
    w.u64(count);
    w.u64(sum as u64);
    w.u64((sum >> 64) as u64);
    w.u64(min);
    w.u64(max);
}

/// Reads back a [`write_histogram`] payload.
///
/// # Errors
///
/// Returns [`RecoveryError::Truncated`] if the reader runs out of bytes.
pub fn read_histogram(r: &mut ByteReader<'_>) -> Result<Histogram, RecoveryError> {
    let buckets = read_u64_array::<NUM_BUCKETS>(r)?;
    let count = r.u64()?;
    let sum = u128::from(r.u64()?) | (u128::from(r.u64()?) << 64);
    let min = r.u64()?;
    let max = r.u64()?;
    Ok(Histogram::from_parts(buckets, count, sum, min, max))
}

/// Serializes an [`EngineStats`] field-exactly, for embedding inside a
/// larger snapshot payload (the engine snapshot's STATS section, and the
/// simulator's result checkpoints).
pub fn write_stats(w: &mut ByteWriter, stats: &EngineStats) {
    w.u64(stats.data_reads);
    w.u64(stats.data_writes);
    for &v in &stats.reads {
        w.u64(v);
    }
    for &v in &stats.writes {
        w.u64(v);
    }
    w.u32(stats.overflows_by_level.len() as u32);
    for &v in &stats.overflows_by_level {
        w.u64(v);
    }
    w.u32(stats.rebases_by_level.len() as u32);
    for &v in &stats.rebases_by_level {
        w.u64(v);
    }
    for &v in &stats.overflow_used_histogram {
        w.u64(v);
    }
    for &v in &stats.overflow_used_histogram_enc {
        w.u64(v);
    }
    for &v in &stats.overflow_kinds {
        w.u64(v);
    }
    write_histogram(w, &stats.fetch_depths);
    w.u64(stats.otp_ops);
    w.u64(stats.mac_ops);
    w.u64(stats.mac_batches);
}

fn read_u64_array<const N: usize>(r: &mut ByteReader<'_>) -> Result<[u64; N], RecoveryError> {
    let mut out = [0u64; N];
    for v in &mut out {
        *v = r.u64()?;
    }
    Ok(out)
}

fn read_u64_vec(r: &mut ByteReader<'_>) -> Result<Vec<u64>, RecoveryError> {
    let offset = r.offset();
    let n = r.u32()? as usize;
    // Per-level vectors: a tree deeper than 64 levels cannot exist.
    if n > 64 {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }
    (0..n).map(|_| r.u64().map_err(RecoveryError::from)).collect()
}

/// Reads back a [`write_stats`] payload.
///
/// # Errors
///
/// Returns a [`RecoveryError`] on truncation or an implausible per-level
/// vector length.
pub fn read_stats(r: &mut ByteReader<'_>) -> Result<EngineStats, RecoveryError> {
    let data_reads = r.u64()?;
    let data_writes = r.u64()?;
    let reads = read_u64_array::<7>(r)?;
    let writes = read_u64_array::<7>(r)?;
    let overflows_by_level = read_u64_vec(r)?;
    let rebases_by_level = read_u64_vec(r)?;
    let overflow_used_histogram = read_u64_array::<USED_FRACTION_BINS>(r)?;
    let overflow_used_histogram_enc = read_u64_array::<USED_FRACTION_BINS>(r)?;
    let overflow_kinds = read_u64_array::<5>(r)?;
    let fetch_depths = read_histogram(r)?;
    let otp_ops = r.u64()?;
    let mac_ops = r.u64()?;
    let mac_batches = r.u64()?;
    Ok(EngineStats {
        data_reads,
        data_writes,
        reads,
        writes,
        overflows_by_level,
        rebases_by_level,
        overflow_used_histogram,
        overflow_used_histogram_enc,
        overflow_kinds,
        fetch_depths,
        otp_ops,
        mac_ops,
        mac_batches,
    })
}

/// Serializes a [`CacheStats`] field-exactly, for embedding inside a
/// larger snapshot payload.
pub fn write_cache_stats(w: &mut ByteWriter, stats: &CacheStats) {
    w.u64(stats.hits);
    w.u64(stats.misses);
    for &v in &stats.level_hits {
        w.u64(v);
    }
    for &v in &stats.level_misses {
        w.u64(v);
    }
    for &v in &stats.level_evicts {
        w.u64(v);
    }
}

/// Reads back a [`write_cache_stats`] payload.
///
/// # Errors
///
/// Returns [`RecoveryError::Truncated`] if the reader runs out of bytes.
pub fn read_cache_stats(r: &mut ByteReader<'_>) -> Result<CacheStats, RecoveryError> {
    let mut stats = CacheStats {
        hits: r.u64()?,
        misses: r.u64()?,
        ..CacheStats::default()
    };
    for v in &mut stats.level_hits {
        *v = r.u64()?;
    }
    for v in &mut stats.level_misses {
        *v = r.u64()?;
    }
    for v in &mut stats.level_evicts {
        *v = r.u64()?;
    }
    Ok(stats)
}

/// Serializes the complete state of a [`MetadataEngine`].
#[must_use]
pub fn save_engine(engine: &MetadataEngine) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ENGINE_MAGIC);
    out.extend_from_slice(&super::VERSION.to_le_bytes());

    let mut w = ByteWriter::new();
    write_config(&mut w, engine.config());
    write_section(&mut out, SEC_CONFIG, &w.into_bytes());

    let cache = engine.cache();
    let mut w = ByteWriter::new();
    w.u64(engine.geometry().memory_bytes());
    w.u64(cache.capacity_bytes() as u64);
    w.u8(match engine.mac_mode() {
        MacMode::Inline => 0,
        MacMode::Separate => 1,
    });
    w.u8(match engine.verification() {
        VerificationMode::Strict => 0,
        VerificationMode::Speculative => 1,
    });
    w.u8(match cache.policy() {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::LevelAware => 1,
    });
    write_section(&mut out, SEC_OPTIONS, &w.into_bytes());

    let mut w = ByteWriter::new();
    w.u32(engine.level_stores().len() as u32);
    for store in engine.level_stores() {
        w.u64(store.len());
        for (line_idx, line) in store.iter() {
            w.u64(line_idx);
            w.bytes(&line.encode());
        }
    }
    write_section(&mut out, SEC_LEVELS, &w.into_bytes());

    let mut w = ByteWriter::new();
    let (tick, entries) = cache.export_entries();
    w.u64(tick);
    w.u64(entries.len() as u64);
    for (tag, way_tick, dirty, priority) in entries {
        w.u64(tag);
        w.u64(way_tick);
        w.bool(dirty);
        w.u8(priority);
    }
    write_cache_stats(&mut w, cache.stats());
    write_section(&mut out, SEC_CACHE, &w.into_bytes());

    let mut w = ByteWriter::new();
    write_stats(&mut w, engine.stats());
    write_section(&mut out, SEC_STATS, &w.into_bytes());

    out
}

/// Deserializes a [`save_engine`] snapshot into an engine that continues
/// access-for-access identically to the one that was saved.
///
/// # Errors
///
/// Returns a [`RecoveryError`] on bad magic/version, truncation, checksum
/// mismatch, structural corruption, out-of-range line indices, or counter
/// images that fail to decode.
pub fn load_engine(bytes: &[u8]) -> Result<MetadataEngine, RecoveryError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(|_| RecoveryError::BadMagic)? != ENGINE_MAGIC {
        return Err(RecoveryError::BadMagic);
    }
    let version = r.u32()?;
    if version != super::VERSION {
        return Err(RecoveryError::UnsupportedVersion { version });
    }

    let mut sec = read_section(&mut r, SEC_CONFIG)?;
    let config = read_config(&mut sec)?;
    super::expect_exhausted(&sec)?;

    let mut sec = read_section(&mut r, SEC_OPTIONS)?;
    let offset = sec.offset();
    let memory_bytes = sec.u64()?;
    let cache_bytes = sec.u64()?;
    let mac_mode = match sec.u8()? {
        0 => MacMode::Inline,
        1 => MacMode::Separate,
        _ => return Err(RecoveryError::CorruptSnapshot { offset }),
    };
    let verification = match sec.u8()? {
        0 => VerificationMode::Strict,
        1 => VerificationMode::Speculative,
        _ => return Err(RecoveryError::CorruptSnapshot { offset }),
    };
    let replacement = match sec.u8()? {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::LevelAware,
        _ => return Err(RecoveryError::CorruptSnapshot { offset }),
    };
    super::expect_exhausted(&sec)?;
    if memory_bytes == 0
        || memory_bytes % crate::CACHELINE_BYTES as u64 != 0
        || memory_bytes > super::MAX_MEMORY_BYTES
    {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }
    let cache_bytes = usize::try_from(cache_bytes)
        .map_err(|_| RecoveryError::CorruptSnapshot { offset })?;
    // The engine constructs an 8-way cache; reject shapes its constructor
    // would panic on, and bound the allocation.
    let line = crate::CACHELINE_BYTES;
    if cache_bytes == 0 || cache_bytes % (8 * line) != 0 || cache_bytes > (1 << 30) {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }

    let mut engine = MetadataEngine::with_options(
        config,
        memory_bytes,
        cache_bytes,
        EngineOptions { mac_mode, verification, replacement },
    );

    let mut sec = read_section(&mut r, SEC_LEVELS)?;
    let levels_offset = sec.offset();
    let n_levels = sec.u32()? as usize;
    if n_levels != engine.geometry().levels().len() {
        return Err(RecoveryError::CorruptSnapshot { offset: levels_offset });
    }
    for level in 0..n_levels {
        let count = sec.u64()?;
        let level_lines = engine.geometry().levels()[level].lines;
        for _ in 0..count {
            let line_idx = sec.u64()?;
            let image = sec.line()?;
            if line_idx >= level_lines {
                return Err(RecoveryError::CounterLineOutOfRange { level, line_idx });
            }
            engine
                .restore_line(level, line_idx, &image)
                .map_err(RecoveryError::MalformedLine)?;
        }
    }
    super::expect_exhausted(&sec)?;

    let mut sec = read_section(&mut r, SEC_CACHE)?;
    let cache_offset = sec.offset();
    let tick = sec.u64()?;
    let n_entries = sec.u64()?;
    let expected = cache_bytes / line;
    if n_entries != expected as u64 {
        return Err(RecoveryError::CorruptSnapshot { offset: cache_offset });
    }
    let mut entries = Vec::with_capacity(expected);
    for _ in 0..expected {
        let tag = sec.u64()?;
        let way_tick = sec.u64()?;
        let dirty = sec.bool()?;
        let priority = sec.u8()?;
        entries.push((tag, way_tick, dirty, priority));
    }
    if !engine.cache_mut().import_entries(tick, &entries) {
        return Err(RecoveryError::CorruptSnapshot { offset: cache_offset });
    }
    engine.cache_mut().set_stats(read_cache_stats(&mut sec)?);
    super::expect_exhausted(&sec)?;

    let mut sec = read_section(&mut r, SEC_STATS)?;
    let stats = read_stats(&mut sec)?;
    super::expect_exhausted(&sec)?;
    engine.set_stats(stats);

    super::expect_exhausted(&r)?;
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::ReferenceEngine;
    use crate::tree::TreeConfig;

    const MIB: u64 = 1 << 20;

    fn drive(engine: &mut MetadataEngine, rounds: std::ops::Range<u64>) -> Vec<crate::metadata::MemAccess> {
        let mut out = Vec::new();
        for i in rounds {
            let addr = (i * 67 + 13) % 2000 * 64;
            if i % 3 == 0 {
                engine.write(addr, &mut out);
            } else {
                engine.read(addr, &mut out);
            }
        }
        out
    }

    #[test]
    fn restored_engine_continues_in_lockstep() {
        let mut original = MetadataEngine::with_options(
            TreeConfig::morphtree(),
            64 * MIB,
            4096,
            EngineOptions::default(),
        );
        let _ = drive(&mut original, 0..500);
        let snap = save_engine(&original);
        let mut restored = load_engine(&snap).unwrap();

        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.cache().stats(), original.cache().stats());
        assert_eq!(restored.cache().occupancy(), original.cache().occupancy());

        // The continuation is access-for-access identical, so the restored
        // engine is indistinguishable from one that never stopped.
        let stream_a = drive(&mut original, 500..1000);
        let stream_b = drive(&mut restored, 500..1000);
        assert_eq!(stream_a, stream_b);
        assert_eq!(restored.stats(), original.stats());

        // And both still agree with the frozen oracle driven end-to-end.
        let mut oracle = ReferenceEngine::new(
            TreeConfig::morphtree(),
            64 * MIB,
            4096,
            MacMode::Inline,
        );
        let mut oracle_stream = Vec::new();
        for i in 0..1000u64 {
            let addr = (i * 67 + 13) % 2000 * 64;
            if i % 3 == 0 {
                oracle.write(addr, &mut oracle_stream);
            } else {
                oracle.read(addr, &mut oracle_stream);
            }
        }
        assert_eq!(restored.stats(), oracle.stats());
    }

    #[test]
    fn engine_snapshot_is_deterministic_and_errors_are_typed() {
        let mut engine = MetadataEngine::with_options(
            TreeConfig::sc64(),
            16 * MIB,
            4096,
            EngineOptions {
                mac_mode: MacMode::Separate,
                verification: VerificationMode::Speculative,
                replacement: ReplacementPolicy::LevelAware,
            },
        );
        let _ = drive(&mut engine, 0..200);
        let snap = save_engine(&engine);
        let restored = load_engine(&snap).unwrap();
        assert_eq!(save_engine(&restored), snap);

        assert_eq!(load_engine(b"MTSN").unwrap_err(), RecoveryError::BadMagic);
        for cut in 0..snap.len() {
            let err = load_engine(&snap[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    RecoveryError::BadMagic
                        | RecoveryError::Truncated { .. }
                        | RecoveryError::CorruptSnapshot { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }
}
