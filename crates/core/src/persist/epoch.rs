//! Epoch-bounded persistence: seal records, bounded recovery, and the
//! degraded (quarantine) serving mode for sharded memories.
//!
//! # Why epochs
//!
//! The base [`recover`](super::recover) path replays *every* committed WAL
//! transaction and then re-verifies the *entire* tree bottom-up, so its
//! cost grows with history length and memory size. Epoch-based lazy
//! persistence (Phoenix; Freij et al.'s coalesced integrity-tree updates)
//! bounds both: mutations accumulate in a bounded epoch as a coalesced
//! dirty-line delta, and an [`EpochSeal`] record durably pins the tree
//! root at each epoch boundary. Recovery then anchors on the last seal —
//! it replays only the open epoch's WAL suffix and re-verifies only the
//! data lines that suffix touched, falling back to the full bottom-up
//! path only when the seal itself fails its keyed MAC check.
//!
//! # The epoch cut
//!
//! [`EpochMemory`] (one tree) and [`EpochShardedMemory`] (a
//! [`ShardedMemory`] with one WAL per shard) both journal every mutation
//! eagerly — post-images land in the WAL as committed transactions the
//! instant they happen — while a separate *sealed base* copy of the state
//! trails behind by at most one epoch. An epoch cut:
//!
//! 1. folds the open epoch's coalesced dirty set into the sealed base
//!    (cost proportional to the delta, not the memory),
//! 2. atomically replaces the durable `(snapshot, WAL)` pair with the
//!    folded snapshot and an empty log (modeled in memory; a file-backed
//!    deployment gets the same atomicity from tmp+rename, exactly as the
//!    CLI checkpoint path already does), and
//! 3. appends seal records pinning the post-cut roots.
//!
//! The sharded cut is two-phase so a crash *between* per-shard seals is
//! always detected: phase one folds and appends a [`SealPhase::Prepare`]
//! seal on every shard, then the engine recombines the cross-shard top
//! root **once** (this is the only recombination the epoch performs —
//! batches between cuts leave the top stale on purpose), and phase two
//! appends a [`SealPhase::Commit`] seal carrying that combined root to
//! every shard. Recovery resolves a torn cut to the last epoch every
//! healthy shard agrees on and flags it ([`ShardedRecovery::mid_cut`]).
//!
//! # Degraded mode
//!
//! [`recover_sharded_bounded`] never lets one bad shard take down the
//! tenant: a shard whose snapshot, WAL, or verification fails is
//! *quarantined* — its slot is filled with an empty placeholder, reads
//! and writes on it refuse with [`RecoveryError::ShardQuarantined`], and
//! the remaining shards keep serving through
//! [`DegradedShardedMemory`]. Only when *every* shard fails does recovery
//! return a hard error.
//!
//! # What a forged seal can and cannot do
//!
//! Seals are MAC'd with a domain-separated key derived from the tree's
//! construction key, so an adversary who controls the persisted bytes but
//! not the key cannot mint a seal that verifies. Flipping bits in a seal
//! merely downgrades recovery to the full bottom-up path (or quarantines
//! the shard) — it never makes recovery *accept* corrupted state, because
//! the bounded path re-verifies every touched line against the keyed
//! counter-tree chain and the untouched remainder is pinned by the
//! sealed root digest the MAC covers.

use std::collections::BTreeSet;

use morphtree_crypto::MacKey;

use crate::concurrent::{fold_digests, Op, OpOutcome, ShardPlan, ShardedMemory};
use crate::error::IntegrityError;
use crate::error::ShardError;
use crate::functional::{MutationJournal, SecureMemory};
use crate::tree::TreeConfig;
use crate::CACHELINE_BYTES;

use super::codec::{fnv1a, ByteReader};
use super::wal::{replay_epochs, WalRecord, WalWriter};
use super::{
    apply_wal_txn, load_memory, parse_sharded, save_memory, write_section, RecoveryError,
    MAGIC_SHARDED, SEC_SHARD, SEC_SHARD_HEADER, VERSION,
};
use super::ByteWriter;

/// Which half of the two-phase epoch cut a seal records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SealPhase {
    /// The shard folded its open epoch and pinned its own subtree root;
    /// the cross-shard combined root is not yet known (the seal's
    /// `combined_root` mirrors `root_digest`).
    Prepare = 0,
    /// Every shard prepared; this seal pins the recombined cross-shard
    /// top root alongside the shard's own.
    Commit = 1,
}

/// A durable epoch-boundary record: pins a subtree root (and, at
/// [`SealPhase::Commit`], the cross-shard combined root) under a keyed
/// MAC so bounded recovery can trust the sealed base without re-verifying
/// it.
///
/// Wire layout (fixed [`EpochSeal::ENCODED_LEN`] bytes, little-endian):
/// `epoch u64 | phase u8 | root_digest u64 | combined_root u64 | mac u64
/// | fnv1a64(all preceding) u64`. The trailing checksum catches
/// accidental damage with a typed error; the MAC defends against
/// deliberate forgery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSeal {
    /// The epoch this seal closes (strictly monotonic per shard WAL).
    pub epoch: u64,
    /// Which half of the two-phase cut this is.
    pub phase: SealPhase,
    /// The shard's subtree root digest after the cut's fold.
    pub root_digest: u64,
    /// The cross-shard combined root MAC (mirrors `root_digest` for
    /// [`SealPhase::Prepare`] and single-tree seals).
    pub combined_root: u64,
    /// Keyed MAC over the fields above (see [`EpochSeal::verify`]).
    pub mac: u64,
}

/// Domain-separated seal MAC: a distinct key (so seal MACs can never be
/// confused with counter-line or top-fold MACs) over a canonical 64-byte
/// block holding the seal's identity and pinned roots.
fn seal_mac(key: [u8; 16], epoch: u64, phase: SealPhase, root: u64, combined: u64) -> u64 {
    let mut seed = key;
    seed[1] ^= 0xe7;
    let mut block = [0u8; CACHELINE_BYTES];
    block[0..4].copy_from_slice(b"MTEP");
    block[4] = phase as u8;
    block[8..16].copy_from_slice(&epoch.to_le_bytes());
    block[16..24].copy_from_slice(&root.to_le_bytes());
    block[24..32].copy_from_slice(&combined.to_le_bytes());
    MacKey::new(seed)
        .mac_line(epoch.wrapping_mul(CACHELINE_BYTES as u64), phase as u64, &block)
        .0
}

impl EpochSeal {
    /// Encoded size on the wire (the WAL frames seals at this fixed
    /// length).
    pub const ENCODED_LEN: usize = 8 + 1 + 8 + 8 + 8 + 8;

    /// Builds a seal for `epoch`/`phase` pinning `root_digest` and
    /// `combined_root`, MAC'd under (a domain separation of) `key`.
    #[must_use]
    pub fn new(
        key: [u8; 16],
        epoch: u64,
        phase: SealPhase,
        root_digest: u64,
        combined_root: u64,
    ) -> Self {
        EpochSeal {
            epoch,
            phase,
            root_digest,
            combined_root,
            mac: seal_mac(key, epoch, phase, root_digest, combined_root),
        }
    }

    /// Whether the seal's MAC proves it was minted under `key`. A `false`
    /// here is not an error — recovery degrades to the full path.
    #[must_use]
    pub fn verify(&self, key: [u8; 16]) -> bool {
        self.mac == seal_mac(key, self.epoch, self.phase, self.root_digest, self.combined_root)
    }

    /// Serializes the seal (see the type docs for the layout).
    #[must_use]
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..8].copy_from_slice(&self.epoch.to_le_bytes());
        out[8] = self.phase as u8;
        out[9..17].copy_from_slice(&self.root_digest.to_le_bytes());
        out[17..25].copy_from_slice(&self.combined_root.to_le_bytes());
        out[25..33].copy_from_slice(&self.mac.to_le_bytes());
        let crc = fnv1a(&out[..33]);
        out[33..41].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a seal image.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Truncated`] when `bytes` is shorter than
    /// [`EpochSeal::ENCODED_LEN`]; [`RecoveryError::CorruptSeal`] for a
    /// bad phase code, checksum mismatch, or trailing bytes. (An intact
    /// seal whose *MAC* is wrong decodes fine — forgery is detected by
    /// [`EpochSeal::verify`], not here.)
    pub fn decode(bytes: &[u8]) -> Result<Self, RecoveryError> {
        let mut r = ByteReader::new(bytes);
        let epoch = r.u64()?;
        let phase_offset = r.offset();
        let phase = match r.u8()? {
            0 => SealPhase::Prepare,
            1 => SealPhase::Commit,
            _ => return Err(RecoveryError::CorruptSeal { offset: phase_offset }),
        };
        let root_digest = r.u64()?;
        let combined_root = r.u64()?;
        let mac = r.u64()?;
        let crc_offset = r.offset();
        let stored = r.u64()?;
        if fnv1a(&bytes[..33]) != stored {
            return Err(RecoveryError::CorruptSeal { offset: crc_offset });
        }
        if !r.is_exhausted() {
            return Err(RecoveryError::CorruptSeal { offset: r.offset() });
        }
        Ok(EpochSeal { epoch, phase, root_digest, combined_root, mac })
    }
}

/// How much work a bounded recovery actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// The WAL held a valid seal and nothing after it: recovery restored
    /// the snapshot and checked one root digest. Constant work.
    CleanShutdown,
    /// The WAL held a valid seal plus an open-epoch suffix: recovery
    /// replayed the suffix and re-verified only the lines it touched.
    Bounded,
    /// No usable seal (absent, forged, or disagreeing with the restored
    /// root): full replay plus full bottom-up verification, exactly the
    /// pre-epoch [`recover`](super::recover) behavior.
    Full,
}

impl std::fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryMode::CleanShutdown => "clean-shutdown",
            RecoveryMode::Bounded => "bounded",
            RecoveryMode::Full => "full",
        })
    }
}

/// Which re-verification pass a seal-anchored recovery ran after replay.
///
/// Bounded recovery normally proves only the suffix's touched lines, but
/// when nearly every stored line was touched (short history, dense
/// suffix) the touched-line pass plus its deduplicated ancestor chains
/// can exceed a plain bottom-up sweep. [`recover_bounded`] compares the
/// two exact MAC counts ([`SecureMemory::verify_lines_cost`] vs
/// [`SecureMemory::verify_all_cost`] — cheap integer work) and takes the
/// cheaper pass, so bounded recovery is never slower than full
/// verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyStrategy {
    /// Clean shutdown: the sealed root pins everything, nothing re-proved.
    None,
    /// Touched data lines + deduplicated ancestor counter lines.
    TouchedLines,
    /// Whole-store bottom-up sweep (cheaper when the suffix touched
    /// almost everything).
    FullSweep,
}

impl std::fmt::Display for VerifyStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerifyStrategy::None => "none",
            VerifyStrategy::TouchedLines => "touched-lines",
            VerifyStrategy::FullSweep => "full-sweep",
        })
    }
}

/// Accounting from one [`recover_bounded`] run — the quantities the
/// acceptance tests pin (clean shutdown does constant work; a crash
/// replays and verifies only the open epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Which path recovery took.
    pub mode: RecoveryMode,
    /// Epoch of the anchor seal (0 when recovery ran the full path).
    pub sealed_epoch: u64,
    /// Highest epoch with a MAC-valid [`SealPhase::Commit`] seal in the
    /// WAL (0 if none).
    pub committed_epoch: u64,
    /// Highest epoch with any MAC-valid seal in the WAL (0 if none). A
    /// `prepared_epoch > committed_epoch` means the log ends mid-cut.
    pub prepared_epoch: u64,
    /// Committed WAL transactions replayed.
    pub replayed_txns: usize,
    /// Individual post-image records replayed.
    pub replayed_records: usize,
    /// Data lines re-verified after replay. On the full path this is the
    /// whole data store; on the bounded path, only the suffix's touched
    /// lines; on clean shutdown, zero.
    pub verified_lines: usize,
    /// Whether a seal was present but unusable (MAC forged or root
    /// disagreement), forcing the full-path downgrade.
    pub seal_fallback: bool,
    /// Which re-verification pass ran (crossover-selected on the
    /// seal-anchored path; always [`VerifyStrategy::FullSweep`] on the
    /// full path).
    pub verify_strategy: VerifyStrategy,
}

/// Rebuilds a memory from `(snapshot, WAL)` doing work bounded by the
/// open epoch, not the history.
///
/// Anchors on the last seal in the WAL: if its MAC verifies and the
/// restored root matches its pinned digest, only the post-seal suffix is
/// replayed and only the data lines that suffix touched are re-verified
/// (each [`SecureMemory::read`] proves the line's MAC and its whole
/// counter chain up to the root). A missing, forged, or disagreeing seal
/// downgrades to the full [`recover`](super::recover)-equivalent path —
/// never to silent acceptance.
///
/// # Errors
///
/// Snapshot problems from [`load_memory`], [`RecoveryError::CorruptWal`]
/// for damaged log records, range errors for records outside the
/// geometry, and [`RecoveryError::Integrity`] when the restored state
/// fails (bounded or full) verification.
pub fn recover_bounded(
    snapshot: &[u8],
    wal_bytes: &[u8],
) -> Result<(SecureMemory, RecoveryStats), RecoveryError> {
    let mut mem = load_memory(snapshot)?;
    let key = mem.key();
    let epochs = replay_epochs(wal_bytes)?;

    let mut committed_epoch = 0u64;
    let mut prepared_epoch = 0u64;
    for point in &epochs.seals {
        if point.seal.verify(key) {
            prepared_epoch = prepared_epoch.max(point.seal.epoch);
            if point.seal.phase == SealPhase::Commit {
                committed_epoch = committed_epoch.max(point.seal.epoch);
            }
        }
    }

    let mut replayed_txns = 0usize;
    let mut replayed_records = 0usize;
    let mut seal_fallback = false;
    let mut next_txn = 0usize;

    // Anchor on the last seal, if it proves out.
    let mut anchor = None;
    match epochs.seals.last() {
        None => {}
        Some(point) if point.seal.verify(key) => {
            // Replay anything logged before the seal (an epoch cut clears
            // the log, so this is empty in every state the writers here
            // produce — but a generic log is handled, not assumed).
            for txn in &epochs.txns[..point.txns_before] {
                apply_wal_txn(&mut mem, txn)?;
                replayed_txns += 1;
                replayed_records += txn.records.len();
            }
            next_txn = point.txns_before;
            if mem.root_digest() == point.seal.root_digest {
                anchor = Some(point.seal);
            } else {
                // The seal was minted under our key but the restored state
                // is not the state it pinned: downgrade and prove
                // everything.
                seal_fallback = true;
            }
        }
        Some(_) => seal_fallback = true,
    }

    match anchor {
        Some(seal) => {
            let mut touched = BTreeSet::new();
            for txn in &epochs.txns[next_txn..] {
                apply_wal_txn(&mut mem, txn)?;
                replayed_txns += 1;
                replayed_records += txn.records.len();
                for record in &txn.records {
                    if let WalRecord::DataLine { line, .. } = record {
                        touched.insert(*line);
                    }
                }
            }
            // Re-prove what the suffix could have corrupted: the batched
            // touched-line pass (data MACs + deduplicated ancestor
            // chains) by default, or a full bottom-up sweep when the
            // exact MAC-count comparison says the sweep is cheaper —
            // untouched lines stay pinned by the sealed root either way.
            let touched_lines: Vec<u64> = touched.iter().copied().collect();
            let verify_strategy = if touched_lines.is_empty() {
                VerifyStrategy::None
            } else if mem.verify_lines_cost(&touched_lines) <= mem.verify_all_cost() {
                mem.verify_lines(&touched_lines)
                    .map_err(RecoveryError::Integrity)?;
                VerifyStrategy::TouchedLines
            } else {
                mem.verify_all().map_err(RecoveryError::Integrity)?;
                VerifyStrategy::FullSweep
            };
            let verified_lines = match verify_strategy {
                VerifyStrategy::None => 0,
                VerifyStrategy::TouchedLines => touched.len(),
                VerifyStrategy::FullSweep => mem.data_store().len() as usize,
            };
            let mode = if replayed_txns == 0 {
                RecoveryMode::CleanShutdown
            } else {
                RecoveryMode::Bounded
            };
            Ok((
                mem,
                RecoveryStats {
                    mode,
                    sealed_epoch: seal.epoch,
                    committed_epoch,
                    prepared_epoch,
                    replayed_txns,
                    replayed_records,
                    verified_lines,
                    seal_fallback,
                    verify_strategy,
                },
            ))
        }
        None => {
            for txn in &epochs.txns[next_txn..] {
                apply_wal_txn(&mut mem, txn)?;
                replayed_txns += 1;
                replayed_records += txn.records.len();
            }
            mem.verify_all().map_err(RecoveryError::Integrity)?;
            let verified_lines = mem.data_store().len() as usize;
            Ok((
                mem,
                RecoveryStats {
                    mode: RecoveryMode::Full,
                    sealed_epoch: 0,
                    committed_epoch,
                    prepared_epoch,
                    replayed_txns,
                    replayed_records,
                    verified_lines,
                    seal_fallback,
                    verify_strategy: VerifyStrategy::FullSweep,
                },
            ))
        }
    }
}

/// One shard's persistence state: the durable sealed base trailing the
/// live tree by at most one epoch, the open epoch's WAL, and the
/// coalesced dirty sets that turn a cut into delta-sized work.
#[derive(Debug, Clone)]
struct ShardLog {
    /// State as of the last epoch cut — what the durable snapshot holds.
    sealed: SecureMemory,
    /// The open epoch's log (cleared at each cut; seals live here too).
    wal: WalWriter,
    next_seq: u64,
    /// Data lines written since the last cut (coalesced: a line written
    /// ten times folds once).
    pending_data: BTreeSet<u64>,
    /// Counter lines `(level, line_idx)` touched since the last cut.
    pending_counters: BTreeSet<(usize, u64)>,
    /// Reencryption count as of the last logged [`WalRecord::Stats`] (or
    /// the sealed base) — replaying line post-images alone cannot
    /// reconstruct this monotonic counter, so changes are journaled.
    logged_reencryptions: u64,
}

impl ShardLog {
    fn new(sealed: SecureMemory) -> Self {
        let logged_reencryptions = sealed.reencryptions();
        ShardLog {
            sealed,
            wal: WalWriter::new(),
            next_seq: 1,
            pending_data: BTreeSet::new(),
            pending_counters: BTreeSet::new(),
            logged_reencryptions,
        }
    }

    /// Logs one committed transaction holding `journal`'s post-images
    /// (read from `live`) and merges the journal into the pending sets.
    fn log_journal(&mut self, live: &SecureMemory, journal: &MutationJournal) {
        if journal.data_lines.is_empty() && journal.counter_lines.is_empty() {
            return;
        }
        let seq = self.next_seq;
        self.wal.append(&WalRecord::Begin { seq });
        for &line in &journal.data_lines {
            if let Some((ciphertext, mac)) = live.data_line_state(line) {
                self.wal.append(&WalRecord::DataLine { line, ciphertext, mac });
            }
        }
        for &(level, line_idx) in &journal.counter_lines {
            if let Some(image) = live.counter_line_image(level, line_idx) {
                self.wal.append(&WalRecord::CounterLine {
                    level: level as u32,
                    line_idx,
                    image,
                });
            }
        }
        if live.reencryptions() != self.logged_reencryptions {
            self.wal.append(&WalRecord::Stats { reencryptions: live.reencryptions() });
            self.logged_reencryptions = live.reencryptions();
        }
        self.wal.append(&WalRecord::Commit { seq });
        self.next_seq += 1;
        self.pending_data.extend(journal.data_lines.iter().copied());
        self.pending_counters.extend(journal.counter_lines.iter().copied());
    }

    /// Folds the open epoch's coalesced post-images into the sealed base
    /// in place — cost proportional to the delta, not the memory.
    fn fold(&mut self, live: &SecureMemory) {
        for &line in &self.pending_data {
            if let Some((ciphertext, mac)) = live.data_line_state(line) {
                self.sealed.restore_data_line(line, ciphertext, mac);
            }
        }
        for &(level, line_idx) in &self.pending_counters {
            if let Some(image) = live.counter_line_image(level, line_idx) {
                if self.sealed.restore_counter_line(level, line_idx, &image).is_err() {
                    // The image was just encoded from a live line; it
                    // decodes under the same configuration by construction.
                    unreachable!("live counter image failed to re-decode");
                }
            }
        }
        self.sealed.set_reencryptions(live.reencryptions());
        self.logged_reencryptions = live.reencryptions();
        self.pending_data.clear();
        self.pending_counters.clear();
    }

    /// The state the next cut would make durable, without disturbing this
    /// log — the crash campaign uses it to stage mid-cut snapshots.
    fn folded(&self, live: &SecureMemory) -> SecureMemory {
        let mut copy = self.clone();
        copy.fold(live);
        copy.sealed
    }

    /// Appends a seal pinning the sealed base's current root. `combined`
    /// defaults to the shard's own root for Prepare and single-tree seals.
    fn seal(&mut self, epoch: u64, phase: SealPhase, combined: Option<u64>) {
        let root = self.sealed.root_digest();
        let seal =
            EpochSeal::new(self.sealed.key(), epoch, phase, root, combined.unwrap_or(root));
        self.wal.append(&WalRecord::Seal(seal));
    }

    /// Phase one of a cut: fold the open epoch, swap in an empty log, and
    /// pin the folded root with a Prepare seal. The durable
    /// `(snapshot, WAL)` replacement is modeled as atomic (tmp+rename in
    /// a file-backed deployment).
    fn cut_prepare(&mut self, live: &SecureMemory, epoch: u64) {
        self.fold(live);
        self.wal.clear();
        self.next_seq = 1;
        self.seal(epoch, SealPhase::Prepare, None);
    }
}

/// A single [`SecureMemory`] with epoch-bounded persistence: the
/// single-tree counterpart of [`EpochShardedMemory`] (no cross-shard
/// coordination, so cuts use a lone [`SealPhase::Commit`] seal).
#[derive(Debug, Clone)]
pub struct EpochMemory {
    live: SecureMemory,
    log: ShardLog,
    epoch: u64,
    epoch_ops: u64,
    ops_in_epoch: u64,
}

impl EpochMemory {
    /// Creates a fresh epoch-journaled memory sealing epoch 0 (the empty
    /// initial state is durable by construction). `epoch_ops` is the
    /// auto-cut threshold; 0 means cuts are manual ([`EpochMemory::cut`]).
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is zero or not cacheline-aligned.
    #[must_use]
    pub fn new(config: TreeConfig, memory_bytes: u64, key: [u8; 16], epoch_ops: u64) -> Self {
        let mut live = SecureMemory::new(config, memory_bytes, key);
        live.begin_journal();
        let mut log = ShardLog::new(live.clone());
        log.seal(0, SealPhase::Commit, None);
        EpochMemory { live, log, epoch: 0, epoch_ops, ops_in_epoch: 0 }
    }

    /// Writes a line: the mutation is logged eagerly as one committed WAL
    /// transaction, and the epoch auto-cuts at the configured threshold.
    pub fn write(&mut self, data_line: u64, plaintext: &[u8; CACHELINE_BYTES]) {
        self.live.write(data_line, plaintext);
        let journal = self.live.take_journal();
        self.log.log_journal(&self.live, &journal);
        self.ops_in_epoch += 1;
        if self.epoch_ops > 0 && self.ops_in_epoch >= self.epoch_ops {
            self.cut();
        }
    }

    /// Reads and verifies a line (see [`SecureMemory::read`]).
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] when tampering or replay is detected.
    pub fn read(&self, data_line: u64) -> Result<[u8; CACHELINE_BYTES], IntegrityError> {
        self.live.read(data_line)
    }

    /// Cuts the epoch now: folds the open delta into the sealed base,
    /// clears the log, and seals the new epoch. Returns the new epoch.
    pub fn cut(&mut self) -> u64 {
        self.epoch += 1;
        self.log.fold(&self.live);
        self.log.wal.clear();
        self.log.next_seq = 1;
        self.log.seal(self.epoch, SealPhase::Commit, None);
        self.ops_in_epoch = 0;
        self.epoch
    }

    /// The last sealed epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live (unsealed) memory.
    #[must_use]
    pub fn memory(&self) -> &SecureMemory {
        &self.live
    }

    /// The durable snapshot: the sealed base serialized. Pair it with
    /// [`EpochMemory::wal_bytes`] for [`recover_bounded`].
    #[must_use]
    pub fn sealed_snapshot(&self) -> Vec<u8> {
        save_memory(&self.log.sealed)
    }

    /// The open epoch's WAL (starts with the current epoch's seal).
    #[must_use]
    pub fn wal_bytes(&self) -> &[u8] {
        self.log.wal.bytes()
    }
}

/// A [`ShardedMemory`] with per-shard WALs and two-phase epoch cuts: the
/// tentpole writer this module exists for. Batches run with the
/// cross-shard top recombination *deferred* — the combined root is
/// refreshed once per epoch (at the cut), not once per batch.
#[derive(Debug)]
pub struct EpochShardedMemory {
    live: ShardedMemory,
    logs: Vec<ShardLog>,
    epoch: u64,
    epoch_ops: u64,
    ops_in_epoch: u64,
}

impl EpochShardedMemory {
    /// Creates a sharded epoch-journaled memory sealing epoch 0 on every
    /// shard. `epoch_ops` is the auto-cut threshold in applied ops; 0
    /// means cuts are manual.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] when the partition is impossible (see
    /// [`ShardedMemory::new`]).
    pub fn new(
        config: TreeConfig,
        memory_bytes: u64,
        key: [u8; 16],
        shards: usize,
        epoch_ops: u64,
    ) -> Result<Self, ShardError> {
        let mut live = ShardedMemory::new(config, memory_bytes, key, shards)?;
        live.begin_journals();
        let combined = live.combined_root();
        let logs: Vec<ShardLog> = (0..live.plan().shards())
            .map(|s| ShardLog::new(live.shard(s).clone()))
            .collect();
        let mut this = EpochShardedMemory { live, logs, epoch: 0, epoch_ops, ops_in_epoch: 0 };
        for log in &mut this.logs {
            log.seal(0, SealPhase::Prepare, None);
        }
        for log in &mut this.logs {
            log.seal(0, SealPhase::Commit, Some(combined));
        }
        Ok(this)
    }

    /// Runs a batch across `threads` worker threads (see
    /// [`ShardedMemory::run_batch`]), journaling every shard's mutations
    /// as one committed WAL transaction per dirtied shard — but *without*
    /// recombining the cross-shard top root: that happens once per epoch,
    /// at the cut. Auto-cuts when the epoch threshold is reached.
    pub fn run_batch(&mut self, ops: &[Op], threads: usize) -> Vec<OpOutcome> {
        let outcomes = self.live.run_batch_deferred(ops, threads);
        let mut journals = Vec::with_capacity(self.logs.len());
        for s in 0..self.logs.len() {
            journals.push(self.live.shard_mut(s).take_journal());
        }
        for (s, journal) in journals.iter().enumerate() {
            self.logs[s].log_journal(self.live.shard(s), journal);
        }
        self.ops_in_epoch += ops.len() as u64;
        if self.epoch_ops > 0 && self.ops_in_epoch >= self.epoch_ops {
            self.cut();
        }
        outcomes
    }

    /// Serial convenience write (routes to the owning shard and journals
    /// it). Auto-cuts at the epoch threshold.
    pub fn write(&mut self, line: u64, data: &[u8; CACHELINE_BYTES]) {
        let shard = self.live.plan().shard_of(line);
        self.live.write(line, data);
        let journal = self.live.shard_mut(shard).take_journal();
        self.logs[shard].log_journal(self.live.shard(shard), &journal);
        self.ops_in_epoch += 1;
        if self.epoch_ops > 0 && self.ops_in_epoch >= self.epoch_ops {
            self.cut();
        }
    }

    /// Reads and verifies a line (global coordinates).
    ///
    /// # Errors
    ///
    /// Returns the detection verdict, in global coordinates.
    pub fn read(&self, line: u64) -> Result<[u8; CACHELINE_BYTES], IntegrityError> {
        self.live.read(line)
    }

    /// Cuts the epoch with the two-phase protocol: every shard folds its
    /// open delta and appends a Prepare seal, the cross-shard top root is
    /// recombined **once**, then every shard appends a Commit seal
    /// carrying the combined root. Returns the combined root.
    pub fn cut(&mut self) -> u64 {
        self.epoch += 1;
        for s in 0..self.logs.len() {
            let epoch = self.epoch;
            self.logs[s].cut_prepare(self.live.shard(s), epoch);
        }
        // The one recombination this epoch performs.
        let combined = self.live.combined_root();
        for log in &mut self.logs {
            log.seal(self.epoch, SealPhase::Commit, Some(combined));
        }
        self.ops_in_epoch = 0;
        combined
    }

    /// The last sealed epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ops applied since the last cut.
    #[must_use]
    pub fn ops_in_epoch(&self) -> u64 {
        self.ops_in_epoch
    }

    /// The partition in use.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        self.live.plan()
    }

    /// The live sharded memory (audits, oracles).
    #[must_use]
    pub fn memory(&self) -> &ShardedMemory {
        &self.live
    }

    /// Cross-shard top recombinations performed so far (the epoch tests
    /// pin this at one per cut, not one per batch).
    #[must_use]
    pub fn recombines(&self) -> u64 {
        self.live.recombines()
    }

    /// The combined root, recombining if needed. Note: calling this
    /// between cuts performs the recombination the epoch machinery was
    /// deferring — reserve it for end-of-run audits.
    pub fn combined_root(&mut self) -> u64 {
        self.live.combined_root()
    }

    /// The durable sharded snapshot: an `MTSH` container of the sealed
    /// bases. Pair it with [`EpochShardedMemory::wal_bytes`] per shard
    /// for [`recover_sharded_bounded`].
    #[must_use]
    pub fn sealed_container(&self) -> Vec<u8> {
        let plan = self.live.plan();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC_SHARDED);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let mut w = ByteWriter::new();
        w.u64(plan.memory_bytes());
        w.u32(plan.shards() as u32);
        w.bytes(&self.live.tenant_key());
        write_section(&mut out, SEC_SHARD_HEADER, &w.into_bytes());
        for log in &self.logs {
            write_section(&mut out, SEC_SHARD, &save_memory(&log.sealed));
        }
        out
    }

    /// One shard's open-epoch WAL.
    #[must_use]
    pub fn wal_bytes(&self, shard: usize) -> &[u8] {
        self.logs[shard].wal.bytes()
    }

    /// Every shard's open-epoch WAL, cloned (convenience for recovery
    /// drills).
    #[must_use]
    pub fn wals(&self) -> Vec<Vec<u8>> {
        self.logs.iter().map(|log| log.wal.bytes().to_vec()).collect()
    }

    /// Stages the durable `(container, per-shard WALs)` pair as a crash
    /// *inside* the next cut would leave it: the first `prepared` shards
    /// have completed phase one (folded snapshot, fresh log with a
    /// Prepare seal) and the first `committed` shards also carry the
    /// phase-two Commit seal. The live state is untouched — this is a
    /// pure preview for fault injection.
    ///
    /// # Panics
    ///
    /// Panics when `committed > prepared`, either exceeds the shard
    /// count, or `committed > 0` without every shard prepared (phase two
    /// only starts after phase one finishes everywhere).
    #[must_use]
    pub fn interrupted_cut_state(
        &self,
        prepared: usize,
        committed: usize,
    ) -> (Vec<u8>, Vec<Vec<u8>>) {
        let shards = self.logs.len();
        assert!(prepared <= shards && committed <= prepared, "invalid cut interruption");
        assert!(
            committed == 0 || prepared == shards,
            "phase two starts only after every shard prepared"
        );
        let next = self.epoch + 1;
        let folded: Vec<SecureMemory> = (0..prepared)
            .map(|s| self.logs[s].folded(self.live.shard(s)))
            .collect();
        // The combined root phase two pins: every shard folded (committed
        // > 0 implies prepared == shards, so `folded` covers them all).
        let combined = if committed > 0 {
            let digests: Vec<u64> = folded.iter().map(SecureMemory::root_digest).collect();
            fold_digests(self.live.tenant_key(), &digests)
        } else {
            0
        };

        let plan = self.live.plan();
        let mut container = Vec::new();
        container.extend_from_slice(&MAGIC_SHARDED);
        container.extend_from_slice(&VERSION.to_le_bytes());
        let mut w = ByteWriter::new();
        w.u64(plan.memory_bytes());
        w.u32(plan.shards() as u32);
        w.bytes(&self.live.tenant_key());
        write_section(&mut container, SEC_SHARD_HEADER, &w.into_bytes());

        let mut wals = Vec::with_capacity(shards);
        for (s, log) in self.logs.iter().enumerate() {
            match folded.get(s) {
                Some(state) => {
                    write_section(&mut container, SEC_SHARD, &save_memory(state));
                    let mut wal = WalWriter::new();
                    let root = state.root_digest();
                    wal.append(&WalRecord::Seal(EpochSeal::new(
                        state.key(),
                        next,
                        SealPhase::Prepare,
                        root,
                        root,
                    )));
                    if s < committed {
                        wal.append(&WalRecord::Seal(EpochSeal::new(
                            state.key(),
                            next,
                            SealPhase::Commit,
                            root,
                            combined,
                        )));
                    }
                    wals.push(wal.bytes().to_vec());
                }
                None => {
                    write_section(&mut container, SEC_SHARD, &save_memory(&log.sealed));
                    wals.push(log.wal.bytes().to_vec());
                }
            }
        }
        (container, wals)
    }
}

/// A recovered sharded memory that keeps serving around quarantined
/// shards: reads and writes on a quarantined shard refuse with
/// [`RecoveryError::ShardQuarantined`]; the rest behave normally.
#[derive(Debug)]
pub struct DegradedShardedMemory {
    inner: ShardedMemory,
    quarantined: BTreeSet<usize>,
}

impl DegradedShardedMemory {
    fn new(inner: ShardedMemory, quarantined: BTreeSet<usize>) -> Self {
        DegradedShardedMemory { inner, quarantined }
    }

    /// The partition in use.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        self.inner.plan()
    }

    /// Whether `shard` refused recovery and is quarantined.
    #[must_use]
    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.quarantined.contains(&shard)
    }

    /// The quarantined shard indices, ascending.
    pub fn quarantined(&self) -> impl Iterator<Item = usize> + '_ {
        self.quarantined.iter().copied()
    }

    /// How many shards are serving.
    #[must_use]
    pub fn healthy_shards(&self) -> usize {
        self.inner.plan().shards() - self.quarantined.len()
    }

    /// Reads and verifies a line (global coordinates), refusing on a
    /// quarantined shard.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::ShardQuarantined`] when the owning shard is
    /// quarantined; [`RecoveryError::Integrity`] when the healthy shard
    /// detects tampering.
    pub fn read(&self, line: u64) -> Result<[u8; CACHELINE_BYTES], RecoveryError> {
        let shard = self.inner.plan().shard_of(line);
        if self.quarantined.contains(&shard) {
            return Err(RecoveryError::ShardQuarantined { shard });
        }
        self.inner.read(line).map_err(RecoveryError::Integrity)
    }

    /// Writes a line (global coordinates), refusing on a quarantined
    /// shard.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::ShardQuarantined`] when the owning shard is
    /// quarantined.
    pub fn write(&mut self, line: u64, data: &[u8; CACHELINE_BYTES]) -> Result<(), RecoveryError> {
        let shard = self.inner.plan().shard_of(line);
        if self.quarantined.contains(&shard) {
            return Err(RecoveryError::ShardQuarantined { shard });
        }
        self.inner.write(line, data);
        Ok(())
    }

    /// One shard's subtree (read-only; quarantined slots hold an empty
    /// placeholder, not recovered state).
    #[must_use]
    pub fn shard(&self, shard: usize) -> &SecureMemory {
        self.inner.shard(shard)
    }

    /// Audits every *healthy* shard bottom-up.
    ///
    /// # Errors
    ///
    /// The first [`IntegrityError`] across healthy shards, in shard order
    /// (coordinates local to the failing shard).
    pub fn verify_healthy(&self) -> Result<(), IntegrityError> {
        for s in 0..self.inner.plan().shards() {
            if !self.quarantined.contains(&s) {
                self.inner.shard(s).verify_all()?;
            }
        }
        Ok(())
    }

    /// The wrapped sharded memory. Note the combined root over a degraded
    /// memory folds placeholder digests for quarantined slots — meaningful
    /// only relative to other degraded views, never to a sealed root.
    #[must_use]
    pub fn memory(&self) -> &ShardedMemory {
        &self.inner
    }
}

/// One shard's recovery outcome inside a [`ShardedRecovery`].
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// Shard index within the container.
    pub shard: usize,
    /// Bounded-recovery accounting, or the typed failure that quarantined
    /// the shard.
    pub outcome: Result<RecoveryStats, RecoveryError>,
}

/// The result of [`recover_sharded_bounded`]: a (possibly degraded)
/// serving memory plus per-shard diagnostics.
#[derive(Debug)]
pub struct ShardedRecovery {
    /// The recovered memory; quarantined shards refuse, others serve.
    pub memory: DegradedShardedMemory,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardRecovery>,
    /// The epoch every healthy shard is at or beyond — the last epoch the
    /// whole tenant consistently reached (0 when no healthy shard holds a
    /// usable seal).
    pub resolved_epoch: u64,
    /// Whether the crash landed inside a two-phase cut: healthy shards
    /// disagree on their sealed epoch, or some shard prepared an epoch it
    /// never saw committed.
    pub mid_cut: bool,
}

/// Rebuilds a sharded memory from an `MTSH` container plus one WAL per
/// shard, doing per-shard work bounded by each shard's open epoch — and
/// degrading, not dying, when a shard fails: the bad shard is quarantined
/// (empty placeholder, reads/writes refuse) while the rest serve.
///
/// # Errors
///
/// Container-level framing problems are fatal ([`RecoveryError::BadMagic`],
/// truncation, checksums, [`RecoveryError::ShardPlan`]);
/// [`RecoveryError::ShardWalCount`] when the WAL count disagrees with the
/// partition; and when *every* shard fails, the first shard's error (there
/// is nothing left to serve). Per-shard failures otherwise land in
/// [`ShardRecovery::outcome`], not here.
pub fn recover_sharded_bounded<W: AsRef<[u8]>>(
    container: &[u8],
    wals: &[W],
) -> Result<ShardedRecovery, RecoveryError> {
    let (plan, key, sections) = parse_sharded(container)?;
    if wals.len() != plan.shards() {
        return Err(RecoveryError::ShardWalCount { expected: plan.shards(), got: wals.len() });
    }

    let mut recovered: Vec<Option<SecureMemory>> = Vec::with_capacity(plan.shards());
    let mut reports = Vec::with_capacity(plan.shards());
    let mut quarantined = BTreeSet::new();
    for (shard, section) in sections.iter().enumerate() {
        let outcome = recover_bounded(section, wals[shard].as_ref()).and_then(|(mem, stats)| {
            if mem.geometry().memory_bytes() != plan.shard_memory_bytes(shard)
                || mem.key() != ShardedMemory::derived_key(key, shard)
            {
                Err(RecoveryError::ShardMismatch { shard })
            } else {
                Ok((mem, stats))
            }
        });
        match outcome {
            Ok((mem, stats)) => {
                recovered.push(Some(mem));
                reports.push(ShardRecovery { shard, outcome: Ok(stats) });
            }
            Err(err) => {
                quarantined.insert(shard);
                recovered.push(None);
                reports.push(ShardRecovery { shard, outcome: Err(err) });
            }
        }
    }

    // Placeholders need a tree configuration; borrow it from any healthy
    // shard. No healthy shard means nothing can serve: hard-fail with the
    // first diagnosis.
    let config = match recovered.iter().flatten().next() {
        Some(mem) => mem.config().clone(),
        None => {
            let first = reports
                .iter()
                .find_map(|r| r.outcome.as_ref().err().cloned())
                .unwrap_or(RecoveryError::ShardPlan(crate::error::ShardError::ZeroShards));
            return Err(first);
        }
    };
    let shards: Vec<SecureMemory> = recovered
        .into_iter()
        .enumerate()
        .map(|(s, mem)| {
            mem.unwrap_or_else(|| {
                SecureMemory::new(
                    config.clone(),
                    plan.shard_memory_bytes(s),
                    ShardedMemory::derived_key(key, s),
                )
            })
        })
        .collect();

    let healthy: Vec<&RecoveryStats> =
        reports.iter().filter_map(|r| r.outcome.as_ref().ok()).collect();
    let resolved_epoch = healthy.iter().map(|s| s.sealed_epoch).min().unwrap_or(0);
    let sealed_epochs: BTreeSet<u64> = healthy.iter().map(|s| s.sealed_epoch).collect();
    let mid_cut = sealed_epochs.len() > 1
        || healthy.iter().any(|s| s.prepared_epoch > s.committed_epoch);

    Ok(ShardedRecovery {
        memory: DegradedShardedMemory::new(
            ShardedMemory::from_parts(plan, key, shards),
            quarantined,
        ),
        shards: reports,
        resolved_epoch,
        mid_cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;
    const KEY: [u8; 16] = [7u8; 16];

    #[test]
    fn seal_roundtrips_and_macs_are_keyed() {
        let seal = EpochSeal::new(KEY, 42, SealPhase::Commit, 0xdead, 0xbeef);
        let decoded = EpochSeal::decode(&seal.encode()).unwrap();
        assert_eq!(decoded, seal);
        assert!(seal.verify(KEY));
        assert!(!seal.verify([8u8; 16]));
        // Prepare and Commit seals over the same roots never share a MAC.
        let prep = EpochSeal::new(KEY, 42, SealPhase::Prepare, 0xdead, 0xbeef);
        assert_ne!(prep.mac, seal.mac);
    }

    #[test]
    fn seal_decode_errors_are_typed() {
        let seal = EpochSeal::new(KEY, 3, SealPhase::Prepare, 1, 2);
        let bytes = seal.encode();
        for cut in 0..bytes.len() {
            assert!(EpochSeal::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes;
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert!(
                EpochSeal::decode(&flipped).is_err()
                    || !EpochSeal::decode(&flipped).unwrap().verify(KEY),
                "bit {bit}: flip must be a decode error or a MAC failure"
            );
        }
    }

    #[test]
    fn clean_shutdown_recovers_with_constant_work() {
        let mut mem = EpochMemory::new(TreeConfig::morphtree(), MIB, KEY, 0);
        for i in 0..50u64 {
            mem.write(i % 96, &[i as u8; CACHELINE_BYTES]);
        }
        mem.cut();
        let snapshot = mem.sealed_snapshot();
        let (recovered, stats) = recover_bounded(&snapshot, mem.wal_bytes()).unwrap();
        assert_eq!(stats.mode, RecoveryMode::CleanShutdown);
        assert_eq!(stats.replayed_txns, 0);
        assert_eq!(stats.verified_lines, 0);
        assert!(!stats.seal_fallback);
        assert_eq!(stats.sealed_epoch, 1);
        // Constant work means constant crypto: zero MAC computations.
        assert_eq!(recovered.crypto_ops().total(), 0);
        assert_eq!(save_memory(&recovered), save_memory(mem.memory()));
    }

    #[test]
    fn crash_recovery_is_bounded_by_the_open_epoch() {
        let mut mem = EpochMemory::new(TreeConfig::morphtree(), MIB, KEY, 0);
        for i in 0..60u64 {
            mem.write(i % 96, &[i as u8; CACHELINE_BYTES]);
        }
        mem.cut();
        // Open epoch: 5 writes to 3 distinct lines.
        for i in 0..5u64 {
            mem.write(10 + i % 3, &[0xa0 | i as u8; CACHELINE_BYTES]);
        }
        let (recovered, stats) = recover_bounded(&mem.sealed_snapshot(), mem.wal_bytes()).unwrap();
        assert_eq!(stats.mode, RecoveryMode::Bounded);
        assert_eq!(stats.replayed_txns, 5);
        assert_eq!(stats.verified_lines, 3, "verifies touched lines, not the memory");
        assert_eq!(save_memory(&recovered), save_memory(mem.memory()));
    }

    /// Satellite regression for the recovery-grid crossover: across grid
    /// points spanning sparse-to-dense open-epoch suffixes over small and
    /// large sealed histories, the seal-anchored path must never do more
    /// MAC work than the full path (same snapshot + seal-stripped WAL),
    /// and both must recover byte-identical state. With the batched
    /// [`SecureMemory::verify_lines`] pass this holds structurally —
    /// touched lines are a subset of the stored data and their ancestors
    /// a subset of the stored counters — and the [`VerifyStrategy`]
    /// crossover guards the bound besides.
    #[test]
    fn bounded_recovery_never_does_more_crypto_than_full() {
        for (base_writes, suffix_writes) in
            [(8u64, 4u64), (8, 64), (8, 600), (64, 8), (64, 256), (512, 8), (512, 600)]
        {
            let mut mem = EpochMemory::new(TreeConfig::morphtree(), MIB, KEY, 0);
            for i in 0..base_writes {
                mem.write(i * 7 % 16384, &[i as u8; CACHELINE_BYTES]);
            }
            mem.cut();
            for i in 0..suffix_writes {
                mem.write(i * 11 % 16384, &[0x80 | i as u8; CACHELINE_BYTES]);
            }
            let snapshot = mem.sealed_snapshot();
            let wal = mem.wal_bytes().to_vec();

            let (bounded, stats) = recover_bounded(&snapshot, &wal).unwrap();
            assert_ne!(stats.mode, RecoveryMode::Full, "{base_writes}/{suffix_writes}");

            // The full-path oracle: same WAL with the anchor seal
            // stripped, forcing replay + whole-store verification.
            let epochs = replay_epochs(&wal).unwrap();
            let mut stripped = WalWriter::new();
            for txn in &epochs.txns {
                stripped.append(&WalRecord::Begin { seq: txn.seq });
                for record in &txn.records {
                    stripped.append(record);
                }
                stripped.append(&WalRecord::Commit { seq: txn.seq });
            }
            let (full, full_stats) = recover_bounded(&snapshot, stripped.bytes()).unwrap();
            assert_eq!(full_stats.mode, RecoveryMode::Full);
            assert_eq!(full_stats.verify_strategy, VerifyStrategy::FullSweep);

            assert!(
                bounded.crypto_ops().total() <= full.crypto_ops().total(),
                "grid point {base_writes}/{suffix_writes}: bounded used {} crypto ops, full {}",
                bounded.crypto_ops().total(),
                full.crypto_ops().total()
            );
            assert_eq!(save_memory(&bounded), save_memory(&full));
            assert_eq!(save_memory(&bounded), save_memory(mem.memory()));
        }
    }

    /// A counter overflow in the *open* epoch reencrypts a whole line
    /// group and bumps the monotonic reencryption counter the snapshot
    /// serializes — state no line post-image carries. Replay must restore
    /// it (via [`WalRecord::Stats`]) or recovery silently diverges from
    /// the live engine.
    #[test]
    fn open_epoch_reencryption_survives_bounded_recovery() {
        let mut mem = EpochMemory::new(TreeConfig::morphtree(), MIB, KEY, 0);
        mem.write(0, &[0x11; CACHELINE_BYTES]);
        mem.cut();
        let sealed_reencryptions = mem.memory().reencryptions();
        // Hammer one line until its minor counter overflows.
        let mut i = 0u64;
        while mem.memory().reencryptions() == sealed_reencryptions {
            mem.write(0, &[i as u8; CACHELINE_BYTES]);
            i += 1;
            assert!(i < 100_000, "no overflow after {i} writes");
        }
        let (recovered, stats) = recover_bounded(&mem.sealed_snapshot(), mem.wal_bytes()).unwrap();
        assert_eq!(stats.mode, RecoveryMode::Bounded);
        assert_eq!(recovered.reencryptions(), mem.memory().reencryptions());
        assert_eq!(save_memory(&recovered), save_memory(mem.memory()));
    }

    #[test]
    fn forged_seal_downgrades_to_full_verification() {
        let mut mem = EpochMemory::new(TreeConfig::morphtree(), MIB, KEY, 0);
        for i in 0..30u64 {
            mem.write(i % 64, &[i as u8; CACHELINE_BYTES]);
        }
        mem.cut();
        mem.write(3, &[0xcc; CACHELINE_BYTES]);
        let snapshot = mem.sealed_snapshot();

        // Forge the seal: flip a MAC bit but keep the record CRC valid by
        // rebuilding the WAL with the tampered seal.
        let epochs = replay_epochs(mem.wal_bytes()).unwrap();
        let mut forged = epochs.seals[0].seal;
        forged.mac ^= 1;
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::Seal(forged));
        for txn in &epochs.txns {
            wal.append(&WalRecord::Begin { seq: txn.seq });
            for record in &txn.records {
                wal.append(record);
            }
            wal.append(&WalRecord::Commit { seq: txn.seq });
        }

        let (recovered, stats) = recover_bounded(&snapshot, wal.bytes()).unwrap();
        assert_eq!(stats.mode, RecoveryMode::Full);
        assert!(stats.seal_fallback);
        assert_eq!(stats.committed_epoch, 0, "a forged seal pins nothing");
        assert_eq!(save_memory(&recovered), save_memory(mem.memory()));
    }

    #[test]
    fn sharded_epoch_recombines_once_per_cut() {
        let mut mem =
            EpochShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, 4, 0).unwrap();
        let lines = mem.plan().data_lines();
        let base = mem.recombines();
        for batch in 0..3u64 {
            let ops: Vec<Op> = (0..32)
                .map(|i| Op::Write {
                    line: (batch * 32 + i) * 13 % lines,
                    data: [i as u8; CACHELINE_BYTES],
                })
                .collect();
            mem.run_batch(&ops, 2);
        }
        assert_eq!(mem.recombines(), base, "batches must not recombine");
        mem.cut();
        assert_eq!(mem.recombines(), base + 1, "a cut recombines exactly once");
    }

    #[test]
    fn sharded_bounded_recovery_matches_live_state() {
        let mut mem =
            EpochShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, 3, 0).unwrap();
        let lines = mem.plan().data_lines();
        for i in 0..64u64 {
            mem.write(i * 37 % lines, &[i as u8; CACHELINE_BYTES]);
        }
        mem.cut();
        for i in 0..9u64 {
            mem.write(i * 61 % lines, &[0x80 | i as u8; CACHELINE_BYTES]);
        }

        let container = mem.sealed_container();
        let wals = mem.wals();
        let rec = recover_sharded_bounded(&container, &wals).unwrap();
        assert_eq!(rec.resolved_epoch, 1);
        assert!(!rec.mid_cut);
        assert_eq!(rec.memory.healthy_shards(), 3);
        for report in &rec.shards {
            let stats = report.outcome.as_ref().unwrap();
            assert_ne!(stats.mode, RecoveryMode::Full, "shard {}", report.shard);
        }
        for s in 0..3 {
            assert_eq!(
                save_memory(rec.memory.shard(s)),
                save_memory(mem.memory().shard(s)),
                "shard {s} diverged"
            );
        }
    }

    #[test]
    fn crash_between_shard_seals_is_detected_and_resolved() {
        let mut mem =
            EpochShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, 4, 0).unwrap();
        let lines = mem.plan().data_lines();
        for i in 0..48u64 {
            mem.write(i * 29 % lines, &[i as u8; CACHELINE_BYTES]);
        }
        mem.cut(); // epoch 1, everywhere
        for i in 0..16u64 {
            mem.write(i * 53 % lines, &[0xd0 | i as u8; CACHELINE_BYTES]);
        }

        // Crash after two shards prepared epoch 2 and none committed.
        let (container, wals) = mem.interrupted_cut_state(2, 0);
        let rec = recover_sharded_bounded(&container, &wals).unwrap();
        assert!(rec.mid_cut, "a torn cut must be flagged");
        assert_eq!(rec.resolved_epoch, 1, "resolves to the last consistent epoch");
        assert_eq!(rec.memory.healthy_shards(), 4, "a torn cut quarantines nothing");
        rec.memory.verify_healthy().unwrap();

        // Crash mid phase two: all prepared, one committed.
        let (container, wals) = mem.interrupted_cut_state(4, 1);
        let rec = recover_sharded_bounded(&container, &wals).unwrap();
        assert!(rec.mid_cut);
        assert_eq!(rec.resolved_epoch, 2, "every shard reached the epoch-2 state");
    }

    #[test]
    fn bad_shard_is_quarantined_and_the_rest_serve() {
        let mut mem =
            EpochShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, 3, 0).unwrap();
        let lines = mem.plan().data_lines();
        for i in 0..40u64 {
            mem.write(i * 17 % lines, &[i as u8; CACHELINE_BYTES]);
        }
        mem.cut();

        let container = mem.sealed_container();
        let mut wals = mem.wals();
        // Corrupt shard 1's WAL: flip a byte inside a complete record so
        // its frame CRC fails. (All-0xff garbage would read as a torn
        // tail and be benignly discarded — corruption must be *complete*
        // to be diagnosed, per the WAL's torn-write rules.)
        wals[1][6] ^= 0xff;

        let rec = recover_sharded_bounded(&container, &wals).unwrap();
        assert!(rec.memory.is_quarantined(1));
        assert_eq!(rec.memory.healthy_shards(), 2);
        assert!(matches!(
            rec.shards[1].outcome,
            Err(RecoveryError::CorruptWal { .. })
        ));

        // Reads on the quarantined shard refuse; the rest serve.
        let bad_line = mem.plan().shard_base(1);
        assert_eq!(
            rec.memory.read(bad_line).unwrap_err(),
            RecoveryError::ShardQuarantined { shard: 1 }
        );
        let good_line = mem.plan().shard_base(0);
        assert_eq!(
            rec.memory.read(good_line).unwrap(),
            mem.read(good_line).unwrap()
        );

        // All shards failing is a hard error, not an empty tenant.
        let mut all_bad = mem.wals();
        for wal in &mut all_bad {
            wal[6] ^= 0xff;
        }
        assert_eq!(
            recover_sharded_bounded(&container, &all_bad).unwrap_err(),
            RecoveryError::CorruptWal { offset: 0 }
        );
        // A torn container is fatal at the framing layer.
        let mut torn_container = container.clone();
        let len = torn_container.len();
        torn_container.truncate(len - 1);
        assert!(recover_sharded_bounded(&torn_container, &wals).is_err());
    }

    #[test]
    fn wal_count_mismatch_is_typed() {
        let mem = EpochShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, 3, 0).unwrap();
        let container = mem.sealed_container();
        let wals = vec![Vec::<u8>::new(); 2];
        assert_eq!(
            recover_sharded_bounded(&container, &wals).unwrap_err(),
            RecoveryError::ShardWalCount { expected: 3, got: 2 }
        );
    }

    #[test]
    fn epoch_auto_cut_fires_at_the_threshold() {
        let mut mem =
            EpochShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, 2, 8).unwrap();
        let lines = mem.plan().data_lines();
        for i in 0..24u64 {
            mem.write(i % lines, &[i as u8; CACHELINE_BYTES]);
        }
        assert_eq!(mem.epoch(), 3, "24 ops at 8 per epoch is 3 cuts");
        assert_eq!(mem.ops_in_epoch(), 0);
    }
}
