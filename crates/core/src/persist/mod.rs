//! Crash-consistent persistence for the secure-memory state: versioned,
//! checksummed snapshots plus a write-ahead log, with a recovery path that
//! re-verifies the restored tree through the functional verification
//! machinery.
//!
//! # Why a secure memory needs this
//!
//! A real secure-memory controller keeps counters and tree nodes in
//! volatile caches backed by DRAM; persisting that state (hibernate,
//! checkpoint, NVM deployments à la Triad-NVM / Anubis) must tolerate
//! power loss at *any* instant. This module reproduces that problem shape
//! for the simulator: the full [`SecureMemory`] state serializes to a
//! [`save_memory`] snapshot, every write appends a committed transaction
//! to a [`WalWriter`] log, and [`recover`] rebuilds the state from
//! `snapshot + any WAL prefix` — then proves the result through
//! [`SecureMemory::verify_all`] before handing it back.
//!
//! # Format overview
//!
//! A snapshot is `b"MTSN"` + version + a fixed sequence of sections, each
//! framed as `[tag: u32][len: u64][payload][fnv1a64(payload): u64]`:
//!
//! | tag | section  | payload |
//! |-----|----------|---------|
//! | 1   | `CONFIG` | tree name + counter organizations |
//! | 2   | `STATE`  | memory size, key, re-encryption total |
//! | 3   | `DATA`   | `(line, ciphertext)` pairs, index order |
//! | 4   | `MACS`   | `(line, mac)` pairs, index order |
//! | 5   | `LEVELS` | per level: `(line_idx, encoded image)` pairs |
//!
//! Serialization iterates [`crate::store::PagedStore`] in index order, so
//! equal states produce byte-identical snapshots regardless of history —
//! the property the resumed-sweep determinism tests pin.
//!
//! The WAL format and its torn-write rules live in [`wal`]; the metadata
//! (timing) engine has its own snapshot in [`engine`].
//!
//! # Failure taxonomy
//!
//! Recovery never panics and never silently accepts divergence: every
//! failure is a typed [`RecoveryError`]. Truncation mid-WAL-record is
//! *expected* (a torn write) and recovers to the last committed
//! transaction; anything else — bad magic, checksum mismatch, malformed
//! counter images, out-of-range indices, a restored tree that fails MAC
//! verification — is reported, not repaired.

use std::error::Error;
use std::fmt;

use crate::concurrent::{ShardPlan, ShardedMemory};
use crate::counters::morph::MorphMode;
use crate::counters::{CounterLine, CounterOrg};
use crate::error::{CodecError, IntegrityError, ShardError};
use crate::functional::SecureMemory;
use crate::tree::TreeConfig;
use crate::CACHELINE_BYTES;

pub mod codec;
pub mod engine;
pub mod epoch;
pub mod wal;

use codec::{fnv1a, ByteReader, ByteWriter, Truncated};
pub use epoch::{
    recover_bounded, recover_sharded_bounded, DegradedShardedMemory, EpochMemory,
    EpochSeal, EpochShardedMemory, RecoveryMode, RecoveryStats, SealPhase, ShardRecovery,
    ShardedRecovery, VerifyStrategy,
};
pub use wal::{replay, replay_epochs, SealPoint, WalEpochs, WalRecord, WalTransaction, WalWriter};

/// Snapshot file magic (`MTSN` = MorphTree SNapshot).
pub const MAGIC: [u8; 4] = *b"MTSN";
/// Sharded-snapshot container magic (`MTSH` = MorphTree SHards): a header
/// plus one embedded [`MAGIC`] snapshot per shard.
pub const MAGIC_SHARDED: [u8; 4] = *b"MTSH";
/// Published-root file magic (`MTRT` = MorphTree RooT): the tiny
/// checksummed artifact [`save_root`] writes alongside a snapshot so a
/// verifier can check proofs with nothing but this file.
pub const MAGIC_ROOT: [u8; 4] = *b"MTRT";
/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Upper bound on the protected-memory size a snapshot may declare
/// (1 TiB). A corrupt size field must fail typed, not exhaust the host
/// allocating stores for a fictitious geometry.
pub const MAX_MEMORY_BYTES: u64 = 1 << 40;

pub(crate) const SEC_ROOT: u32 = 32;
pub(crate) const SEC_CONFIG: u32 = 1;
pub(crate) const SEC_STATE: u32 = 2;
pub(crate) const SEC_DATA: u32 = 3;
pub(crate) const SEC_MACS: u32 = 4;
pub(crate) const SEC_LEVELS: u32 = 5;
pub(crate) const SEC_SHARD_HEADER: u32 = 16;
pub(crate) const SEC_SHARD: u32 = 17;

/// Why a snapshot or WAL could not be restored.
///
/// Every variant is a *diagnosis*: recovery refuses to guess, so callers
/// (the CLI `--resume` path, the crash-fault attack campaign) can assert
/// that a damaged input is reported rather than silently absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// The version the file declares.
        version: u32,
    },
    /// The input ended before a field did (offset within the buffer being
    /// parsed at that point).
    Truncated {
        /// Byte offset of the missing field.
        offset: usize,
    },
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch {
        /// Tag of the failing section.
        section: u32,
    },
    /// The snapshot is structurally invalid (wrong section order, trailing
    /// bytes, inconsistent counts, out-of-bounds declared sizes).
    CorruptSnapshot {
        /// Byte offset where the violation was detected.
        offset: usize,
    },
    /// A *complete* WAL record is checksum-invalid, malformed, or violates
    /// transaction structure (see [`wal`] for the torn-write rules that
    /// distinguish this from benign truncation).
    CorruptWal {
        /// Byte offset of the offending record.
        offset: usize,
    },
    /// A restored record names a data line outside the snapshot's
    /// geometry.
    DataLineOutOfRange {
        /// The offending line index.
        line: u64,
    },
    /// A restored record names a counter line outside the snapshot's
    /// geometry.
    CounterLineOutOfRange {
        /// Tree level of the offending record.
        level: usize,
        /// The offending line index.
        line_idx: u64,
    },
    /// A counter-line image failed to decode under the level's configured
    /// counter organization.
    MalformedLine(CodecError),
    /// The restored state failed bottom-up MAC verification — the snapshot
    /// and WAL were individually well-formed but do not describe a state
    /// the write path could have produced.
    Integrity(IntegrityError),
    /// A sharded container's header declares an impossible partition.
    ShardPlan(ShardError),
    /// A per-shard snapshot inside a sharded container disagrees with the
    /// header's partition: wrong geometry for its range, or a key that is
    /// not the one derived from the header's tenant key. Recovery refuses
    /// to blend shards from different tenants or layouts.
    ShardMismatch {
        /// Index of the offending shard.
        shard: usize,
    },
    /// An epoch-seal record is structurally invalid: bad phase code,
    /// checksum mismatch, or trailing bytes. (A seal whose *MAC* fails is
    /// not an error — bounded recovery degrades to full verification or
    /// quarantine instead; see [`epoch`].)
    CorruptSeal {
        /// Byte offset of the offending field within the seal image.
        offset: usize,
    },
    /// A sharded bounded recovery was handed the wrong number of per-shard
    /// WALs for the container's declared partition.
    ShardWalCount {
        /// Shards the container declares.
        expected: usize,
        /// WALs the caller supplied.
        got: usize,
    },
    /// The addressed shard failed recovery and is quarantined: reads and
    /// writes on it refuse while the remaining shards keep serving.
    ShardQuarantined {
        /// Index of the quarantined shard.
        shard: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            RecoveryError::UnsupportedVersion { version } => {
                write!(f, "unsupported snapshot version {version} (expected {VERSION})")
            }
            RecoveryError::Truncated { offset } => {
                write!(f, "input truncated at byte {offset}")
            }
            RecoveryError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            RecoveryError::CorruptSnapshot { offset } => {
                write!(f, "corrupt snapshot structure at byte {offset}")
            }
            RecoveryError::CorruptWal { offset } => {
                write!(f, "corrupt WAL record at byte {offset}")
            }
            RecoveryError::DataLineOutOfRange { line } => {
                write!(f, "data line {line} outside the snapshot geometry")
            }
            RecoveryError::CounterLineOutOfRange { level, line_idx } => {
                write!(f, "counter line {line_idx} at level {level} outside the snapshot geometry")
            }
            RecoveryError::MalformedLine(err) => {
                write!(f, "counter-line image failed to decode: {err}")
            }
            RecoveryError::Integrity(err) => {
                write!(f, "restored state failed verification: {err}")
            }
            RecoveryError::ShardPlan(err) => {
                write!(f, "sharded snapshot header is unusable: {err}")
            }
            RecoveryError::ShardMismatch { shard } => {
                write!(f, "shard {shard} snapshot disagrees with the sharded header")
            }
            RecoveryError::CorruptSeal { offset } => {
                write!(f, "corrupt epoch seal at byte {offset}")
            }
            RecoveryError::ShardWalCount { expected, got } => {
                write!(f, "sharded recovery needs {expected} per-shard WALs, got {got}")
            }
            RecoveryError::ShardQuarantined { shard } => {
                write!(f, "shard {shard} is quarantined after failed recovery")
            }
        }
    }
}

impl Error for RecoveryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecoveryError::MalformedLine(err) => Some(err),
            RecoveryError::Integrity(err) => Some(err),
            RecoveryError::ShardPlan(err) => Some(err),
            _ => None,
        }
    }
}

impl From<Truncated> for RecoveryError {
    fn from(t: Truncated) -> Self {
        RecoveryError::Truncated { offset: t.offset }
    }
}

/// Encodes a published root for the proof-verification boundary: magic,
/// version, the 64-bit root, and an FNV checksum over the preceding
/// bytes. 24 bytes — the only state a [`crate::proof`] verifier needs.
#[must_use]
pub fn save_root(root: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&MAGIC_ROOT);
    w.u32(VERSION);
    w.u64(root);
    let mut out = w.into_bytes();
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a [`save_root`] artifact.
///
/// # Errors
///
/// Returns a typed [`RecoveryError`] on bad magic, version, truncation,
/// checksum mismatch, or trailing bytes.
pub fn load_root(bytes: &[u8]) -> Result<u64, RecoveryError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(RecoveryError::from)? != MAGIC_ROOT {
        return Err(RecoveryError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(RecoveryError::UnsupportedVersion { version });
    }
    let root = r.u64()?;
    let stored = r.u64()?;
    if fnv1a(&bytes[..16]) != stored {
        return Err(RecoveryError::ChecksumMismatch { section: SEC_ROOT });
    }
    if !r.is_exhausted() {
        return Err(RecoveryError::CorruptSnapshot { offset: r.offset() });
    }
    Ok(root)
}

pub(crate) fn write_org(w: &mut ByteWriter, org: CounterOrg) {
    match org {
        CounterOrg::Split { arity } => {
            w.u8(0);
            w.u32(arity as u32);
        }
        CounterOrg::Morph(mode) => {
            w.u8(1);
            w.u8(match mode {
                MorphMode::ZccOnly => 0,
                MorphMode::ZccRebase => 1,
                MorphMode::SingleBase => 2,
            });
        }
    }
}

pub(crate) fn read_org(r: &mut ByteReader<'_>) -> Result<CounterOrg, RecoveryError> {
    let offset = r.offset();
    match r.u8()? {
        0 => {
            let arity = r.u32()? as usize;
            // SplitConfig supports minor widths down to arity 8 per line;
            // 0 or a non-divisor would panic inside the constructor.
            if arity == 0 || arity > 1024 || !arity.is_power_of_two() {
                return Err(RecoveryError::CorruptSnapshot { offset });
            }
            Ok(CounterOrg::Split { arity })
        }
        1 => {
            let mode = match r.u8()? {
                0 => MorphMode::ZccOnly,
                1 => MorphMode::ZccRebase,
                2 => MorphMode::SingleBase,
                _ => return Err(RecoveryError::CorruptSnapshot { offset }),
            };
            Ok(CounterOrg::Morph(mode))
        }
        _ => Err(RecoveryError::CorruptSnapshot { offset }),
    }
}

pub(crate) fn write_config(w: &mut ByteWriter, config: &TreeConfig) {
    w.str(config.name());
    write_org(w, config.org(0));
    let orgs = config.tree_orgs();
    w.u32(orgs.len() as u32);
    for &org in orgs {
        write_org(w, org);
    }
}

pub(crate) fn read_config(r: &mut ByteReader<'_>) -> Result<TreeConfig, RecoveryError> {
    let name = r.str()?.to_string();
    let enc_org = read_org(r)?;
    let offset = r.offset();
    let count = r.u32()? as usize;
    // At least one tree org (the constructor's invariant) and a sane bound
    // so a corrupt count cannot drive a giant allocation.
    if count == 0 || count > 64 {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }
    let mut tree_orgs = Vec::with_capacity(count);
    for _ in 0..count {
        tree_orgs.push(read_org(r)?);
    }
    Ok(TreeConfig::new(name, enc_org, tree_orgs))
}

pub(crate) fn write_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

pub(crate) fn read_section<'a>(
    r: &mut ByteReader<'a>,
    expect: u32,
) -> Result<ByteReader<'a>, RecoveryError> {
    let offset = r.offset();
    let tag = r.u32()?;
    if tag != expect {
        return Err(RecoveryError::CorruptSnapshot { offset });
    }
    let len = r.u64()?;
    let len = usize::try_from(len).map_err(|_| RecoveryError::CorruptSnapshot { offset })?;
    let payload = r.bytes(len)?;
    let stored = r.u64()?;
    if fnv1a(payload) != stored {
        return Err(RecoveryError::ChecksumMismatch { section: tag });
    }
    Ok(ByteReader::new(payload))
}

/// A fully-consumed section: trailing payload bytes are corruption.
fn expect_exhausted(r: &ByteReader<'_>) -> Result<(), RecoveryError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(RecoveryError::CorruptSnapshot { offset: r.offset() })
    }
}

/// Serializes the complete state of `mem` into a snapshot.
///
/// The output is deterministic: equal memory states serialize
/// byte-identically regardless of the write history that produced them.
#[must_use]
pub fn save_memory(mem: &SecureMemory) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    let mut w = ByteWriter::new();
    write_config(&mut w, mem.config());
    write_section(&mut out, SEC_CONFIG, &w.into_bytes());

    let mut w = ByteWriter::new();
    w.u64(mem.geometry().memory_bytes());
    w.bytes(&mem.key());
    w.u64(mem.reencryptions());
    write_section(&mut out, SEC_STATE, &w.into_bytes());

    let mut w = ByteWriter::new();
    let data = mem.data_store();
    w.u64(data.len());
    for (line, ciphertext) in data.iter() {
        w.u64(line);
        w.bytes(ciphertext);
    }
    write_section(&mut out, SEC_DATA, &w.into_bytes());

    let mut w = ByteWriter::new();
    let macs = mem.mac_store();
    w.u64(macs.len());
    for (line, &mac) in macs.iter() {
        w.u64(line);
        w.u64(mac);
    }
    write_section(&mut out, SEC_MACS, &w.into_bytes());

    let mut w = ByteWriter::new();
    w.u32(mem.level_stores().len() as u32);
    for store in mem.level_stores() {
        w.u64(store.len());
        for (line_idx, line) in store.iter() {
            w.u64(line_idx);
            w.bytes(&line.encode());
        }
    }
    write_section(&mut out, SEC_LEVELS, &w.into_bytes());

    out
}

/// Deserializes a [`save_memory`] snapshot.
///
/// Restores state verbatim *without* verifying it; [`recover`] layers WAL
/// replay and full verification on top.
///
/// # Errors
///
/// Returns a [`RecoveryError`] describing the first problem found: bad
/// magic or version, truncation, checksum mismatch, structural corruption,
/// out-of-range indices, or undecodable counter images.
pub fn load_memory(bytes: &[u8]) -> Result<SecureMemory, RecoveryError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(|_| RecoveryError::BadMagic)? != MAGIC {
        return Err(RecoveryError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(RecoveryError::UnsupportedVersion { version });
    }

    let mut sec = read_section(&mut r, SEC_CONFIG)?;
    let config = read_config(&mut sec)?;
    expect_exhausted(&sec)?;

    let mut sec = read_section(&mut r, SEC_STATE)?;
    let size_offset = sec.offset();
    let memory_bytes = sec.u64()?;
    let key: [u8; 16] = sec
        .bytes(16)?
        .try_into()
        .map_err(|_| RecoveryError::CorruptSnapshot { offset: size_offset })?;
    let reencryptions = sec.u64()?;
    expect_exhausted(&sec)?;
    if memory_bytes == 0
        || memory_bytes % CACHELINE_BYTES as u64 != 0
        || memory_bytes > MAX_MEMORY_BYTES
    {
        return Err(RecoveryError::CorruptSnapshot { offset: size_offset });
    }

    let mut mem = SecureMemory::new(config, memory_bytes, key);
    mem.set_reencryptions(reencryptions);

    let mut sec = read_section(&mut r, SEC_DATA)?;
    let count = sec.u64()?;
    for _ in 0..count {
        let line = sec.u64()?;
        let ciphertext = sec.line()?;
        if line >= mem.geometry().data_lines() {
            return Err(RecoveryError::DataLineOutOfRange { line });
        }
        mem.restore_ciphertext(line, ciphertext);
    }
    expect_exhausted(&sec)?;

    let mut sec = read_section(&mut r, SEC_MACS)?;
    let count = sec.u64()?;
    for _ in 0..count {
        let line = sec.u64()?;
        let mac = sec.u64()?;
        if line >= mem.geometry().data_lines() {
            return Err(RecoveryError::DataLineOutOfRange { line });
        }
        mem.restore_mac(line, mac);
    }
    expect_exhausted(&sec)?;

    let mut sec = read_section(&mut r, SEC_LEVELS)?;
    let levels_offset = sec.offset();
    let n_levels = sec.u32()? as usize;
    if n_levels != mem.geometry().levels().len() {
        return Err(RecoveryError::CorruptSnapshot { offset: levels_offset });
    }
    for level in 0..n_levels {
        let count = sec.u64()?;
        let level_lines = mem.geometry().levels()[level].lines;
        for _ in 0..count {
            let line_idx = sec.u64()?;
            let image = sec.line()?;
            if line_idx >= level_lines {
                return Err(RecoveryError::CounterLineOutOfRange { level, line_idx });
            }
            mem.restore_counter_line(level, line_idx, &image)
                .map_err(RecoveryError::MalformedLine)?;
        }
    }
    expect_exhausted(&sec)?;
    expect_exhausted(&r)?;
    Ok(mem)
}

/// Rebuilds a memory from a snapshot plus any prefix of its WAL, then
/// proves the result: replays every committed transaction and runs
/// [`SecureMemory::verify_all`] bottom-up before returning.
///
/// # Errors
///
/// Returns a [`RecoveryError`]: snapshot problems from [`load_memory`],
/// [`RecoveryError::CorruptWal`] for damaged (not merely torn) log
/// records, range errors for records outside the geometry, and
/// [`RecoveryError::Integrity`] when the restored tree fails MAC
/// verification.
pub fn recover(snapshot: &[u8], wal_bytes: &[u8]) -> Result<SecureMemory, RecoveryError> {
    let mut mem = load_memory(snapshot)?;
    for txn in wal::replay(wal_bytes)? {
        apply_wal_txn(&mut mem, &txn)?;
    }
    mem.verify_all().map_err(RecoveryError::Integrity)?;
    Ok(mem)
}

/// Applies one committed WAL transaction's post-images to `mem`.
///
/// # Errors
///
/// Range errors for records outside the geometry and
/// [`RecoveryError::MalformedLine`] for undecodable counter images.
pub(crate) fn apply_wal_txn(
    mem: &mut SecureMemory,
    txn: &WalTransaction,
) -> Result<(), RecoveryError> {
    for record in &txn.records {
        match record {
            WalRecord::DataLine { line, ciphertext, mac } => {
                let line = *line;
                if line >= mem.geometry().data_lines() {
                    return Err(RecoveryError::DataLineOutOfRange { line });
                }
                mem.restore_data_line(line, *ciphertext, *mac);
            }
            WalRecord::CounterLine { level, line_idx, image } => {
                let level = *level as usize;
                let line_idx = *line_idx;
                let level_lines = mem
                    .geometry()
                    .levels()
                    .get(level)
                    .map(|l| l.lines)
                    .unwrap_or(0);
                if line_idx >= level_lines {
                    return Err(RecoveryError::CounterLineOutOfRange { level, line_idx });
                }
                mem.restore_counter_line(level, line_idx, image)
                    .map_err(RecoveryError::MalformedLine)?;
            }
            WalRecord::Stats { reencryptions } => {
                mem.set_reencryptions(*reencryptions);
            }
            // `wal::replay` consumes transaction boundaries and hoists seals
            // out of the transaction stream; committed transactions carry
            // only mutation records.
            WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Seal(_) => {
                unreachable!("replay strips transaction boundaries")
            }
        }
    }
    Ok(())
}

/// Serializes a sharded memory as an `MTSH` container: a checksummed
/// header (partition geometry + tenant key) followed by one full
/// [`save_memory`] snapshot per shard.
///
/// Like [`save_memory`], the output is a pure function of state: equal
/// sharded memories serialize byte-identically.
#[must_use]
pub fn save_sharded(memory: &ShardedMemory) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_SHARDED);
    out.extend_from_slice(&VERSION.to_le_bytes());

    let plan = memory.plan();
    let mut w = ByteWriter::new();
    w.u64(plan.memory_bytes());
    w.u32(plan.shards() as u32);
    w.bytes(&memory.tenant_key());
    write_section(&mut out, SEC_SHARD_HEADER, &w.into_bytes());

    for shard in 0..plan.shards() {
        write_section(&mut out, SEC_SHARD, &save_memory(memory.shard(shard)));
    }
    out
}

/// Rebuilds a sharded memory from a [`save_sharded`] container, verifying
/// every shard subtree bottom-up and cross-checking each shard against the
/// header's partition before recombining the top root.
///
/// # Errors
///
/// Returns a [`RecoveryError`]: container framing problems
/// ([`RecoveryError::BadMagic`], truncation, checksums),
/// [`RecoveryError::ShardPlan`] for an impossible header,
/// per-shard snapshot errors from [`load_memory`],
/// [`RecoveryError::ShardMismatch`] when a shard's geometry or derived key
/// disagrees with the header (a blend of different tenants or layouts),
/// and [`RecoveryError::Integrity`] when a restored shard fails MAC
/// verification. Never panics, never returns a partially-blended state.
pub fn recover_sharded(bytes: &[u8]) -> Result<ShardedMemory, RecoveryError> {
    let (plan, key, sections) = parse_sharded(bytes)?;
    let mut shards = Vec::with_capacity(plan.shards());
    for (shard, section) in sections.iter().enumerate() {
        let restored = load_memory(section)?;
        if restored.geometry().memory_bytes() != plan.shard_memory_bytes(shard)
            || restored.key() != ShardedMemory::derived_key(key, shard)
        {
            return Err(RecoveryError::ShardMismatch { shard });
        }
        restored.verify_all().map_err(RecoveryError::Integrity)?;
        shards.push(restored);
    }
    Ok(ShardedMemory::from_parts(plan, key, shards))
}

/// Parsed `MTSH` framing: partition plan, tenant key, and the raw
/// per-shard snapshot payloads (not yet decoded).
pub(crate) type ParsedShards<'a> = (ShardPlan, [u8; 16], Vec<&'a [u8]>);

/// Parses an `MTSH` container's framing: validates the header and section
/// checksums and returns the partition plan, tenant key, and the raw
/// per-shard snapshot payloads (not yet decoded).
pub(crate) fn parse_sharded(bytes: &[u8]) -> Result<ParsedShards<'_>, RecoveryError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(4).map_err(|_| RecoveryError::BadMagic)? != MAGIC_SHARDED {
        return Err(RecoveryError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(RecoveryError::UnsupportedVersion { version });
    }

    let mut sec = read_section(&mut r, SEC_SHARD_HEADER)?;
    let header_offset = sec.offset();
    let memory_bytes = sec.u64()?;
    let shard_count = sec.u32()? as usize;
    let key: [u8; 16] = sec
        .bytes(16)?
        .try_into()
        .map_err(|_| RecoveryError::CorruptSnapshot { offset: header_offset })?;
    expect_exhausted(&sec)?;
    if memory_bytes > MAX_MEMORY_BYTES {
        return Err(RecoveryError::CorruptSnapshot { offset: header_offset });
    }
    let plan = ShardPlan::new(memory_bytes, shard_count).map_err(RecoveryError::ShardPlan)?;

    let mut sections = Vec::with_capacity(plan.shards());
    for _ in 0..plan.shards() {
        let mut sec = read_section(&mut r, SEC_SHARD)?;
        let len = sec.remaining();
        sections.push(sec.bytes(len)?);
    }
    expect_exhausted(&r)?;
    Ok((plan, key, sections))
}

/// Per-shard outcome of [`verify_shards`]: what the shard claims to be and
/// whether its restored subtree proved out.
#[derive(Debug, Clone)]
pub struct ShardVerifyReport {
    /// Shard index within the container.
    pub shard: usize,
    /// Protected bytes the shard's snapshot declares.
    pub memory_bytes: u64,
    /// Tree levels in the shard's geometry (0 when the snapshot failed to
    /// load at all).
    pub levels: usize,
    /// Subtree root digest after restore (`None` when the shard failed).
    pub root_digest: Option<u64>,
    /// `Ok(())` when the shard loaded, matched the header's partition, and
    /// passed full bottom-up verification; the typed failure otherwise.
    pub status: Result<(), RecoveryError>,
}

/// Verifies every shard of an `MTSH` container independently, reporting
/// per-shard results instead of stopping at the first failure.
///
/// # Errors
///
/// Container-level framing problems (bad magic, truncation, checksums, an
/// impossible header) are fatal and returned as `Err`; per-shard failures
/// are captured in each report's `status`.
pub fn verify_shards(bytes: &[u8]) -> Result<Vec<ShardVerifyReport>, RecoveryError> {
    let (plan, key, sections) = parse_sharded(bytes)?;
    let mut reports = Vec::with_capacity(plan.shards());
    for (shard, section) in sections.iter().enumerate() {
        let report = match load_memory(section) {
            Err(err) => ShardVerifyReport {
                shard,
                memory_bytes: plan.shard_memory_bytes(shard),
                levels: 0,
                root_digest: None,
                status: Err(err),
            },
            Ok(restored) => {
                let status = if restored.geometry().memory_bytes()
                    != plan.shard_memory_bytes(shard)
                    || restored.key() != ShardedMemory::derived_key(key, shard)
                {
                    Err(RecoveryError::ShardMismatch { shard })
                } else {
                    restored.verify_all().map_err(RecoveryError::Integrity)
                };
                ShardVerifyReport {
                    shard,
                    memory_bytes: restored.geometry().memory_bytes(),
                    levels: restored.geometry().levels().len(),
                    root_digest: status.is_ok().then(|| restored.root_digest()),
                    status,
                }
            }
        };
        reports.push(report);
    }
    Ok(reports)
}

/// A [`SecureMemory`] whose writes are journaled to a WAL as committed
/// transactions, so the pair `(last snapshot, WAL)` always recovers to a
/// consistent, verifying state — no matter where a crash truncates the
/// log.
///
/// Each [`PersistentMemory::write`] appends one transaction: `Begin`, the
/// post-images of every data and counter line the write touched (collected
/// via the memory's mutation journal), then `Commit`. The WAL grows until
/// [`PersistentMemory::checkpoint`] folds it into a fresh snapshot.
#[derive(Debug, Clone)]
pub struct PersistentMemory {
    inner: SecureMemory,
    wal: WalWriter,
    next_seq: u64,
}

impl PersistentMemory {
    /// Creates a fresh journaled memory (see [`SecureMemory::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is zero or not cacheline-aligned.
    #[must_use]
    pub fn new(config: TreeConfig, memory_bytes: u64, key: [u8; 16]) -> Self {
        PersistentMemory::from_memory(SecureMemory::new(config, memory_bytes, key))
    }

    /// Wraps an existing memory (e.g. one just restored by [`recover`]).
    /// The WAL starts empty: the caller is expected to pair it with a
    /// snapshot of `inner` taken at this point.
    #[must_use]
    pub fn from_memory(mut inner: SecureMemory) -> Self {
        inner.begin_journal();
        PersistentMemory { inner, wal: WalWriter::new(), next_seq: 1 }
    }

    /// Writes a plaintext line and logs the mutation as one committed WAL
    /// transaction.
    pub fn write(&mut self, data_line: u64, plaintext: &[u8; CACHELINE_BYTES]) {
        self.inner.write(data_line, plaintext);
        let journal = self.inner.take_journal();
        let seq = self.next_seq;
        self.wal.append(&WalRecord::Begin { seq });
        for line in journal.data_lines {
            if let Some((ciphertext, mac)) = self.inner.data_line_state(line) {
                self.wal.append(&WalRecord::DataLine { line, ciphertext, mac });
            }
        }
        for (level, line_idx) in journal.counter_lines {
            if let Some(image) = self.inner.counter_line_image(level, line_idx) {
                self.wal.append(&WalRecord::CounterLine {
                    level: level as u32,
                    line_idx,
                    image,
                });
            }
        }
        self.wal.append(&WalRecord::Commit { seq });
        self.next_seq += 1;
    }

    /// Reads and verifies a line (see [`SecureMemory::read`]).
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] when tampering or replay is detected.
    pub fn read(&self, data_line: u64) -> Result<[u8; CACHELINE_BYTES], IntegrityError> {
        self.inner.read(data_line)
    }

    /// The wrapped memory.
    #[must_use]
    pub fn memory(&self) -> &SecureMemory {
        &self.inner
    }

    /// Unwraps the memory, discarding the log.
    #[must_use]
    pub fn into_memory(self) -> SecureMemory {
        self.inner
    }

    /// The WAL bytes accumulated since the last checkpoint.
    #[must_use]
    pub fn wal_bytes(&self) -> &[u8] {
        self.wal.bytes()
    }

    /// Serializes the current state as a fresh snapshot and clears the WAL
    /// (its transactions are now folded into the snapshot).
    pub fn checkpoint(&mut self) -> Vec<u8> {
        let snapshot = save_memory(&self.inner);
        self.wal.clear();
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;
    const KEY: [u8; 16] = [3u8; 16];

    fn populated(config: TreeConfig) -> SecureMemory {
        let mut mem = SecureMemory::new(config, MIB, KEY);
        for i in 0..40u64 {
            mem.write(i * 7 % 128, &[i as u8; CACHELINE_BYTES]);
        }
        mem
    }

    #[test]
    fn snapshot_roundtrips_and_is_deterministic() {
        for config in [TreeConfig::sc64(), TreeConfig::vault(), TreeConfig::morphtree()] {
            let mem = populated(config.clone());
            let snap = save_memory(&mem);
            let restored = load_memory(&snap).unwrap();
            assert_eq!(restored.config().name(), config.name());
            assert_eq!(restored.reencryptions(), mem.reencryptions());
            restored.verify_all().unwrap();
            for i in 0..128u64 {
                assert_eq!(restored.read(i).unwrap(), mem.read(i).unwrap(), "line {i}");
            }
            // Serialization is a pure function of state.
            assert_eq!(save_memory(&restored), snap, "{}", config.name());
        }
    }

    #[test]
    fn recover_with_empty_wal_verifies_the_snapshot() {
        let mem = populated(TreeConfig::morphtree());
        let snap = save_memory(&mem);
        let recovered = recover(&snap, &[]).unwrap();
        assert_eq!(save_memory(&recovered), snap);
    }

    #[test]
    fn every_wal_prefix_recovers_to_the_committed_write_count() {
        let base = populated(TreeConfig::morphtree());
        let snapshot = save_memory(&base);

        // Journaled writer on one clone; a tracking clone captures the
        // expected state after each committed write.
        let mut writer = PersistentMemory::from_memory(base.clone());
        let mut tracker = base;
        let mut states = vec![save_memory(writer.memory())];
        for i in 0..12u64 {
            let body = [0x80 | i as u8; CACHELINE_BYTES];
            writer.write(i * 11 % 128, &body);
            tracker.write(i * 11 % 128, &body);
            states.push(save_memory(&tracker));
        }
        assert_eq!(states.last().unwrap(), &save_memory(writer.memory()));

        let wal = writer.wal_bytes();
        for cut in 0..=wal.len() {
            let prefix = &wal[..cut];
            let committed = replay(prefix).unwrap().len();
            let recovered = recover(&snapshot, prefix)
                .unwrap_or_else(|e| panic!("cut {cut} must recover: {e}"));
            assert_eq!(
                save_memory(&recovered),
                states[committed],
                "cut {cut}: recovered state is not the {committed}-write state"
            );
        }
    }

    #[test]
    fn checkpoint_folds_the_wal() {
        let mut writer = PersistentMemory::new(TreeConfig::sc64(), MIB, KEY);
        writer.write(5, &[1; CACHELINE_BYTES]);
        assert!(!writer.wal_bytes().is_empty());
        let snap = writer.checkpoint();
        assert!(writer.wal_bytes().is_empty());
        let recovered = recover(&snap, writer.wal_bytes()).unwrap();
        assert_eq!(recovered.read(5).unwrap(), [1; CACHELINE_BYTES]);
    }

    #[test]
    fn snapshot_header_errors_are_typed() {
        let mem = populated(TreeConfig::sc64());
        let snap = save_memory(&mem);

        assert_eq!(load_memory(b"nope").unwrap_err(), RecoveryError::BadMagic);
        assert_eq!(load_memory(&[]).unwrap_err(), RecoveryError::BadMagic);

        let mut wrong_version = snap.clone();
        wrong_version[4] = 9;
        assert_eq!(
            load_memory(&wrong_version).unwrap_err(),
            RecoveryError::UnsupportedVersion { version: 9 }
        );

        // Flip a byte inside the CONFIG payload: its checksum catches it.
        let mut corrupt = snap.clone();
        corrupt[8 + 12 + 2] ^= 0xff;
        assert_eq!(
            load_memory(&corrupt).unwrap_err(),
            RecoveryError::ChecksumMismatch { section: SEC_CONFIG }
        );

        // Truncation anywhere is typed, never a panic.
        for cut in 0..snap.len() {
            let err = load_memory(&snap[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    RecoveryError::BadMagic
                        | RecoveryError::Truncated { .. }
                        | RecoveryError::CorruptSnapshot { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn tampered_snapshot_state_fails_verification() {
        // Re-point a ciphertext inside the DATA section while fixing up the
        // section checksum: structurally valid, semantically inconsistent.
        let mut mem = populated(TreeConfig::sc64());
        mem.tamper_raw(0, 0, 0xff).unwrap();
        let snap = save_memory(&mem);
        // load_memory restores it verbatim...
        load_memory(&snap).unwrap();
        // ...but recover() refuses to hand it over.
        assert!(matches!(
            recover(&snap, &[]).unwrap_err(),
            RecoveryError::Integrity(IntegrityError::DataMac { .. })
        ));
    }

    fn populated_sharded(shards: usize) -> ShardedMemory {
        let mut memory =
            ShardedMemory::new(TreeConfig::morphtree(), MIB, KEY, shards).unwrap();
        for i in 0..60u64 {
            memory.write(i * 251 % memory.plan().data_lines(), &[i as u8; CACHELINE_BYTES]);
        }
        memory
    }

    #[test]
    fn sharded_snapshot_roundtrips_and_is_deterministic() {
        for shards in [1usize, 3, 8] {
            let mut memory = populated_sharded(shards);
            let root = memory.combined_root();
            let snap = save_sharded(&memory);
            let mut restored = recover_sharded(&snap).unwrap();
            assert_eq!(restored.plan(), memory.plan(), "{shards} shards");
            assert_eq!(restored.combined_root(), root, "{shards} shards");
            for i in 0..60u64 {
                let line = i * 251 % memory.plan().data_lines();
                assert_eq!(restored.read(line).unwrap(), memory.read(line).unwrap());
            }
            restored.verify_all().unwrap();
            assert_eq!(save_sharded(&restored), snap, "{shards} shards: not deterministic");
        }
    }

    #[test]
    fn sharded_container_errors_are_typed() {
        let memory = populated_sharded(4);
        let snap = save_sharded(&memory);

        assert_eq!(recover_sharded(b"nope").unwrap_err(), RecoveryError::BadMagic);
        // A plain MTSN snapshot is not a sharded container.
        let plain = save_memory(memory.shard(0));
        assert_eq!(recover_sharded(&plain).unwrap_err(), RecoveryError::BadMagic);

        // Truncation anywhere is typed, never a panic.
        for cut in (0..snap.len()).step_by(7) {
            assert!(recover_sharded(&snap[..cut]).is_err(), "cut {cut} must not recover");
        }

        // An impossible header partition is a ShardPlan error: set the
        // declared shard count to zero and fix the header checksum.
        let mut zero_shards = snap.clone();
        let header_payload = 8 + 4 + 8; // after magic+version and tag+len
        zero_shards[header_payload + 8..header_payload + 12].copy_from_slice(&0u32.to_le_bytes());
        let header_len = 8 + 4 + 16;
        let crc = fnv1a(&zero_shards[header_payload..header_payload + header_len]);
        zero_shards[header_payload + header_len..header_payload + header_len + 8]
            .copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            recover_sharded(&zero_shards).unwrap_err(),
            RecoveryError::ShardPlan(ShardError::ZeroShards)
        );
    }

    #[test]
    fn sharded_recovery_refuses_blended_tenants() {
        // Splice shard sections from a different tenant key into a valid
        // container: every framing checksum still passes, but the derived
        // keys cannot match the header's tenant key.
        let ours = populated_sharded(2);
        let mut theirs = ShardedMemory::new(TreeConfig::morphtree(), MIB, [9u8; 16], 2).unwrap();
        theirs.write(0, &[1; CACHELINE_BYTES]);

        let mut blended = Vec::new();
        blended.extend_from_slice(&MAGIC_SHARDED);
        blended.extend_from_slice(&VERSION.to_le_bytes());
        let mut w = ByteWriter::new();
        w.u64(ours.plan().memory_bytes());
        w.u32(ours.plan().shards() as u32);
        w.bytes(&ours.tenant_key());
        write_section(&mut blended, SEC_SHARD_HEADER, &w.into_bytes());
        write_section(&mut blended, SEC_SHARD, &save_memory(theirs.shard(0)));
        write_section(&mut blended, SEC_SHARD, &save_memory(theirs.shard(1)));

        assert_eq!(
            recover_sharded(&blended).unwrap_err(),
            RecoveryError::ShardMismatch { shard: 0 }
        );
    }

    #[test]
    fn sharded_recovery_refuses_wrong_geometry() {
        // Header claims 2 shards over MIB, but the embedded shards were cut
        // for a different partition width.
        let donor = populated_sharded(4);
        let mut wrong = Vec::new();
        wrong.extend_from_slice(&MAGIC_SHARDED);
        wrong.extend_from_slice(&VERSION.to_le_bytes());
        let mut w = ByteWriter::new();
        w.u64(donor.plan().memory_bytes());
        w.u32(2);
        w.bytes(&donor.tenant_key());
        write_section(&mut wrong, SEC_SHARD_HEADER, &w.into_bytes());
        write_section(&mut wrong, SEC_SHARD, &save_memory(donor.shard(0)));
        write_section(&mut wrong, SEC_SHARD, &save_memory(donor.shard(1)));
        assert_eq!(
            recover_sharded(&wrong).unwrap_err(),
            RecoveryError::ShardMismatch { shard: 0 }
        );
    }

    #[test]
    fn sharded_recovery_verifies_every_shard() {
        let mut memory = populated_sharded(2);
        let victim = memory.plan().shard_base(1);
        memory.write(victim, &[7; CACHELINE_BYTES]);
        memory.tamper_raw(victim, 3, 0xff).unwrap();
        let snap = save_sharded(&memory);
        assert!(matches!(
            recover_sharded(&snap).unwrap_err(),
            RecoveryError::Integrity(IntegrityError::DataMac { .. })
        ));
    }

    #[test]
    fn oversized_declared_memory_is_corruption_not_oom() {
        let mem = SecureMemory::new(TreeConfig::sc64(), MIB, KEY);
        let snap = save_memory(&mem);
        // STATE is the second section; its payload starts after the CONFIG
        // section. Find it by parsing the real layout.
        let mut r = ByteReader::new(&snap);
        r.bytes(8).unwrap(); // magic + version
        let _ = read_section(&mut r, SEC_CONFIG).unwrap();
        let state_payload_at = r.offset() + 4 + 8;
        let mut huge = snap.clone();
        huge[state_payload_at..state_payload_at + 8]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        // Fix the section checksum so only the size check can reject it.
        let state_len = 8 + 16 + 8;
        let crc = fnv1a(&huge[state_payload_at..state_payload_at + state_len]);
        huge[state_payload_at + state_len..state_payload_at + state_len + 8]
            .copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            load_memory(&huge).unwrap_err(),
            RecoveryError::CorruptSnapshot { .. }
        ));
    }

    #[test]
    fn root_artifact_round_trips() {
        for root in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
            let bytes = save_root(root);
            assert_eq!(bytes.len(), 24);
            assert_eq!(load_root(&bytes).unwrap(), root);
        }
    }

    #[test]
    fn root_artifact_rejects_every_single_byte_flip() {
        let bytes = save_root(0x1234_5678_9abc_def0);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(load_root(&bad).is_err(), "flip at byte {i} accepted");
        }
        // Truncation and trailing garbage are typed errors too.
        assert!(matches!(
            load_root(&bytes[..bytes.len() - 1]).unwrap_err(),
            RecoveryError::Truncated { .. }
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            load_root(&long).unwrap_err(),
            RecoveryError::CorruptSnapshot { .. }
        ));
        assert!(matches!(load_root(b"MTSN....").unwrap_err(), RecoveryError::BadMagic));
    }
}
