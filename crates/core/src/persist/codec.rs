//! Little-endian byte codec primitives shared by the snapshot and WAL
//! formats.
//!
//! Everything persisted by [`crate::persist`] is built from these few
//! fixed-width primitives, so the on-disk layout is specified by
//! construction: no padding, no endianness surprises, no
//! platform-dependent sizes. Floats are stored as raw IEEE-754 bit
//! patterns so a resumed run reproduces byte-identical figures.

/// Offset-carrying truncation marker returned by [`ByteReader`] when the
/// input ends before a field does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncated {
    /// Byte offset at which the missing field started.
    pub offset: usize,
}

/// Appends fixed-width little-endian fields to a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the bytes written.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern (exact round-trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends raw bytes with no length prefix (fixed-width fields).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }
}

/// Reads fixed-width little-endian fields from a byte slice, tracking the
/// current offset so truncation errors can name where the input ran out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn chunk(&mut self, n: usize) -> Result<&'a [u8], Truncated> {
        let start = self.pos;
        let end = start.checked_add(n).ok_or(Truncated { offset: start })?;
        let bytes = self.buf.get(start..end).ok_or(Truncated { offset: start })?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when the input is exhausted.
    pub fn u8(&mut self) -> Result<u8, Truncated> {
        Ok(self.chunk(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when fewer than four bytes remain.
    pub fn u32(&mut self) -> Result<u32, Truncated> {
        let offset = self.pos;
        let bytes = self.chunk(4)?;
        bytes
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| Truncated { offset })
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when fewer than eight bytes remain.
    pub fn u64(&mut self) -> Result<u64, Truncated> {
        let offset = self.pos;
        let bytes = self.chunk(8)?;
        bytes
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| Truncated { offset })
    }

    /// Reads an `f64` stored as a raw bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when fewer than eight bytes remain.
    pub fn f64(&mut self) -> Result<f64, Truncated> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (any nonzero value reads as `true`).
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when the input is exhausted.
    pub fn bool(&mut self) -> Result<bool, Truncated> {
        Ok(self.u8()? != 0)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], Truncated> {
        self.chunk(n)
    }

    /// Reads a fixed 64-byte line image.
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] when fewer than 64 bytes remain.
    pub fn line(&mut self) -> Result<[u8; crate::CACHELINE_BYTES], Truncated> {
        let offset = self.pos;
        self.chunk(crate::CACHELINE_BYTES)?
            .try_into()
            .map_err(|_| Truncated { offset })
    }

    /// Reads a length-prefixed UTF-8 string (invalid UTF-8 reads as
    /// truncation at the string's offset — the bytes are not what the
    /// writer produced).
    ///
    /// # Errors
    ///
    /// Returns [`Truncated`] on exhaustion or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, Truncated> {
        let len = self.u32()? as usize;
        let offset = self.pos;
        std::str::from_utf8(self.chunk(len)?).map_err(|_| Truncated { offset })
    }
}

/// FNV-1a 64-bit checksum — fast, dependency-free, and plenty to detect
/// the torn or bit-rotted writes this layer guards against (it is an
/// integrity *accident* detector; the MAC tree handles adversaries).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_reports_the_field_offset() {
        let mut w = ByteWriter::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.u64(), Err(Truncated { offset: 1 }));
        // A failed read does not advance the cursor.
        assert_eq!(r.offset(), 1);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        // Reference value for the empty input (FNV-1a offset basis).
        assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }
}
