//! Write-ahead log of metadata mutations with torn-write detection.
//!
//! # Record framing
//!
//! Each record is framed as
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload...] [crc: u64 LE]
//! ```
//!
//! where `len` counts the kind byte plus the payload, and `crc` is the
//! FNV-1a-64 checksum of those same bytes. Records form transactions:
//!
//! ```text
//! Begin{seq}  (DataLine | CounterLine)*  Commit{seq}
//! ```
//!
//! # Torn-write rules
//!
//! A crash can truncate the log at any byte offset, so replay must accept
//! every prefix of a valid log. The rules, in order of application:
//!
//! 1. **Torn tail** — the log ends before a record's framing completes
//!    (`len` field or `len + crc` bytes missing). The tail is silently
//!    discarded: this is the expected shape of a crash mid-append.
//! 2. **Corrupt record** — a *complete* record whose checksum mismatches,
//!    whose kind is unknown, whose payload is malformed, or which violates
//!    transaction structure (`Commit` without `Begin`, sequence mismatch,
//!    non-monotonic sequences). This is never produced by truncating a
//!    valid log, so it is a hard [`RecoveryError::CorruptWal`] naming the
//!    record's byte offset.
//! 3. **Uncommitted tail transaction** — a `Begin` whose `Commit` never
//!    made it to the log. The whole transaction is discarded; the writer
//!    re-applies it after resume.
//!
//! Together these guarantee: replaying any byte prefix of a valid log
//! yields exactly the committed transaction prefix, and anything else is a
//! typed error — never a panic, never silent divergence.

use crate::persist::codec::{fnv1a, ByteReader, ByteWriter};
use crate::persist::epoch::{EpochSeal, SealPhase};
use crate::persist::RecoveryError;
use crate::CACHELINE_BYTES;

const KIND_BEGIN: u8 = 1;
const KIND_DATA_LINE: u8 = 2;
const KIND_COUNTER_LINE: u8 = 3;
const KIND_COMMIT: u8 = 4;
const KIND_SEAL: u8 = 5;
const KIND_STATS: u8 = 6;

/// One logged metadata mutation (or transaction boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Opens transaction `seq`.
    Begin {
        /// Strictly-increasing transaction sequence number.
        seq: u64,
    },
    /// Post-image of a data line: ciphertext plus its MAC.
    DataLine {
        /// Data line index.
        line: u64,
        /// 64-byte ciphertext after the write.
        ciphertext: [u8; CACHELINE_BYTES],
        /// Data MAC after the write.
        mac: u64,
    },
    /// Post-image of a counter line at some tree level.
    CounterLine {
        /// Tree level (0 = encryption counters).
        level: u32,
        /// Line index within the level.
        line_idx: u64,
        /// Encoded 64-byte counter-line image.
        image: [u8; CACHELINE_BYTES],
    },
    /// Commits transaction `seq`; its records become durable.
    Commit {
        /// Must match the open transaction's `seq`.
        seq: u64,
    },
    /// An epoch boundary: durably pins the subtree root (and, for
    /// commit-phase seals, the cross-shard combined root) so recovery can
    /// anchor on it instead of re-verifying history. Seals live *between*
    /// transactions; a seal inside an open transaction is corruption.
    Seal(EpochSeal),
    /// Post-image of engine statistics that replaying line images cannot
    /// reconstruct (a counter-overflow reencryption rewrites a whole line
    /// group *and* bumps a monotonic counter the snapshot serializes).
    /// Logged inside the transaction whose writes changed the value.
    Stats {
        /// Total line-group reencryptions performed so far.
        reencryptions: u64,
    },
}

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::Begin { seq } => {
                w.u8(KIND_BEGIN);
                w.u64(*seq);
            }
            WalRecord::DataLine { line, ciphertext, mac } => {
                w.u8(KIND_DATA_LINE);
                w.u64(*line);
                w.bytes(ciphertext);
                w.u64(*mac);
            }
            WalRecord::CounterLine { level, line_idx, image } => {
                w.u8(KIND_COUNTER_LINE);
                w.u32(*level);
                w.u64(*line_idx);
                w.bytes(image);
            }
            WalRecord::Commit { seq } => {
                w.u8(KIND_COMMIT);
                w.u64(*seq);
            }
            WalRecord::Seal(seal) => {
                w.u8(KIND_SEAL);
                w.bytes(&seal.encode());
            }
            WalRecord::Stats { reencryptions } => {
                w.u8(KIND_STATS);
                w.u64(*reencryptions);
            }
        }
        w.into_bytes()
    }

    /// Decodes a record body (kind byte + payload). `None` means malformed:
    /// unknown kind, short payload, or trailing bytes.
    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(body);
        let record = match r.u8().ok()? {
            KIND_BEGIN => WalRecord::Begin { seq: r.u64().ok()? },
            KIND_DATA_LINE => WalRecord::DataLine {
                line: r.u64().ok()?,
                ciphertext: r.line().ok()?,
                mac: r.u64().ok()?,
            },
            KIND_COUNTER_LINE => WalRecord::CounterLine {
                level: r.u32().ok()?,
                line_idx: r.u64().ok()?,
                image: r.line().ok()?,
            },
            KIND_COMMIT => WalRecord::Commit { seq: r.u64().ok()? },
            KIND_SEAL => {
                let body = r.bytes(EpochSeal::ENCODED_LEN).ok()?;
                WalRecord::Seal(EpochSeal::decode(body).ok()?)
            }
            KIND_STATS => WalRecord::Stats { reencryptions: r.u64().ok()? },
            _ => return None,
        };
        r.is_exhausted().then_some(record)
    }
}

/// Append-only WAL buffer. The caller owns durability (writing the bytes
/// out); this type owns framing and checksums.
#[derive(Debug, Default, Clone)]
pub struct WalWriter {
    buf: Vec<u8>,
}

impl WalWriter {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        WalWriter::default()
    }

    /// The framed log bytes accumulated so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Log length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one framed record.
    pub fn append(&mut self, record: &WalRecord) {
        let body = record.encode_body();
        self.buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&body);
        self.buf.extend_from_slice(&fnv1a(&body).to_le_bytes());
    }

    /// Discards the log contents (after they are folded into a snapshot).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// A committed transaction recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTransaction {
    /// The transaction's sequence number.
    pub seq: u64,
    /// Mutation records, in append order.
    pub records: Vec<WalRecord>,
}

/// A seal's position within the committed-transaction stream: the seal
/// covers (pins the state after) the first `txns_before` committed
/// transactions of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealPoint {
    /// Number of committed transactions preceding the seal.
    pub txns_before: usize,
    /// The seal record itself.
    pub seal: EpochSeal,
}

/// An epoch-aware replay: the committed transactions plus every seal
/// record and its position.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalEpochs {
    /// Committed transactions, in order (exactly what [`replay`] returns).
    pub txns: Vec<WalTransaction>,
    /// Seal records, in log order, with their transaction positions.
    pub seals: Vec<SealPoint>,
}

/// Replays `bytes`, returning the committed transactions in order.
///
/// Accepts any byte prefix of a valid log (see the module docs for the
/// torn-write rules); a torn tail and a trailing uncommitted transaction
/// are silently discarded. Epoch seals are validated structurally and
/// dropped; use [`replay_epochs`] to observe them.
///
/// # Errors
///
/// Returns [`RecoveryError::CorruptWal`] for a *complete* record that is
/// checksum-invalid, malformed, or structurally out of place — corruption
/// that truncation alone cannot produce.
pub fn replay(bytes: &[u8]) -> Result<Vec<WalTransaction>, RecoveryError> {
    Ok(replay_epochs(bytes)?.txns)
}

/// Replays `bytes` like [`replay`], additionally returning every epoch
/// seal with its position in the committed-transaction stream.
///
/// Structural rules for seals, on top of the module's torn-write rules:
/// a seal inside an open transaction is corruption, and seal ordering must
/// be strictly monotonic — each seal's epoch must exceed the previous
/// seal's, except that a commit-phase seal may follow the prepare-phase
/// seal of the *same* epoch (the two-phase cut). Seal MACs are *not*
/// checked here (replay is keyless); the bounded recovery path
/// authenticates the anchoring seal against the restored memory's key.
///
/// # Errors
///
/// Returns [`RecoveryError::CorruptWal`] under the same rules as
/// [`replay`], including seal-ordering violations.
pub fn replay_epochs(bytes: &[u8]) -> Result<WalEpochs, RecoveryError> {
    let mut committed = Vec::new();
    let mut seals: Vec<SealPoint> = Vec::new();
    let mut open: Option<WalTransaction> = None;
    let mut last_seq: Option<u64> = None;
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining < 4 {
            break; // torn tail: len field incomplete
        }
        let len_bytes: [u8; 4] = match bytes[pos..pos + 4].try_into() {
            Ok(b) => b,
            Err(_) => break,
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let Some(total) = len.checked_add(4 + 8) else {
            return Err(RecoveryError::CorruptWal { offset: pos });
        };
        if remaining < total {
            break; // torn tail: record body or checksum incomplete
        }
        let body = &bytes[pos + 4..pos + 4 + len];
        let crc_bytes: [u8; 8] = bytes[pos + 4 + len..pos + total]
            .try_into()
            .map_err(|_| RecoveryError::CorruptWal { offset: pos })?;
        if fnv1a(body) != u64::from_le_bytes(crc_bytes) {
            return Err(RecoveryError::CorruptWal { offset: pos });
        }
        let record = WalRecord::decode_body(body)
            .ok_or(RecoveryError::CorruptWal { offset: pos })?;
        match (record, &mut open) {
            (WalRecord::Begin { seq }, None) => {
                if last_seq.is_some_and(|last| seq <= last) {
                    return Err(RecoveryError::CorruptWal { offset: pos });
                }
                open = Some(WalTransaction { seq, records: Vec::new() });
            }
            (WalRecord::Begin { .. }, Some(_)) => {
                return Err(RecoveryError::CorruptWal { offset: pos });
            }
            (WalRecord::Commit { seq }, Some(txn)) if seq == txn.seq => {
                last_seq = Some(seq);
                committed.push(open.take().unwrap_or(WalTransaction {
                    seq,
                    records: Vec::new(),
                }));
            }
            (WalRecord::Commit { .. }, _) => {
                return Err(RecoveryError::CorruptWal { offset: pos });
            }
            (WalRecord::Seal(seal), None) => {
                // Strictly monotonic per log: epochs increase, with the
                // one sanctioned same-epoch step Prepare -> Commit.
                let ordered = match seals.last() {
                    None => true,
                    Some(prev) => {
                        seal.epoch > prev.seal.epoch
                            || (seal.epoch == prev.seal.epoch
                                && prev.seal.phase == SealPhase::Prepare
                                && seal.phase == SealPhase::Commit)
                    }
                };
                if !ordered {
                    return Err(RecoveryError::CorruptWal { offset: pos });
                }
                seals.push(SealPoint { txns_before: committed.len(), seal });
            }
            (WalRecord::Seal(_), Some(_)) => {
                return Err(RecoveryError::CorruptWal { offset: pos });
            }
            (record, Some(txn)) => txn.records.push(record),
            (_, None) => {
                return Err(RecoveryError::CorruptWal { offset: pos });
            }
        }
        pos += total;
    }
    // An open transaction at the tail never committed: discard it.
    Ok(WalEpochs { txns: committed, seals })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> WalWriter {
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::Begin { seq: 1 });
        wal.append(&WalRecord::DataLine {
            line: 7,
            ciphertext: [0xab; CACHELINE_BYTES],
            mac: 0x1122_3344_5566_7788,
        });
        wal.append(&WalRecord::CounterLine {
            level: 2,
            line_idx: 3,
            image: [0xcd; CACHELINE_BYTES],
        });
        wal.append(&WalRecord::Commit { seq: 1 });
        wal.append(&WalRecord::Begin { seq: 2 });
        wal.append(&WalRecord::CounterLine {
            level: 0,
            line_idx: 9,
            image: [0x11; CACHELINE_BYTES],
        });
        wal.append(&WalRecord::Commit { seq: 2 });
        wal
    }

    #[test]
    fn full_log_replays_all_committed_transactions() {
        let wal = sample_log();
        let txns = replay(wal.bytes()).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].seq, 1);
        assert_eq!(txns[0].records.len(), 2);
        assert_eq!(txns[1].seq, 2);
        assert_eq!(
            txns[1].records[0],
            WalRecord::CounterLine { level: 0, line_idx: 9, image: [0x11; CACHELINE_BYTES] }
        );
    }

    #[test]
    fn every_byte_prefix_replays_to_a_committed_prefix() {
        let wal = sample_log();
        let bytes = wal.bytes();
        let full = replay(bytes).unwrap();
        for cut in 0..=bytes.len() {
            let txns = replay(&bytes[..cut]).unwrap_or_else(|e| {
                panic!("prefix of a valid log must replay, cut={cut}: {e}")
            });
            // The result is always a prefix of the full replay.
            assert!(txns.len() <= full.len(), "cut={cut}");
            assert_eq!(txns[..], full[..txns.len()], "cut={cut}");
        }
        // And the final prefix is the whole log.
        assert_eq!(replay(bytes).unwrap(), full);
    }

    #[test]
    fn uncommitted_tail_transaction_is_discarded() {
        let mut wal = sample_log();
        wal.append(&WalRecord::Begin { seq: 3 });
        wal.append(&WalRecord::DataLine {
            line: 1,
            ciphertext: [0; CACHELINE_BYTES],
            mac: 0,
        });
        let txns = replay(wal.bytes()).unwrap();
        assert_eq!(txns.len(), 2, "uncommitted transaction must not replay");
    }

    #[test]
    fn bitflip_in_a_complete_record_is_corruption() {
        let wal = sample_log();
        for byte in 0..wal.len() {
            let mut bytes = wal.bytes().to_vec();
            bytes[byte] ^= 0x40;
            match replay(&bytes) {
                // Either the checksum/structure catches it...
                Err(RecoveryError::CorruptWal { .. }) => {}
                // ...or the flip hit a `len` field and turned the tail into
                // a torn-looking suffix; fewer transactions may survive but
                // nothing invalid may appear.
                Ok(txns) => assert!(txns.len() <= 2, "flip at {byte} fabricated data"),
                Err(other) => panic!("unexpected error for flip at {byte}: {other}"),
            }
        }
    }

    #[test]
    fn structural_violations_are_corruption() {
        // Commit without Begin.
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::Commit { seq: 1 });
        assert!(matches!(
            replay(wal.bytes()),
            Err(RecoveryError::CorruptWal { offset: 0 })
        ));

        // Mutation record outside any transaction.
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::DataLine { line: 0, ciphertext: [0; 64], mac: 0 });
        assert!(matches!(replay(wal.bytes()), Err(RecoveryError::CorruptWal { .. })));

        // Nested Begin.
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::Begin { seq: 1 });
        wal.append(&WalRecord::Begin { seq: 2 });
        assert!(matches!(replay(wal.bytes()), Err(RecoveryError::CorruptWal { .. })));

        // Commit sequence mismatch.
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::Begin { seq: 1 });
        wal.append(&WalRecord::Commit { seq: 2 });
        assert!(matches!(replay(wal.bytes()), Err(RecoveryError::CorruptWal { .. })));

        // Non-monotonic transaction sequence.
        let mut wal = WalWriter::new();
        wal.append(&WalRecord::Begin { seq: 5 });
        wal.append(&WalRecord::Commit { seq: 5 });
        wal.append(&WalRecord::Begin { seq: 5 });
        assert!(matches!(replay(wal.bytes()), Err(RecoveryError::CorruptWal { .. })));
    }

    #[test]
    fn unknown_kind_is_corruption() {
        let mut buf = Vec::new();
        let body = [99u8, 0, 0, 0, 0, 0, 0, 0, 0];
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert_eq!(
            replay(&buf),
            Err(RecoveryError::CorruptWal { offset: 0 })
        );
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        assert_eq!(replay(&[]).unwrap(), Vec::new());
    }
}
