//! Lazily-allocated paged flat stores for dense, geometry-bounded key
//! spaces.
//!
//! The metadata engine and the functional secure memory both map *line
//! indices* (bounded by the tree geometry) to per-line state. The seed
//! implementation used `HashMap<u64, _>` for these maps, paying a SipHash
//! plus probe-chain walk on the hottest loads and stores of the whole
//! simulator. Line indices are dense, bounded, and known at construction
//! time, so a paged flat vector gives O(1) unhashed access:
//!
//! - the *spine* is a `Vec` with one slot per fixed-size page, allocated
//!   eagerly (8 bytes per [`PAGE_LINES`] lines — negligible);
//! - each *page* is allocated lazily on first write, so sparsely-touched
//!   address spaces (random page allocation over big memories) keep the
//!   sparse-memory footprint the `HashMap` provided.
//!
//! [`PagedStore`] deliberately mirrors the small `HashMap` API subset the
//! engine used (`get` / `get_mut` / `insert` / `take` /
//! `get_or_insert_with`), so the flat store is a drop-in substitution whose
//! behavioral equivalence is proven by the golden suite against the frozen
//! [`crate::metadata::reference::ReferenceEngine`].

/// Entries per lazily-allocated page.
///
/// 1024 lines keeps a page of 8-byte values at 8 KiB (a typical malloc
/// fast-path size) while bounding the eager spine to `capacity / 1024`
/// pointers.
pub const PAGE_LINES: usize = 1024;

/// A lazily-allocated paged flat map from a dense `u64` index space to `T`.
///
/// # Example
///
/// ```
/// use morphtree_core::store::PagedStore;
///
/// let mut store: PagedStore<u64> = PagedStore::new(10_000);
/// assert_eq!(store.get(9_999), None);
/// store.insert(9_999, 7);
/// assert_eq!(store.get(9_999), Some(&7));
/// *store.get_or_insert_with(3, || 40) += 2;
/// assert_eq!(store.take(3), Some(42));
/// assert_eq!(store.get(3), None);
/// ```
#[derive(Debug, Clone)]
pub struct PagedStore<T> {
    /// `pages[p]` covers indices `[p * PAGE_LINES, (p + 1) * PAGE_LINES)`.
    pages: Vec<Option<Box<[Option<T>]>>>,
    capacity: u64,
}

impl<T> PagedStore<T> {
    /// Creates an empty store addressing indices `0..capacity`.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        let spine = usize::try_from(capacity.div_ceil(PAGE_LINES as u64))
            .unwrap_or(usize::MAX);
        PagedStore {
            pages: (0..spine).map(|_| None).collect(),
            capacity,
        }
    }

    /// Number of addressable indices.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of pages currently allocated (for footprint inspection).
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    #[inline]
    fn split(idx: u64) -> (usize, usize) {
        (
            (idx / PAGE_LINES as u64) as usize,
            (idx % PAGE_LINES as u64) as usize,
        )
    }

    /// The entry at `idx`, or `None` when absent *or* out of range.
    ///
    /// Out-of-range lookups return `None` (not a panic) so adversary hooks
    /// probing arbitrary indices surface typed errors, as they did with the
    /// hash maps.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: u64) -> Option<&T> {
        let (page, slot) = Self::split(idx);
        self.pages.get(page)?.as_ref()?[slot].as_ref()
    }

    /// Mutable access to the entry at `idx`; `None` when absent or out of
    /// range.
    #[inline]
    pub fn get_mut(&mut self, idx: u64) -> Option<&mut T> {
        let (page, slot) = Self::split(idx);
        self.pages.get_mut(page)?.as_mut()?[slot].as_mut()
    }

    /// Whether `idx` holds an entry.
    #[inline]
    #[must_use]
    pub fn contains(&self, idx: u64) -> bool {
        self.get(idx).is_some()
    }

    fn page_mut(&mut self, page: usize) -> &mut [Option<T>] {
        let slot = &mut self.pages[page];
        if slot.is_none() {
            *slot = Some((0..PAGE_LINES).map(|_| None).collect());
        }
        // The line above just filled the slot.
        match slot {
            Some(page) => page,
            None => unreachable!("page allocated above"),
        }
    }

    /// Inserts `value` at `idx`, returning the previous entry.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity` — writes come from the tree geometry, so
    /// an out-of-range write is a layout bug that must stay loud.
    pub fn insert(&mut self, idx: u64, value: T) -> Option<T> {
        assert!(idx < self.capacity, "index {idx} out of range (capacity {})", self.capacity);
        let (page, slot) = Self::split(idx);
        self.page_mut(page)[slot].replace(value)
    }

    /// Removes and returns the entry at `idx`; `None` when absent or out of
    /// range. Pages are never deallocated.
    pub fn take(&mut self, idx: u64) -> Option<T> {
        let (page, slot) = Self::split(idx);
        self.pages.get_mut(page)?.as_mut()?[slot].take()
    }

    /// The entry at `idx`, inserting `make()` first when absent.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity` (see [`PagedStore::insert`]).
    pub fn get_or_insert_with<F: FnOnce() -> T>(&mut self, idx: u64, make: F) -> &mut T {
        assert!(idx < self.capacity, "index {idx} out of range (capacity {})", self.capacity);
        let (page, slot) = Self::split(idx);
        self.page_mut(page)[slot].get_or_insert_with(make)
    }

    /// Iterates the present entries as `(index, &value)` pairs, in index
    /// order. Index order makes serialized snapshots deterministic: two
    /// stores with the same contents serialize byte-identically regardless
    /// of insertion history.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        self.pages.iter().enumerate().flat_map(|(page, slots)| {
            slots.iter().flat_map(move |slots| {
                slots.iter().enumerate().filter_map(move |(slot, value)| {
                    value
                        .as_ref()
                        .map(|v| ((page * PAGE_LINES + slot) as u64, v))
                })
            })
        })
    }

    /// Number of present entries (walks allocated pages).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.iter().count() as u64
    }

    /// Whether no entries are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_returns_nothing() {
        let store: PagedStore<u32> = PagedStore::new(5000);
        assert_eq!(store.get(0), None);
        assert_eq!(store.get(4999), None);
        assert!(!store.contains(17));
        assert_eq!(store.allocated_pages(), 0);
    }

    #[test]
    fn insert_get_roundtrip_across_pages() {
        let mut store = PagedStore::new(10 * PAGE_LINES as u64);
        for idx in [0, 1, PAGE_LINES as u64 - 1, PAGE_LINES as u64, 5 * PAGE_LINES as u64 + 7] {
            assert_eq!(store.insert(idx, idx * 3), None);
        }
        assert_eq!(store.get(PAGE_LINES as u64), Some(&(PAGE_LINES as u64 * 3)));
        assert_eq!(store.insert(0, 99), Some(0));
        assert_eq!(store.get(0), Some(&99));
        // Only the touched pages were allocated.
        assert_eq!(store.allocated_pages(), 3);
    }

    #[test]
    fn get_mut_and_take() {
        let mut store = PagedStore::new(100);
        store.insert(42, String::from("x"));
        store.get_mut(42).unwrap().push('y');
        assert_eq!(store.take(42).as_deref(), Some("xy"));
        assert_eq!(store.take(42), None);
        assert_eq!(store.get_mut(41), None);
    }

    #[test]
    fn get_or_insert_with_creates_once() {
        let mut store = PagedStore::new(100);
        *store.get_or_insert_with(7, || 10) += 1;
        *store.get_or_insert_with(7, || unreachable!("already present")) += 1;
        assert_eq!(store.get(7), Some(&12));
    }

    #[test]
    fn out_of_range_reads_are_none_not_panics() {
        let mut store: PagedStore<u8> = PagedStore::new(10);
        assert_eq!(store.get(10), None);
        assert_eq!(store.get(u64::MAX), None);
        assert_eq!(store.get_mut(999), None);
        assert_eq!(store.take(999), None);
        assert!(!store.contains(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut store: PagedStore<u8> = PagedStore::new(10);
        store.insert(10, 1);
    }

    #[test]
    fn zero_capacity_store_is_inert() {
        let store: PagedStore<u8> = PagedStore::new(0);
        assert_eq!(store.get(0), None);
        assert_eq!(store.capacity(), 0);
    }

    #[test]
    fn iter_yields_index_order_regardless_of_insertion_order() {
        let mut store = PagedStore::new(10 * PAGE_LINES as u64);
        let indices = [5 * PAGE_LINES as u64 + 7, 0, PAGE_LINES as u64, 3];
        for idx in indices {
            store.insert(idx, idx);
        }
        let seen: Vec<u64> = store.iter().map(|(idx, _)| idx).collect();
        assert_eq!(seen, vec![0, 3, PAGE_LINES as u64, 5 * PAGE_LINES as u64 + 7]);
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
        assert!(PagedStore::<u8>::new(100).is_empty());
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PagedStore::new(100);
        a.insert(3, 1u32);
        let mut b = a.clone();
        b.insert(3, 2);
        assert_eq!(a.get(3), Some(&1));
        assert_eq!(b.get(3), Some(&2));
    }
}
