//! Lightweight span tracing with nested scopes.
//!
//! A [`Timeline`] records named spans on a caller-supplied clock — wall
//! micro-seconds in the sweep runner, simulated cycles if an engine wants
//! phase timing. Keeping the clock external keeps the tracer
//! deterministic and testable: nothing in here reads real time.
//!
//! Spans nest: `start_span`/`end_span` maintain a scope stack and record
//! each span's depth, so an exported trace reconstructs the call tree.
//! Pre-measured spans (e.g. collected by parallel sweep workers) are added
//! with [`Timeline::record_span`].

use std::collections::BTreeMap;

use super::json::Value;

/// One completed span on a timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span label, e.g. `"run:mcf / morph_sc128"`.
    pub name: String,
    /// Start time in caller clock units.
    pub start: u64,
    /// Duration in caller clock units.
    pub duration: u64,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: u32,
    /// Number of attempts taken (sweep retry accounting); 1 = first try.
    pub attempts: u32,
}

/// An ordered collection of spans with a scope stack for nesting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    spans: Vec<Span>,
    open: Vec<(String, u64)>,
}

impl Timeline {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Opens a nested scope named `name` at time `now`.
    pub fn start_span(&mut self, name: &str, now: u64) {
        self.open.push((name.to_string(), now));
    }

    /// Closes the innermost open scope at time `now` and records it.
    /// Returns the completed span, or `None` when no scope is open
    /// (unbalanced calls are ignored, never a panic).
    pub fn end_span(&mut self, now: u64) -> Option<&Span> {
        let (name, start) = self.open.pop()?;
        self.spans.push(Span {
            name,
            start,
            duration: now.saturating_sub(start),
            depth: self.open.len() as u32,
            attempts: 1,
        });
        self.spans.last()
    }

    /// Records a pre-measured span at the current nesting depth.
    pub fn record_span(&mut self, name: &str, start: u64, duration: u64, attempts: u32) {
        self.spans.push(Span {
            name: name.to_string(),
            start,
            duration,
            depth: self.open.len() as u32,
            attempts,
        });
    }

    /// All completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of completed spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total duration across all *top-level* spans (children overlap
    /// their parents and would double-count).
    #[must_use]
    pub fn total_duration(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.duration)
            .sum()
    }

    /// Merges another timeline's completed spans into this one, then
    /// sorts by `(start, name)` so the merged order is independent of
    /// which worker finished first.
    pub fn merge(&mut self, other: &Timeline) {
        self.spans.extend(other.spans.iter().cloned());
        self.sort();
    }

    /// Sorts spans by `(start, name)` for a stable export order.
    pub fn sort(&mut self) {
        self.spans
            .sort_by(|a, b| (a.start, &a.name).cmp(&(b.start, &b.name)));
    }

    /// Exports as a JSON array of span objects.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.spans
                .iter()
                .map(|s| {
                    let mut map = BTreeMap::new();
                    map.insert("name".to_string(), Value::Str(s.name.clone()));
                    map.insert("start".to_string(), Value::UInt(s.start));
                    map.insert("duration".to_string(), Value::UInt(s.duration));
                    map.insert("depth".to_string(), Value::UInt(u64::from(s.depth)));
                    map.insert("attempts".to_string(), Value::UInt(u64::from(s.attempts)));
                    Value::Object(map)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes_record_depth() {
        let mut t = Timeline::new();
        t.start_span("outer", 0);
        t.start_span("inner", 10);
        t.end_span(30);
        t.end_span(100);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].duration, 20);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].duration, 100);
        assert_eq!(t.total_duration(), 100);
    }

    #[test]
    fn unbalanced_end_is_ignored_not_a_panic() {
        let mut t = Timeline::new();
        assert!(t.end_span(5).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn backwards_clock_saturates_to_zero_duration() {
        let mut t = Timeline::new();
        t.start_span("s", 100);
        let span = t.end_span(50).cloned();
        assert_eq!(span.map(|s| s.duration), Some(0));
    }

    #[test]
    fn merge_orders_spans_by_start_time() {
        let mut a = Timeline::new();
        a.record_span("late", 100, 5, 1);
        let mut b = Timeline::new();
        b.record_span("early", 10, 5, 2);
        a.merge(&b);
        let names: Vec<_> = a.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["early", "late"]);
        assert_eq!(a.spans()[0].attempts, 2);
    }

    #[test]
    fn json_export_lists_every_span_field() {
        let mut t = Timeline::new();
        t.record_span("run", 3, 7, 1);
        let json = t.to_json();
        let span = &json.as_array().unwrap()[0];
        assert_eq!(span.get("name").and_then(Value::as_str), Some("run"));
        assert_eq!(span.get("start").and_then(Value::as_u64), Some(3));
        assert_eq!(span.get("duration").and_then(Value::as_u64), Some(7));
        assert_eq!(span.get("depth").and_then(Value::as_u64), Some(0));
        assert_eq!(span.get("attempts").and_then(Value::as_u64), Some(1));
    }
}
