//! Fixed-bucket log2 histograms for latency and depth distributions.
//!
//! The paper's evaluation argues from *distributions* (Figs 7, 15–18), so
//! scalar means are not enough: a 99th-percentile DRAM latency and a mean
//! can disagree by an order of magnitude under queueing. This histogram is
//! the compromise a hardware stats unit would make: 64 power-of-two
//! buckets cover the full `u64` range in constant space, while the exact
//! count/sum/min/max are tracked alongside so *means stay exact* — the
//! golden text fixtures keep printing the same numbers they always did.

/// Number of buckets: value 0, then one bucket per power of two.
pub const NUM_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i` (for `i >= 1`) holds values in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything at or above
/// `2^62` (the overflow bucket). Count, sum, min and max are exact, so
/// [`Histogram::mean`] has no quantization error; percentiles are
/// bucket-resolution upper bounds clamped to the observed extrema.
///
/// Derives `Eq` so the experiment layer's determinism tests can assert
/// byte-identical statistics across thread counts.
///
/// # Example
///
/// ```
/// use morphtree_core::obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [4, 5, 6, 7, 900] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), Some(900));
/// assert_eq!(h.mean(), Some((4 + 5 + 6 + 7 + 900) as f64 / 5.0));
/// assert_eq!(h.percentile(50.0), Some(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    // Manual impl: `[u64; 64]` has no derived `Default`.
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index of `value`.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive `[low, high]` value range of bucket `index`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        i if i >= NUM_BUCKETS - 1 => (1 << (NUM_BUCKETS - 2), u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` when empty — "no data" is
    /// distinguishable from a true zero.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `p`-th percentile (p ∈ [0, 100]) as a bucket upper bound,
    /// clamped to the observed min/max so single-sample and single-bucket
    /// distributions report exact values. `None` when empty, and `None`
    /// for NaN or out-of-range `p` — before this validation, a NaN or
    /// negative `p` silently coerced through `as u64` and clamped to
    /// rank 1, reporting the minimum as if it were a real percentile.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let (_, high) = bucket_bounds(i);
                return Some(high.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self` (for multi-run aggregation); all fields
    /// combine commutatively, so merge order cannot affect the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Raw parts `(buckets, count, sum, min, max)` for the persistence
    /// layer, including the empty-sentinel min/max values so a restored
    /// histogram is field-identical.
    pub(crate) fn export_parts(&self) -> ([u64; NUM_BUCKETS], u64, u128, u64, u64) {
        (self.buckets, self.count, self.sum, self.min, self.max)
    }

    /// Rebuilds a histogram from [`Histogram::export_parts`] output.
    pub(crate) fn from_parts(
        buckets: [u64; NUM_BUCKETS],
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Self {
        Histogram { buckets, count, sum, min, max }
    }

    /// Occupied buckets as `(low, high, count)` triples, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (low, high) = bucket_bounds(i);
                (low, high, n)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_no_data() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
    }

    #[test]
    fn bucket_edges() {
        // Edge buckets: 0 is its own bucket, 1 starts bucket 1, powers of
        // two open new buckets.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1), (1 << 62, u64::MAX));
    }

    #[test]
    fn percentile_boundaries_and_invalid_p() {
        let mut h = Histogram::new();
        for v in [5u64, 9, 200] {
            h.record(v);
        }
        // p = 0 and p = 100 are valid boundaries: rank 1 (the min's
        // bucket upper bound, 5 -> bucket [4, 7]) and the observed max.
        assert_eq!(h.percentile(0.0), Some(7));
        assert_eq!(h.percentile(100.0), Some(200));
        // NaN and out-of-range p are invalid, not "rank 1".
        assert_eq!(h.percentile(f64::NAN), None);
        assert_eq!(h.percentile(-1.0), None);
        assert_eq!(h.percentile(-0.001), None);
        assert_eq!(h.percentile(100.001), None);
        assert_eq!(h.percentile(f64::INFINITY), None);
        assert_eq!(h.percentile(f64::NEG_INFINITY), None);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(37);
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(37), "p{p}");
        }
        assert_eq!(h.mean(), Some(37.0));
        assert_eq!(h.min(), Some(37));
        assert_eq!(h.max(), Some(37));
    }

    #[test]
    fn zero_samples_land_in_the_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.percentile(50.0), Some(0));
        assert_eq!(h.mean(), Some(0.0));
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(0, 0, 2)]);
    }

    #[test]
    fn overflow_bucket_absorbs_huge_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 63);
        assert_eq!(h.count(), 2);
        // Both land in the last bucket; percentile clamps to the max.
        assert_eq!(h.percentile(99.0), Some(u64::MAX));
        assert_eq!(h.min(), Some(1 << 63));
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1 << 62, u64::MAX, 2)]);
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = Histogram::new();
        // 90 small samples and 10 large ones.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 < 16, "p50 stays in the small bucket, got {p50}");
        assert!(p99 >= 4096, "p99 reaches the large bucket, got {p99}");
        assert_eq!(h.percentile(100.0), Some(5000), "p100 clamps to max");
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let mut h = Histogram::new();
        for v in [100, 101, 102] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(101.0));
        assert_eq!(h.sum(), 303);
    }

    #[test]
    fn merge_accumulates_and_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [1000, 2000] {
            b.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.min(), Some(1));
        assert_eq!(ab.max(), Some(2000));
        // Merging an empty histogram changes nothing.
        let before = ab;
        ab.merge(&Histogram::new());
        assert_eq!(ab, before);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Histogram::default(), Histogram::new());
    }
}
