//! Named metrics registry: counters, gauges, and histograms.
//!
//! The registry is the single collection point that every layer (DRAM,
//! controller, metadata engine, crypto, sweeps) reports into before a
//! `--metrics` dump. Names are dotted paths (`dram.read_latency`,
//! `cache.l0.hits`); storage is `BTreeMap`, so iteration and JSON export
//! are always in sorted, deterministic order.

use std::collections::BTreeMap;

use super::histogram::Histogram;
use super::json::Value;

/// A registry of named counters, gauges, and histograms.
///
/// Counters are monotonically increased `u64`s (event counts), gauges are
/// point-in-time `f64` readings (rates, ratios, configuration), and
/// histograms capture full distributions. A `None` gauge records that the
/// quantity was *unmeasurable* — it exports as JSON `null`, never as a
/// fake `0.0`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Option<f64>>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the counter `name` to an absolute value.
    pub fn counter_set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets the gauge `name`. Pass `None` for "not measurable" — it
    /// renders as `null`, distinct from a measured zero.
    pub fn gauge_set(&mut self, name: &str, value: Option<f64>) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the histogram `name`.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Stores a whole pre-built histogram under `name`, merging with any
    /// samples already recorded there.
    pub fn histogram_merge(&mut self, name: &str, histogram: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(histogram);
    }

    /// The current value of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The current value of a gauge, if present. The outer `Option` is
    /// presence; the inner is measurability.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<Option<f64>> {
        self.gauges.get(name).copied()
    }

    /// The histogram under `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, Option<f64>)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge, and gauges take the other side's value (last write wins).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, &value) in &other.gauges {
            self.gauges.insert(name.clone(), value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Exports the registry as a JSON value with the stable schema
    /// `{counters: {..}, gauges: {..}, histograms: {..}}`.
    ///
    /// Histograms export count/sum/min/max/mean/p50/p90/p99 plus the
    /// occupied buckets as `[low, high, count]` triples. Empty quantities
    /// export as `null`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert(
            "counters".to_string(),
            Value::Object(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Value::Object(
                self.gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), opt_f64(v)))
                    .collect(),
            ),
        );
        root.insert(
            "histograms".to_string(),
            Value::Object(
                self.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), histogram_json(h)))
                    .collect(),
            ),
        );
        Value::Object(root)
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(f) if f.is_finite() => Value::Float(f),
        _ => Value::Null,
    }
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(n) => Value::UInt(n),
        None => Value::Null,
    }
}

/// Serializes one histogram into its JSON summary object.
#[must_use]
pub fn histogram_json(h: &Histogram) -> Value {
    let mut map = BTreeMap::new();
    map.insert("count".to_string(), Value::UInt(h.count()));
    // sum fits u64 in practice (cycle counts); saturate rather than lie.
    map.insert(
        "sum".to_string(),
        Value::UInt(u64::try_from(h.sum()).unwrap_or(u64::MAX)),
    );
    map.insert("min".to_string(), opt_u64(h.min()));
    map.insert("max".to_string(), opt_u64(h.max()));
    map.insert("mean".to_string(), opt_f64(h.mean()));
    map.insert("p50".to_string(), opt_u64(h.percentile(50.0)));
    map.insert("p90".to_string(), opt_u64(h.percentile(90.0)));
    map.insert("p99".to_string(), opt_u64(h.percentile(99.0)));
    map.insert(
        "buckets".to_string(),
        Value::Array(
            h.nonzero_buckets()
                .map(|(low, high, count)| {
                    Value::Array(vec![
                        Value::UInt(low),
                        Value::UInt(high),
                        Value::UInt(count),
                    ])
                })
                .collect(),
        ),
    );
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter_add("dram.reads", 3);
        r.counter_add("dram.reads", 4);
        r.gauge_set("dram.row_hit_rate", Some(0.5));
        r.gauge_set("dram.row_hit_rate", Some(0.75));
        assert_eq!(r.counter("dram.reads"), Some(7));
        assert_eq!(r.gauge("dram.row_hit_rate"), Some(Some(0.75)));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn unmeasurable_gauge_exports_as_null() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("dram.row_hit_rate", None);
        let json = r.to_json().to_pretty_string();
        assert!(json.contains("\"dram.row_hit_rate\": null"), "{json}");
    }

    #[test]
    fn histogram_summary_has_required_keys() {
        let mut r = MetricsRegistry::new();
        for v in [10, 20, 30] {
            r.histogram_record("lat", v);
        }
        let json = r.to_json();
        let h = json.get("histograms").and_then(|v| v.get("lat")).unwrap();
        for key in ["count", "sum", "min", "max", "mean", "p50", "p90", "p99", "buckets"] {
            assert!(h.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.histogram_record("h", 5);
        let mut b = MetricsRegistry::new();
        b.counter_add("x", 2);
        b.counter_add("y", 9);
        b.histogram_record("h", 500);
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(3));
        assert_eq!(a.counter("y"), Some(9));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(500));
    }

    #[test]
    fn export_roundtrips_through_the_parser() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a.b", 11);
        r.gauge_set("g", Some(1.5));
        r.gauge_set("null_g", None);
        r.histogram_record("h", 7);
        let text = r.to_json().to_pretty_string();
        let parsed = super::super::json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("a.b"))
                .and_then(Value::as_u64),
            Some(11)
        );
        assert_eq!(
            parsed.get("gauges").and_then(|g| g.get("null_g")),
            Some(&Value::Null)
        );
    }
}
