//! Observability layer: metrics registry, latency histograms, span tracing.
//!
//! Zero-dependency instrumentation plane for the simulator (ISSUE 4). The
//! paper's evaluation reasons about *distributions* — streak lengths,
//! per-level cache behaviour, DRAM queueing — so the stats structs in sim
//! and core record [`Histogram`]s rather than bare means, every layer
//! dumps into a [`MetricsRegistry`] with deterministic (sorted) key order,
//! and the sweep runner traces per-run wall time on a [`Timeline`].
//!
//! Design rules:
//!
//! - **No wall-clock reads in here.** Timelines take caller-supplied
//!   timestamps; registries hold only simulated or counted quantities.
//!   This is what makes serial and N-thread sweeps byte-identical.
//! - **`null` means "no data".** Empty histograms and unmeasurable gauges
//!   export JSON `null`, never a fake `0.0` (satellite 3 of ISSUE 4).
//! - **Exact means.** Histograms track the exact sum alongside log2
//!   buckets, so existing mean-based text outputs are undisturbed.

pub mod histogram;
pub mod json;
pub mod registry;
pub mod timeline;

pub use histogram::{bucket_bounds, Histogram, NUM_BUCKETS};
pub use json::{parse as parse_json, ParseError as JsonParseError, Value as JsonValue};
pub use registry::{histogram_json, MetricsRegistry};
pub use timeline::{Span, Timeline};
