//! Minimal JSON writer/parser for the metrics schema.
//!
//! The workspace is offline (no serde), so the obs layer carries its own
//! JSON support. Objects are backed by `BTreeMap`, which gives the
//! deterministic key order the sweep determinism suite relies on: a
//! serial run and a 4-thread run must serialize byte-identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. `Null` is load-bearing here: "no samples" must stay
/// distinguishable from a measured zero (ISSUE 4 satellite 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` — "no data", never conflated with 0.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer, serialized without a decimal point.
    UInt(u64),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with sorted (deterministic) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value as `f64`, for either int or float nodes.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a float deterministically. Non-finite values have no JSON
/// representation and become `null` — NaN must never leak into reports.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. Accepts exactly what the writer emits plus
/// ordinary whitespace variations; rejects trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.error("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.error("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let doc = obj(&[
            ("count", Value::UInt(42)),
            ("mean", Value::Float(3.25)),
            ("name", Value::Str("dram.read_latency".into())),
            ("missing", Value::Null),
            ("flag", Value::Bool(true)),
            (
                "buckets",
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        let text = doc.to_pretty_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn serialization_is_deterministic_regardless_of_insert_order() {
        let a = obj(&[("z", Value::UInt(1)), ("a", Value::UInt(2))]);
        let b = obj(&[("a", Value::UInt(2)), ("z", Value::UInt(1))]);
        assert_eq!(a.to_pretty_string(), b.to_pretty_string());
        let text = a.to_pretty_string();
        assert!(text.find("\"a\"").unwrap() < text.find("\"z\"").unwrap());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Value::Str("a\"b\\c\nd\te".into());
        assert_eq!(parse(&doc.to_pretty_string()).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        assert_eq!(parse("-1.5").unwrap(), Value::Float(-1.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("7").unwrap(), Value::UInt(7));
    }
}
