//! Core library of the `morphtree` reproduction: the primary contribution of
//! *Morphable Counters: Enabling Compact Integrity Trees For Low-Overhead
//! Secure Memories* (MICRO 2018).
//!
//! # What lives here
//!
//! - [`counters`] — the counter-cacheline representations: classic split
//!   counters (SC-8 … SC-128, the SGX MEE organization, the VAULT entries)
//!   and the paper's Morphable Counters with Zero Counter Compression (ZCC)
//!   and Minor Counter Rebasing (MCR). Every organization is a bit-exact
//!   64-byte codec.
//! - [`tree`] — integrity-tree configurations (SGX, SC-64 baseline, SC-128,
//!   VAULT, MorphTree) and their geometry: per-level arity, size, height and
//!   address layout for an arbitrary memory size (Fig 1/17, Table III).
//! - [`metadata`] — the secure-memory metadata engine: a metadata cache,
//!   per-level counter stores, tree-walk on misses, write propagation on
//!   dirty evictions and overflow handling, with the exact traffic
//!   categories of Fig 16.
//! - [`functional`] — a byte-level *functional* secure memory that actually
//!   encrypts, MACs, and replay-protects data, with attacker hooks used by
//!   the integration tests to demonstrate detection (§V).
//! - [`attack`] — the adversary engine: a taxonomy of tamper/replay attack
//!   classes and a seeded, deterministic campaign runner that fires
//!   randomized attacks against the functional memory and checks each is
//!   detected at the predicted tree location.
//! - [`store`] — the lazily-allocated paged flat stores backing the
//!   engine's and functional memory's per-level line maps (O(1) unhashed
//!   access over geometry-bounded index spaces).
//! - [`concurrent`] — the sharded multi-tenant engine: contiguous address
//!   ranges each owning an independent subtree under a small shared top
//!   root, with per-shard request queues drained by worker threads and a
//!   deterministic seeded-interleaving harness.
//! - [`obs`] — the observability plane: a deterministic metrics registry
//!   (counters/gauges + log2-bucket latency histograms) and a span
//!   timeline tracer, exported as sorted-key JSON by `--metrics`.
//! - [`proof`] — verifiable integrity proofs: compact varint-framed
//!   per-line proofs (counter chain + sibling MACs up to the root) that a
//!   standalone verifier checks against a published root with no memory
//!   image, plus the authenticated-read decryption path.
//!
//! # Quick example
//!
//! ```
//! use morphtree_core::counters::{CounterLine, Line};
//! use morphtree_core::counters::morph::{MorphLine, MorphMode};
//!
//! // A 128-ary morphable counter line (ZCC + rebasing).
//! let mut line = Line::from(MorphLine::new(MorphMode::ZccRebase));
//! assert_eq!(line.arity(), 128);
//! line.increment(5);
//! line.increment(5);
//! assert_eq!(line.get(5), 2);
//! assert_eq!(line.get(6), 0);
//! ```

// Denied rather than forbidden: the metadata cache's AVX2 kernels carry a
// scoped, documented `allow` — everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod attack;
pub mod concurrent;
pub mod counters;
pub mod error;
pub mod functional;
pub mod metadata;
pub mod obs;
pub mod persist;
pub mod proof;
pub mod store;
pub mod tree;

pub use error::{CodecError, IntegrityError, TamperError};
pub use proof::ProofError;

/// Size of a cacheline (and of every counter-line entry) in bytes.
pub const CACHELINE_BYTES: usize = 64;

/// Size of a cacheline in bits; every counter organization must fit in this.
pub const CACHELINE_BITS: usize = CACHELINE_BYTES * 8;

/// Bits reserved for the per-line MAC inside a counter cacheline (Fig 8/13).
pub const LINE_MAC_BITS: usize = 64;
