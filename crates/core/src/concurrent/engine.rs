//! The sharded secure-memory engine: per-shard [`SecureMemory`] subtrees
//! under a shared top root, plus the sharded timing-plane
//! [`MetadataEngine`] counterpart.

use crate::error::{IntegrityError, ShardError, TamperError};
use crate::functional::SecureMemory;
use crate::metadata::{EngineOptions, EngineStats, MemAccess, MetadataEngine};
use crate::tree::TreeConfig;
use crate::CACHELINE_BYTES;
use morphtree_crypto::MacKey;

use super::plan::ShardPlan;
use super::queue::{InterleaveSchedule, ShardQueues};

/// Floor for a shard's metadata-cache slice: below ~16 lines the cache
/// degenerates to pure thrashing and stops modelling anything.
const MIN_SHARD_CACHE_BYTES: usize = 1024;

/// One request against the sharded engine, addressed by *global* data
/// line. The mix mirrors what the lockstep oracle can compare against the
/// serial memory: reads, writes, and the two data-plane tamper hooks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Verified read of a data line.
    Read {
        /// Global data line.
        line: u64,
    },
    /// Write of a plaintext line.
    Write {
        /// Global data line.
        line: u64,
        /// Plaintext to store.
        data: [u8; CACHELINE_BYTES],
    },
    /// Adversarial bit flip in the stored ciphertext.
    TamperData {
        /// Global data line.
        line: u64,
        /// Byte offset within the line.
        offset: usize,
        /// XOR mask applied to that byte.
        mask: u8,
    },
    /// Adversarial bit flip in the stored data MAC.
    TamperMac {
        /// Global data line.
        line: u64,
        /// XOR mask applied to the stored MAC.
        mask: u64,
    },
}

impl Op {
    /// The global data line this request targets (every op is routed by
    /// its data address).
    #[must_use]
    pub fn line(&self) -> u64 {
        match *self {
            Op::Read { line }
            | Op::Write { line, .. }
            | Op::TamperData { line, .. }
            | Op::TamperMac { line, .. } => line,
        }
    }

    /// Whether the request mutates shard state (and therefore dirties the
    /// shard's cached root digest).
    #[must_use]
    pub fn mutates(&self) -> bool {
        !matches!(self, Op::Read { .. })
    }
}

/// The result of one [`Op`], in submission order. Tamper verdicts and
/// detection errors carry *global* data coordinates (translated back from
/// shard-local ones), so they compare directly against a serial
/// [`SecureMemory`] oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A read verified and decrypted successfully.
    Data([u8; CACHELINE_BYTES]),
    /// A write completed.
    Written,
    /// A tamper hook landed (corrupted off-chip state in place).
    Tampered,
    /// A tamper hook had nothing to corrupt.
    TamperRejected(TamperError),
    /// A read detected an integrity violation.
    Detected(IntegrityError),
}

/// Translates a shard-local integrity error to global coordinates.
///
/// Data-line addresses translate exactly. `CounterMac` coordinates are
/// left shard-local (tagged by which shard raised them is the caller's
/// job): a shard's counter tree has its own geometry, so its line indices
/// have no global meaning.
fn globalize_integrity(plan: &ShardPlan, shard: usize, err: IntegrityError) -> IntegrityError {
    let addr = |local_addr: u64| {
        let local_line = local_addr / CACHELINE_BYTES as u64;
        plan.global_line(shard, local_line) * CACHELINE_BYTES as u64
    };
    match err {
        IntegrityError::DataMac { line_addr } => {
            IntegrityError::DataMac { line_addr: addr(line_addr) }
        }
        IntegrityError::MissingMac { line_addr } => {
            IntegrityError::MissingMac { line_addr: addr(line_addr) }
        }
        IntegrityError::CounterMac { level, line_idx } => {
            IntegrityError::CounterMac { level, line_idx }
        }
    }
}

/// Translates a shard-local tamper error to global coordinates.
fn globalize_tamper(plan: &ShardPlan, shard: usize, err: TamperError) -> TamperError {
    match err {
        TamperError::NeverWritten { data_line } => {
            TamperError::NeverWritten { data_line: plan.global_line(shard, data_line) }
        }
        other => other,
    }
}

/// Applies one request to its owning shard. Free function (not a method)
/// so worker threads can run it on disjoint `&mut SecureMemory` borrows.
fn apply(plan: &ShardPlan, shard: usize, memory: &mut SecureMemory, op: &Op) -> OpOutcome {
    let local = plan.local_line(op.line());
    match *op {
        Op::Read { .. } => match memory.read(local) {
            Ok(data) => OpOutcome::Data(data),
            Err(err) => OpOutcome::Detected(globalize_integrity(plan, shard, err)),
        },
        Op::Write { ref data, .. } => {
            memory.write(local, data);
            OpOutcome::Written
        }
        Op::TamperData { offset, mask, .. } => match memory.tamper_raw(local, offset, mask) {
            Ok(()) => OpOutcome::Tampered,
            Err(err) => OpOutcome::TamperRejected(globalize_tamper(plan, shard, err)),
        },
        Op::TamperMac { mask, .. } => match memory.tamper_mac(local, mask) {
            Ok(()) => OpOutcome::Tampered,
            Err(err) => OpOutcome::TamperRejected(globalize_tamper(plan, shard, err)),
        },
    }
}

/// Flushes a run of consecutive reads against one shard as a single
/// multi-line verify+decrypt call ([`SecureMemory::verify_and_read`]),
/// so the whole run shares batched MAC passes, deduplicated ancestor
/// verification, and bulk counter-mode decryption (four lines per AES
/// call on the `vaes` backend).
///
/// Outcome lockstep is preserved by construction: a successful bulk pass
/// performs a superset of every per-line check, so its plaintexts equal
/// the per-line results; on *any* bulk failure the run is replayed per
/// line so each op receives exactly the verdict the serial oracle would
/// give it (the bulk error cannot name which queued op is at fault —
/// shared ancestors are verified once for the whole run).
fn flush_reads(
    plan: &ShardPlan,
    shard: usize,
    memory: &mut SecureMemory,
    run: &mut Vec<(usize, u64)>,
    results: &mut Vec<(usize, OpOutcome)>,
) {
    if run.len() > 1 {
        let lines: Vec<u64> = run.iter().map(|&(_, local)| local).collect();
        if let Ok(plaintexts) = memory.verify_and_read(&lines) {
            for (&(index, _), plaintext) in run.iter().zip(plaintexts) {
                results.push((index, OpOutcome::Data(plaintext)));
            }
            run.clear();
            return;
        }
    }
    // Singleton run, or bulk verification failed: serve per line, giving
    // each op exactly the verdict `apply`'s read arm would.
    for &(index, local) in run.iter() {
        let outcome = match memory.read(local) {
            Ok(data) => OpOutcome::Data(data),
            Err(err) => OpOutcome::Detected(globalize_integrity(plan, shard, err)),
        };
        results.push((index, outcome));
    }
    run.clear();
}

/// Drains one shard's FIFO queue, grouping maximal runs of consecutive
/// reads into bulk verify+decrypt calls via [`flush_reads`] and applying
/// everything else per op. Per-shard program order is preserved: a read
/// run only ever extends until the next mutating op, which flushes it.
fn apply_queue<'a>(
    plan: &ShardPlan,
    shard: usize,
    memory: &mut SecureMemory,
    queue: impl Iterator<Item = (usize, &'a Op)>,
    results: &mut Vec<(usize, OpOutcome)>,
) {
    let mut run: Vec<(usize, u64)> = Vec::new();
    for (index, op) in queue {
        if let Op::Read { line } = *op {
            run.push((index, plan.local_line(line)));
            continue;
        }
        flush_reads(plan, shard, memory, &mut run, results);
        results.push((index, apply(plan, shard, memory, op)));
    }
    flush_reads(plan, shard, memory, &mut run, results);
}

/// Derives the per-shard encryption/MAC seed from the tenant key: the high
/// key half is XORed with the 1-based shard id, so shards never share OTP
/// or MAC streams even for identical plaintexts at identical local
/// addresses.
fn shard_key(key: [u8; 16], shard: usize) -> [u8; 16] {
    let mut derived = key;
    let id = (shard as u64 + 1).to_le_bytes();
    for (byte, id_byte) in derived[8..16].iter_mut().zip(id) {
        *byte ^= id_byte;
    }
    derived
}

/// Domain-separated key for the shared top MAC (distinct from both the
/// encryption key and the per-subtree MAC seeds).
fn top_key(key: [u8; 16]) -> MacKey {
    let mut seed = key;
    seed[0] ^= 0xc3;
    MacKey::new(seed)
}

/// Folds a vector of per-shard root digests into the combined top MAC
/// under the tenant's domain-separated top key: a keyed MAC chain over the
/// digest vector (eight digests per 64-byte block, each block MACed with
/// the running value as its counter).
///
/// Exposed `pub(crate)` so the epoch persistence layer can compute the
/// combined root a *partially completed* epoch cut would have pinned,
/// without mutating any engine state.
pub(crate) fn fold_digests(key: [u8; 16], digests: &[u64]) -> u64 {
    let top = top_key(key);
    let mut acc = 0u64;
    for (block_idx, chunk) in digests.chunks(8).enumerate() {
        let mut block = [0u8; CACHELINE_BYTES];
        for (slot, digest) in chunk.iter().enumerate() {
            block[slot * 8..slot * 8 + 8].copy_from_slice(&digest.to_le_bytes());
        }
        acc = top.mac_line(block_idx as u64 * CACHELINE_BYTES as u64, acc, &block).0;
    }
    acc
}

/// A sharded functional secure memory: `shards` independent
/// [`SecureMemory`] subtrees over contiguous address ranges, recombined
/// under one keyed top MAC.
///
/// See the [module docs](crate::concurrent) for the architecture. The
/// invariant the test suites pin: for a fixed request sequence, the final
/// data bytes, tamper verdicts, and [`ShardedMemory::combined_root`] are
/// identical for every worker count and every seeded interleaving.
#[derive(Debug)]
pub struct ShardedMemory {
    plan: ShardPlan,
    /// The tenant key; per-shard keys derive from it (`shard_key`), as
    /// does the domain-separated top key ([`fold_digests`]).
    key: [u8; 16],
    shards: Vec<SecureMemory>,
    /// Cached per-shard root digests; entry `s` is stale iff `dirty[s]`.
    digests: Vec<u64>,
    dirty: Vec<bool>,
    combined_root: u64,
    recombines: u64,
}

impl ShardedMemory {
    /// Creates a sharded memory over `memory_bytes` of protected data.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] when the partition is impossible (zero
    /// shards, unaligned size, or more shards than data lines).
    pub fn new(
        config: TreeConfig,
        memory_bytes: u64,
        key: [u8; 16],
        shards: usize,
    ) -> Result<Self, ShardError> {
        let plan = ShardPlan::new(memory_bytes, shards)?;
        let shards: Vec<SecureMemory> = (0..plan.shards())
            .map(|s| SecureMemory::new(config.clone(), plan.shard_memory_bytes(s), shard_key(key, s)))
            .collect();
        let mut this = ShardedMemory {
            plan,
            key,
            digests: shards.iter().map(SecureMemory::root_digest).collect(),
            dirty: vec![false; shards.len()],
            shards,
            combined_root: 0,
            recombines: 0,
        };
        this.fold_top();
        this.recombines = 0; // construction does not count as a recombine
        Ok(this)
    }

    /// Rebuilds a sharded memory from recovered parts (persistence layer).
    pub(crate) fn from_parts(plan: ShardPlan, key: [u8; 16], shards: Vec<SecureMemory>) -> Self {
        let mut this = ShardedMemory {
            plan,
            key,
            digests: shards.iter().map(SecureMemory::root_digest).collect(),
            dirty: vec![false; shards.len()],
            shards,
            combined_root: 0,
            recombines: 0,
        };
        this.fold_top();
        this.recombines = 0;
        this
    }

    /// The tenant key (persistence layer: stored in the sharded snapshot
    /// header so recovery can re-derive the shard and top keys).
    pub(crate) fn tenant_key(&self) -> [u8; 16] {
        self.key
    }

    /// The expected derived key of `shard` (recovery cross-checks each
    /// restored shard snapshot against this).
    pub(crate) fn derived_key(key: [u8; 16], shard: usize) -> [u8; 16] {
        shard_key(key, shard)
    }

    /// The shard partition in use.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The cached per-shard root digests (the proof subsystem embeds the
    /// full vector in a sharded proof). Callers must
    /// [`ShardedMemory::recombine`] first if shards may be dirty.
    pub(crate) fn shard_digests(&self) -> &[u64] {
        &self.digests
    }

    /// One shard's subtree (read-only; for audits and persistence).
    #[must_use]
    pub fn shard(&self, shard: usize) -> &SecureMemory {
        &self.shards[shard]
    }

    /// Mutable access to one shard's subtree (epoch persistence layer:
    /// journal harvesting). Callers must not bypass the dirty-bit
    /// bookkeeping with state mutations.
    pub(crate) fn shard_mut(&mut self, shard: usize) -> &mut SecureMemory {
        &mut self.shards[shard]
    }

    /// Enables mutation journaling on every shard (see
    /// [`SecureMemory::begin_journal`]); the epoch persistence layer
    /// harvests the per-shard journals after each batch to derive WAL
    /// records.
    pub fn begin_journals(&mut self) {
        for shard in &mut self.shards {
            shard.begin_journal();
        }
    }

    /// How many coalesced top-root recombinations have run. A batch of any
    /// size costs at most one — the coalescing the tests assert.
    #[must_use]
    pub fn recombines(&self) -> u64 {
        self.recombines
    }

    /// Folds the cached per-shard digests into the combined root MAC (see
    /// [`fold_digests`] for the chain construction).
    fn fold_top(&mut self) {
        self.combined_root = fold_digests(self.key, &self.digests);
        self.recombines += 1;
    }

    /// Refreshes the digests of dirty shards only, then refolds the top —
    /// the coalesced (batched) root update. No-op when nothing is dirty.
    pub fn recombine(&mut self) {
        if !self.dirty.iter().any(|&d| d) {
            return;
        }
        for (s, dirty) in self.dirty.iter_mut().enumerate() {
            if *dirty {
                self.digests[s] = self.shards[s].root_digest();
                *dirty = false;
            }
        }
        self.fold_top();
    }

    /// The combined root MAC over all shard subtree roots, recombining
    /// first if any shard is dirty.
    pub fn combined_root(&mut self) -> u64 {
        self.recombine();
        self.combined_root
    }

    /// Serial convenience read (routes to the owning shard).
    ///
    /// # Errors
    ///
    /// Returns the detection verdict, in global coordinates.
    pub fn read(&self, line: u64) -> Result<[u8; CACHELINE_BYTES], IntegrityError> {
        let shard = self.plan.shard_of(line);
        self.shards[shard]
            .read(self.plan.local_line(line))
            .map_err(|e| globalize_integrity(&self.plan, shard, e))
    }

    /// Serial convenience write (routes to the owning shard and marks it
    /// dirty; the root recombines lazily on the next
    /// [`ShardedMemory::combined_root`]).
    pub fn write(&mut self, line: u64, data: &[u8; CACHELINE_BYTES]) {
        let shard = self.plan.shard_of(line);
        self.shards[shard].write(self.plan.local_line(line), data);
        self.dirty[shard] = true;
    }

    /// Serial convenience ciphertext tamper (routes to the owning shard).
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] (global coordinates) when there is nothing
    /// to corrupt.
    pub fn tamper_raw(&mut self, line: u64, offset: usize, mask: u8) -> Result<(), TamperError> {
        let shard = self.plan.shard_of(line);
        let out = self.shards[shard]
            .tamper_raw(self.plan.local_line(line), offset, mask)
            .map_err(|e| globalize_tamper(&self.plan, shard, e));
        if out.is_ok() {
            self.dirty[shard] = true;
        }
        out
    }

    /// Serial convenience MAC tamper (routes to the owning shard).
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] (global coordinates) when there is nothing
    /// to corrupt.
    pub fn tamper_mac(&mut self, line: u64, mask: u64) -> Result<(), TamperError> {
        let shard = self.plan.shard_of(line);
        let out = self.shards[shard]
            .tamper_mac(self.plan.local_line(line), mask)
            .map_err(|e| globalize_tamper(&self.plan, shard, e));
        if out.is_ok() {
            self.dirty[shard] = true;
        }
        out
    }

    /// Audits every shard subtree, returning the first violation found
    /// (data coordinates globalized).
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] across shards, in shard order.
    pub fn verify_all(&self) -> Result<(), IntegrityError> {
        for (s, shard) in self.shards.iter().enumerate() {
            shard.verify_all().map_err(|e| globalize_integrity(&self.plan, s, e))?;
        }
        Ok(())
    }

    /// Batch-verifies the data MACs and deduplicated counter chains of
    /// `lines` (global coordinates), routing each line to its owning
    /// shard and running one batched
    /// [`SecureMemory::verify_lines`] pass per touched shard.
    ///
    /// Mirrors the serial canonicalization: duplicate or unsorted global
    /// lines are deduplicated *before* bucketing, so per-shard buckets
    /// (and therefore per-shard MAC counts) match what
    /// [`SecureMemory::verify_lines_cost`] would predict per shard.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] across shards, in shard
    /// order, with data coordinates globalized.
    pub fn verify_lines(&self, lines: &[u64]) -> Result<(), IntegrityError> {
        let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &line in &crate::proof::canonical_lines(lines) {
            by_shard[self.plan.shard_of(line)].push(self.plan.local_line(line));
        }
        for (s, local) in by_shard.iter().enumerate() {
            if local.is_empty() {
                continue;
            }
            self.shards[s]
                .verify_lines(local)
                .map_err(|e| globalize_integrity(&self.plan, s, e))?;
        }
        Ok(())
    }

    /// Batch-verifies and decrypts `lines` (global coordinates), routing
    /// each line to its owning shard and running one
    /// [`SecureMemory::verify_and_read`] pass per touched shard.
    /// Plaintexts come back in **input order** (duplicates included);
    /// never-written lines read as zeroes.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] across shards, in shard
    /// order, with data coordinates globalized; no plaintext is released
    /// for any line of a failing batch.
    pub fn verify_and_read(
        &self,
        lines: &[u64],
    ) -> Result<Vec<[u8; CACHELINE_BYTES]>, IntegrityError> {
        let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &line in lines {
            by_shard[self.plan.shard_of(line)].push(self.plan.local_line(line));
        }
        let mut per_shard: Vec<std::collections::VecDeque<[u8; CACHELINE_BYTES]>> =
            Vec::with_capacity(self.shards.len());
        for (s, local) in by_shard.iter().enumerate() {
            per_shard.push(
                self.shards[s]
                    .verify_and_read(local)
                    .map_err(|e| globalize_integrity(&self.plan, s, e))?
                    .into(),
            );
        }
        Ok(lines
            .iter()
            .map(|&line| {
                // Each shard returned exactly one plaintext per routed
                // line, in routing order — both loops walk `lines`.
                #[allow(clippy::expect_used)]
                per_shard[self.plan.shard_of(line)]
                    .pop_front()
                    .expect("one plaintext per routed line")
            })
            .collect())
    }

    /// Total overflow re-encryptions across all shards.
    #[must_use]
    pub fn reencryptions(&self) -> u64 {
        self.shards.iter().map(SecureMemory::reencryptions).sum()
    }

    /// Routes `ops` into per-shard queues and marks dirtied shards.
    fn enqueue<'a>(&mut self, ops: &'a [Op]) -> ShardQueues<&'a Op> {
        let mut queues = ShardQueues::new(&self.plan);
        for (index, op) in ops.iter().enumerate() {
            let shard = self.plan.shard_of(op.line());
            if op.mutates() {
                self.dirty[shard] = true;
            }
            queues.push(shard, index, op);
        }
        queues
    }

    /// Gathers per-shard `(submission index, outcome)` results back into
    /// submission order.
    fn scatter(total: usize, results: Vec<(usize, OpOutcome)>) -> Vec<OpOutcome> {
        let mut out: Vec<Option<OpOutcome>> = (0..total).map(|_| None).collect();
        for (index, outcome) in results {
            out[index] = Some(outcome);
        }
        out.into_iter()
            .map(|slot| match slot {
                Some(outcome) => outcome,
                None => unreachable!("every submitted op produces an outcome"),
            })
            .collect()
    }

    /// Runs a batch of requests with `threads` workers, returning outcomes
    /// in submission order, then recombines the root once (coalesced).
    ///
    /// Workers own disjoint contiguous shard ranges (`chunks_mut`), so the
    /// batch needs no locks; per-shard program order is preserved by the
    /// FIFO queues, which is the only order that affects final state.
    pub fn run_batch(&mut self, ops: &[Op], threads: usize) -> Vec<OpOutcome> {
        let outcomes = self.run_batch_deferred(ops, threads);
        self.recombine();
        outcomes
    }

    /// [`ShardedMemory::run_batch`] without the trailing recombine: dirtied
    /// shards stay marked and the top root stays stale until the next
    /// [`ShardedMemory::recombine`] / [`ShardedMemory::combined_root`].
    ///
    /// This is the epoch-mode entry point: the epoch persistence layer
    /// batches cross-shard top recombination once per *epoch* instead of
    /// once per batch, so many batches share a single top fold at the
    /// epoch cut.
    pub fn run_batch_deferred(&mut self, ops: &[Op], threads: usize) -> Vec<OpOutcome> {
        let mut queues = self.enqueue(ops);
        let shard_count = self.plan.shards();
        let workers = threads.clamp(1, shard_count);
        let plan = self.plan;

        let results: Vec<(usize, OpOutcome)> = if workers == 1 {
            let mut results = Vec::with_capacity(ops.len());
            for (s, memory) in self.shards.iter_mut().enumerate() {
                apply_queue(&plan, s, memory, queues.take(s).into_iter(), &mut results);
            }
            results
        } else {
            let chunk = shard_count.div_ceil(workers);
            let mut per_shard: Vec<std::collections::VecDeque<(usize, &Op)>> =
                (0..shard_count).map(|s| queues.take(s)).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (w, (memories, queue_chunk)) in self
                    .shards
                    .chunks_mut(chunk)
                    .zip(per_shard.chunks_mut(chunk))
                    .enumerate()
                {
                    let base = w * chunk;
                    handles.push(scope.spawn(move || {
                        let mut results = Vec::new();
                        for (offset, (memory, queue)) in
                            memories.iter_mut().zip(queue_chunk.iter_mut()).enumerate()
                        {
                            apply_queue(
                                &plan,
                                base + offset,
                                memory,
                                queue.drain(..),
                                &mut results,
                            );
                        }
                        results
                    }));
                }
                let mut results = Vec::with_capacity(ops.len());
                for handle in handles {
                    match handle.join() {
                        Ok(part) => results.extend(part),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                results
            })
        };

        Self::scatter(ops.len(), results)
    }

    /// Runs a batch serially under a seeded cross-shard interleaving: each
    /// step services one request from a seeded-random non-empty shard
    /// queue. Exercises the same per-shard orderings as `run_batch` while
    /// making the cross-shard schedule an explicit, reproducible input —
    /// the stress suite sweeps seeds to prove final state is
    /// schedule-invariant.
    pub fn run_interleaved(&mut self, ops: &[Op], schedule_seed: u64) -> Vec<OpOutcome> {
        let mut queues = self.enqueue(ops);
        let mut schedule = InterleaveSchedule::new(schedule_seed);
        let mut results = Vec::with_capacity(ops.len());
        while let Some(shard) = schedule.next_shard(&queues) {
            if let Some((index, op)) = queues.pop(shard) {
                results.push((index, apply(&self.plan, shard, &mut self.shards[shard], op)));
            }
        }
        self.recombine();
        Self::scatter(ops.len(), results)
    }
}

/// The sharded *timing-plane* engine: one [`MetadataEngine`] (with its own
/// slice of the metadata cache) per address-range shard. Where
/// [`ShardedMemory`] actually encrypts and MACs bytes, this counts the
/// traffic a sharded memory controller would generate.
#[derive(Debug)]
pub struct ShardedEngine {
    plan: ShardPlan,
    shards: Vec<MetadataEngine>,
}

impl ShardedEngine {
    /// Creates a sharded engine; the `cache_bytes` metadata-cache budget is
    /// split evenly across shards (floored at 1 KiB per shard).
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] when the partition is impossible.
    pub fn new(
        config: TreeConfig,
        memory_bytes: u64,
        cache_bytes: usize,
        options: EngineOptions,
        shards: usize,
    ) -> Result<Self, ShardError> {
        let plan = ShardPlan::new(memory_bytes, shards)?;
        let per_shard_cache = (cache_bytes / plan.shards()).max(MIN_SHARD_CACHE_BYTES);
        let shards = (0..plan.shards())
            .map(|s| {
                MetadataEngine::with_options(
                    config.clone(),
                    plan.shard_memory_bytes(s),
                    per_shard_cache,
                    options,
                )
            })
            .collect();
        Ok(ShardedEngine { plan, shards })
    }

    /// The shard partition in use.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// One shard's engine (read-only; for inspection in tests).
    #[must_use]
    pub fn shard(&self, shard: usize) -> &MetadataEngine {
        &self.shards[shard]
    }

    /// Runs a `(global line, is_write)` batch with `threads` workers and
    /// returns the total number of memory accesses emitted. Per-shard
    /// engines see their requests in program order for any worker count,
    /// so [`ShardedEngine::merged_stats`] is thread-count-invariant.
    pub fn run_batch(&mut self, ops: &[(u64, bool)], threads: usize) -> u64 {
        let shard_count = self.plan.shards();
        let workers = threads.clamp(1, shard_count);
        let plan = self.plan;
        let mut per_shard: Vec<Vec<(u64, bool)>> = vec![Vec::new(); shard_count];
        for &(line, is_write) in ops {
            per_shard[plan.shard_of(line)].push((plan.local_line(line), is_write));
        }

        if workers == 1 {
            let mut scratch: Vec<MemAccess> = Vec::new();
            let mut emitted = 0u64;
            for (engine, queue) in self.shards.iter_mut().zip(&per_shard) {
                for &(local, is_write) in queue {
                    scratch.clear();
                    if is_write {
                        engine.write(local, &mut scratch);
                    } else {
                        engine.read(local, &mut scratch);
                    }
                    emitted += scratch.len() as u64;
                }
            }
            emitted
        } else {
            let chunk = shard_count.div_ceil(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (engines, queues) in
                    self.shards.chunks_mut(chunk).zip(per_shard.chunks(chunk))
                {
                    handles.push(scope.spawn(move || {
                        let mut scratch: Vec<MemAccess> = Vec::new();
                        let mut emitted = 0u64;
                        for (engine, queue) in engines.iter_mut().zip(queues) {
                            for &(local, is_write) in queue {
                                scratch.clear();
                                if is_write {
                                    engine.write(local, &mut scratch);
                                } else {
                                    engine.read(local, &mut scratch);
                                }
                                emitted += scratch.len() as u64;
                            }
                        }
                        emitted
                    }));
                }
                let mut emitted = 0u64;
                for handle in handles {
                    match handle.join() {
                        Ok(part) => emitted += part,
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                emitted
            })
        }
    }

    /// Aggregated statistics across all shard engines.
    #[must_use]
    pub fn merged_stats(&self) -> EngineStats {
        let levels = self
            .shards
            .iter()
            .map(|s| s.geometry().levels().len())
            .max()
            .unwrap_or(0);
        let mut merged = EngineStats::new(levels);
        for shard in &self.shards {
            merged.merge(shard.stats());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::MacMode;

    const MIB: u64 = 1 << 20;

    fn line_data(tag: u64) -> [u8; CACHELINE_BYTES] {
        let mut data = [0u8; CACHELINE_BYTES];
        data[..8].copy_from_slice(&tag.to_le_bytes());
        data
    }

    #[test]
    fn construction_surfaces_plan_errors() {
        assert_eq!(
            ShardedMemory::new(TreeConfig::morphtree(), MIB, [1; 16], 0).unwrap_err(),
            ShardError::ZeroShards
        );
        assert_eq!(
            ShardedEngine::new(
                TreeConfig::morphtree(),
                63,
                4096,
                EngineOptions::default(),
                2
            )
            .unwrap_err(),
            ShardError::UnalignedMemory { memory_bytes: 63 }
        );
    }

    #[test]
    fn write_read_roundtrip_across_shard_boundaries() {
        let mut memory = ShardedMemory::new(TreeConfig::morphtree(), MIB, [7; 16], 4).unwrap();
        let lines = memory.plan().data_lines();
        let width = memory.plan().shard_lines(0);
        // First/last line of every shard, plus both sides of each boundary.
        let probes: Vec<u64> = (0..4)
            .flat_map(|s| {
                let base = s * width;
                [base, base + width - 1]
            })
            .filter(|&l| l < lines)
            .collect();
        for &line in &probes {
            memory.write(line, &line_data(line));
        }
        for &line in &probes {
            assert_eq!(memory.read(line).unwrap(), line_data(line), "line {line}");
        }
        memory.verify_all().unwrap();
    }

    #[test]
    fn shards_do_not_share_keystreams() {
        // Same plaintext at the same *local* address of two shards must
        // produce different ciphertext (per-shard key derivation).
        let mut memory = ShardedMemory::new(TreeConfig::morphtree(), MIB, [7; 16], 2).unwrap();
        let width = memory.plan().shard_lines(0);
        memory.write(0, &line_data(99));
        memory.write(width, &line_data(99));
        let a = *memory.shard(0).data_store().get(0).unwrap();
        let b = *memory.shard(1).data_store().get(0).unwrap();
        assert_ne!(a, b, "shard keystreams must differ");
    }

    #[test]
    fn batch_outcomes_match_serial_routing_for_any_thread_count() {
        let ops: Vec<Op> = (0..200)
            .map(|i| {
                let line = (i * 37) % 1024;
                if i % 3 == 0 {
                    Op::Read { line }
                } else {
                    Op::Write { line, data: line_data(i) }
                }
            })
            .collect();
        let run = |threads: usize| {
            let mut memory =
                ShardedMemory::new(TreeConfig::morphtree(), MIB, [3; 16], 8).unwrap();
            let outcomes = memory.run_batch(&ops, threads);
            (outcomes, memory.combined_root())
        };
        let (base_outcomes, base_root) = run(1);
        for threads in [2, 4, 8, 13] {
            let (outcomes, root) = run(threads);
            assert_eq!(outcomes, base_outcomes, "{threads} threads");
            assert_eq!(root, base_root, "{threads} threads");
        }
    }

    #[test]
    fn a_batch_recombines_at_most_once() {
        let mut memory = ShardedMemory::new(TreeConfig::morphtree(), MIB, [3; 16], 4).unwrap();
        let ops: Vec<Op> =
            (0..64).map(|i| Op::Write { line: i * 11 % 1024, data: line_data(i) }).collect();
        memory.run_batch(&ops, 4);
        assert_eq!(memory.recombines(), 1, "one coalesced recombine per batch");
        let reads: Vec<Op> = (0..16).map(|i| Op::Read { line: i * 11 % 1024 }).collect();
        memory.run_batch(&reads, 4);
        assert_eq!(memory.recombines(), 1, "a read-only batch recombines nothing");
    }

    #[test]
    fn combined_root_tracks_writes() {
        let mut memory = ShardedMemory::new(TreeConfig::morphtree(), MIB, [3; 16], 4).unwrap();
        let before = memory.combined_root();
        memory.write(5000, &line_data(1));
        let after = memory.combined_root();
        assert_ne!(before, after, "a write must move the combined root");
        memory.write(5000, &line_data(1));
        assert_ne!(memory.combined_root(), after, "replayed write still bumps counters");
    }

    #[test]
    fn tamper_is_detected_with_global_coordinates() {
        let mut memory = ShardedMemory::new(TreeConfig::morphtree(), MIB, [9; 16], 4).unwrap();
        let line = memory.plan().shard_base(2) + 3; // third shard
        memory.write(line, &line_data(42));
        memory.tamper_raw(line, 10, 0xff).unwrap();
        let err = memory.read(line).unwrap_err();
        assert_eq!(err, IntegrityError::DataMac { line_addr: line * CACHELINE_BYTES as u64 });
        // Tampering a never-written line reports the global line index.
        let untouched = memory.plan().shard_base(3) + 1;
        assert_eq!(
            memory.tamper_mac(untouched, 1).unwrap_err(),
            TamperError::NeverWritten { data_line: untouched }
        );
    }

    #[test]
    fn interleaved_runs_agree_with_batch_runs() {
        let ops: Vec<Op> = (0..150)
            .map(|i| {
                let line = (i * 101) % 2048;
                if i % 4 == 0 {
                    Op::Read { line }
                } else {
                    Op::Write { line, data: line_data(i) }
                }
            })
            .collect();
        let mut batch = ShardedMemory::new(TreeConfig::morphtree(), MIB, [5; 16], 8).unwrap();
        let batch_out = batch.run_batch(&ops, 4);
        let batch_root = batch.combined_root();
        for seed in [1u64, 99, 12345] {
            let mut inter = ShardedMemory::new(TreeConfig::morphtree(), MIB, [5; 16], 8).unwrap();
            let out = inter.run_interleaved(&ops, seed);
            assert_eq!(out, batch_out, "seed {seed}");
            assert_eq!(inter.combined_root(), batch_root, "seed {seed}");
        }
    }

    #[test]
    fn sharded_engine_stats_are_thread_count_invariant() {
        let ops: Vec<(u64, bool)> =
            (0..5000).map(|i| ((i * 17) % 4096, i % 5 < 2)).collect();
        let run = |threads: usize| {
            let mut engine = ShardedEngine::new(
                TreeConfig::morphtree(),
                16 * MIB,
                8 * 1024,
                EngineOptions::default(),
                4,
            )
            .unwrap();
            let emitted = engine.run_batch(&ops, threads);
            (emitted, engine.merged_stats())
        };
        let (base_emitted, base_stats) = run(1);
        assert!(base_emitted > 0);
        assert_eq!(base_stats.data_reads + base_stats.data_writes, 5000);
        for threads in [2, 4, 7] {
            let (emitted, stats) = run(threads);
            assert_eq!(emitted, base_emitted, "{threads} threads");
            assert_eq!(stats, base_stats, "{threads} threads");
        }
    }

    #[test]
    fn sharded_engine_respects_mac_mode() {
        let mut engine = ShardedEngine::new(
            TreeConfig::morphtree(),
            4 * MIB,
            4 * 1024,
            EngineOptions { mac_mode: MacMode::Separate, ..EngineOptions::default() },
            2,
        )
        .unwrap();
        engine.run_batch(&[(0, false), (4000, true)], 2);
        let stats = engine.merged_stats();
        assert!(stats.reads[1] + stats.writes[1] > 0, "separate-MAC traffic expected");
    }
}
