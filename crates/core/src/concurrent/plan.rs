//! Address-range shard partitioning.

use crate::error::ShardError;
use crate::store::PagedStore;
use crate::CACHELINE_BYTES;

/// A partition of a protected address space into contiguous, equal-width
/// shard ranges.
///
/// Every data line maps to exactly one shard (`shard_of`), every
/// `(shard, local line)` pair maps back to its unique global line
/// (`global_line`), and the per-shard widths sum to the full space — the
/// partition laws the `shard_partition` property suite pins.
///
/// The last shard absorbs the remainder when the line count does not
/// divide evenly, so all other shards have identical width (which keeps
/// shard routing a single divide).
///
/// # Example
///
/// ```
/// use morphtree_core::concurrent::ShardPlan;
///
/// let plan = ShardPlan::new(1 << 20, 4).unwrap();
/// assert_eq!(plan.shards(), 4);
/// assert_eq!(plan.data_lines(), 16_384);
/// let line = 10_000;
/// let shard = plan.shard_of(line);
/// assert_eq!(plan.global_line(shard, plan.local_line(line)), line);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    memory_bytes: u64,
    data_lines: u64,
    shards: usize,
    /// Width of every shard except possibly the last.
    lines_per_shard: u64,
}

impl ShardPlan {
    /// Plans `shards` contiguous ranges over `memory_bytes` of protected
    /// data.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] when `shards` is zero, `memory_bytes` is
    /// zero or not cacheline-aligned, or there are fewer data lines than
    /// shards (an empty shard would own no subtree).
    pub fn new(memory_bytes: u64, shards: usize) -> Result<ShardPlan, ShardError> {
        if shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        if memory_bytes == 0 || !memory_bytes.is_multiple_of(CACHELINE_BYTES as u64) {
            return Err(ShardError::UnalignedMemory { memory_bytes });
        }
        let data_lines = memory_bytes / CACHELINE_BYTES as u64;
        if (shards as u64) > data_lines {
            return Err(ShardError::TooManyShards { shards, data_lines });
        }
        Ok(ShardPlan {
            memory_bytes,
            data_lines,
            shards,
            lines_per_shard: data_lines / shards as u64,
        })
    }

    /// Bytes of protected data across all shards.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Total protected data lines across all shards.
    #[must_use]
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Number of shards in the partition.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// First global line owned by `shard`.
    #[must_use]
    pub fn shard_base(&self, shard: usize) -> u64 {
        debug_assert!(shard < self.shards);
        self.lines_per_shard * shard as u64
    }

    /// Number of lines `shard` owns (the last shard absorbs any
    /// remainder).
    #[must_use]
    pub fn shard_lines(&self, shard: usize) -> u64 {
        debug_assert!(shard < self.shards);
        if shard + 1 == self.shards {
            self.data_lines - self.shard_base(shard)
        } else {
            self.lines_per_shard
        }
    }

    /// Bytes of protected data `shard` owns.
    #[must_use]
    pub fn shard_memory_bytes(&self, shard: usize) -> u64 {
        self.shard_lines(shard) * CACHELINE_BYTES as u64
    }

    /// The shard owning global `data_line`.
    ///
    /// # Panics
    ///
    /// Panics if `data_line` is outside the planned address space —
    /// routing an unplanned address is a front-end bug that must stay
    /// loud.
    #[must_use]
    pub fn shard_of(&self, data_line: u64) -> usize {
        assert!(
            data_line < self.data_lines,
            "data line {data_line} outside the planned space ({} lines)",
            self.data_lines
        );
        ((data_line / self.lines_per_shard) as usize).min(self.shards - 1)
    }

    /// `data_line`'s index within its owning shard.
    #[must_use]
    pub fn local_line(&self, data_line: u64) -> u64 {
        data_line - self.shard_base(self.shard_of(data_line))
    }

    /// The global line for `(shard, local)`.
    #[must_use]
    pub fn global_line(&self, shard: usize, local: u64) -> u64 {
        debug_assert!(local < self.shard_lines(shard));
        self.shard_base(shard) + local
    }

    /// Splits a global [`PagedStore`] into per-shard stores keyed by local
    /// line index. Entries land in the shard that owns their index; the
    /// inverse of [`ShardPlan::merge_stores`].
    #[must_use]
    pub fn split_store<T: Clone>(&self, store: &PagedStore<T>) -> Vec<PagedStore<T>> {
        let mut parts: Vec<PagedStore<T>> =
            (0..self.shards).map(|s| PagedStore::new(self.shard_lines(s))).collect();
        for (line, value) in store.iter() {
            if line >= self.data_lines {
                continue; // entries beyond the plan belong to no shard
            }
            let shard = self.shard_of(line);
            parts[shard].insert(self.local_line(line), value.clone());
        }
        parts
    }

    /// Merges per-shard stores back into one global store — the exact
    /// serial contents, as the partition property suite proves.
    ///
    /// # Panics
    ///
    /// Panics if `parts` does not have one store per shard.
    #[must_use]
    pub fn merge_stores<T: Clone>(&self, parts: &[PagedStore<T>]) -> PagedStore<T> {
        assert_eq!(parts.len(), self.shards, "one store per shard required");
        let mut merged = PagedStore::new(self.data_lines);
        for (shard, part) in parts.iter().enumerate() {
            for (local, value) in part.iter() {
                merged.insert(self.global_line(shard, local), value.clone());
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ShardError;

    #[test]
    fn plan_rejects_degenerate_inputs() {
        assert_eq!(ShardPlan::new(1 << 20, 0).unwrap_err(), ShardError::ZeroShards);
        assert_eq!(
            ShardPlan::new(100, 2).unwrap_err(),
            ShardError::UnalignedMemory { memory_bytes: 100 }
        );
        assert_eq!(ShardPlan::new(0, 2).unwrap_err(), ShardError::UnalignedMemory { memory_bytes: 0 });
        assert_eq!(
            ShardPlan::new(128, 3).unwrap_err(),
            ShardError::TooManyShards { shards: 3, data_lines: 2 }
        );
    }

    #[test]
    fn widths_sum_to_the_full_space() {
        for (memory, shards) in [(1u64 << 20, 1usize), (1 << 20, 7), (192, 3), (256, 4)] {
            let plan = ShardPlan::new(memory, shards).unwrap();
            let total: u64 = (0..shards).map(|s| plan.shard_lines(s)).sum();
            assert_eq!(total, plan.data_lines(), "memory {memory} shards {shards}");
        }
    }

    #[test]
    fn uneven_split_gives_the_remainder_to_the_last_shard() {
        // 10 lines over 3 shards: 3 + 3 + 4.
        let plan = ShardPlan::new(10 * 64, 3).unwrap();
        assert_eq!(plan.shard_lines(0), 3);
        assert_eq!(plan.shard_lines(1), 3);
        assert_eq!(plan.shard_lines(2), 4);
        assert_eq!(plan.shard_of(8), 2);
        assert_eq!(plan.shard_of(9), 2);
        assert_eq!(plan.local_line(9), 3);
        assert_eq!(plan.global_line(2, 3), 9);
    }

    #[test]
    #[should_panic(expected = "outside the planned space")]
    fn routing_an_unplanned_address_is_loud() {
        let plan = ShardPlan::new(1 << 10, 2).unwrap();
        let _ = plan.shard_of(16);
    }

    #[test]
    fn split_then_merge_is_identity() {
        let plan = ShardPlan::new(1000 * 64, 7).unwrap();
        let mut store: PagedStore<u64> = PagedStore::new(1000);
        for line in (0..1000).step_by(13) {
            store.insert(line, line * 3 + 1);
        }
        let parts = plan.split_store(&store);
        let merged = plan.merge_stores(&parts);
        let a: Vec<(u64, u64)> = store.iter().map(|(i, v)| (i, *v)).collect();
        let b: Vec<(u64, u64)> = merged.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(a, b);
    }
}
