//! Per-shard request queues and seeded service-order schedules.
//!
//! The front-end routes every request to the FIFO queue of its owning
//! shard — the same shape as the per-bank FR-FCFS queues in the DRAM
//! controller model, but for engine ops. Workers drain whole queues;
//! the [`InterleaveSchedule`] instead drains one request at a time from a
//! seeded-random queue, so tests can *enumerate* cross-shard
//! interleavings reproducibly instead of hoping the thread scheduler
//! happens to produce interesting ones.

use std::collections::VecDeque;

use super::plan::ShardPlan;
use super::SplitMix64;

/// FIFO request queues, one per shard, holding `(submission index, T)`
/// pairs. Same-shard order is program order; cross-shard order is
/// whatever the drain policy chooses — which is safe, because shards are
/// disjoint state.
#[derive(Debug, Clone)]
pub struct ShardQueues<T> {
    queues: Vec<VecDeque<(usize, T)>>,
}

impl<T> ShardQueues<T> {
    /// Empty queues for every shard of `plan`.
    #[must_use]
    pub fn new(plan: &ShardPlan) -> Self {
        ShardQueues {
            queues: (0..plan.shards()).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Appends a request to `shard`'s queue.
    pub fn push(&mut self, shard: usize, index: usize, request: T) {
        self.queues[shard].push_back((index, request));
    }

    /// Pops the oldest request of `shard`, if any.
    pub fn pop(&mut self, shard: usize) -> Option<(usize, T)> {
        self.queues[shard].pop_front()
    }

    /// Requests still enqueued across all shards.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Queue depth of one shard.
    #[must_use]
    pub fn depth(&self, shard: usize) -> usize {
        self.queues[shard].len()
    }

    /// Number of shard queues.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Takes the whole queue of `shard`, leaving it empty (workers drain
    /// their shards wholesale).
    pub fn take(&mut self, shard: usize) -> VecDeque<(usize, T)> {
        std::mem::take(&mut self.queues[shard])
    }
}

/// A deterministic cross-shard service order: each step picks a seeded
/// pseudo-random *non-empty* queue. Two schedules with the same seed are
/// identical; different seeds explore different interleavings of the same
/// request population.
#[derive(Debug, Clone)]
pub struct InterleaveSchedule {
    rng: SplitMix64,
}

impl InterleaveSchedule {
    /// A schedule driven by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        InterleaveSchedule { rng: SplitMix64::new(seed) }
    }

    /// The shard to service next, or `None` when every queue is empty.
    /// Starts from a seeded-random shard and linearly probes to the next
    /// non-empty queue, so every backlogged shard is eventually served
    /// (no starvation) while the visit order still varies with the seed.
    pub fn next_shard<T>(&mut self, queues: &ShardQueues<T>) -> Option<usize> {
        let shards = queues.shards();
        if queues.remaining() == 0 {
            return None;
        }
        let start = self.rng.below(shards as u64) as usize;
        (0..shards).map(|i| (start + i) % shards).find(|&s| queues.depth(s) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ShardPlan {
        ShardPlan::new(64 * 64, 4).unwrap()
    }

    #[test]
    fn queues_preserve_per_shard_fifo_order() {
        let mut q: ShardQueues<u32> = ShardQueues::new(&plan());
        q.push(1, 0, 10);
        q.push(1, 1, 11);
        q.push(3, 2, 12);
        assert_eq!(q.remaining(), 3);
        assert_eq!(q.pop(1), Some((0, 10)));
        assert_eq!(q.pop(1), Some((1, 11)));
        assert_eq!(q.pop(1), None);
        assert_eq!(q.take(3), VecDeque::from([(2, 12)]));
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn schedule_is_deterministic_and_drains_everything() {
        let mut q: ShardQueues<u32> = ShardQueues::new(&plan());
        for i in 0..40 {
            q.push(i % 4, i, i as u32);
        }
        let mut order_a = Vec::new();
        let mut sched = InterleaveSchedule::new(9);
        let mut qa = q.clone();
        while let Some(s) = sched.next_shard(&qa) {
            order_a.push(qa.pop(s).unwrap().0);
        }
        assert_eq!(order_a.len(), 40);

        let mut sched = InterleaveSchedule::new(9);
        let mut order_b = Vec::new();
        while let Some(s) = sched.next_shard(&q) {
            order_b.push(q.pop(s).unwrap().0);
        }
        assert_eq!(order_a, order_b, "same seed, same schedule");
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let base: ShardQueues<u32> = {
            let mut q = ShardQueues::new(&plan());
            for i in 0..32 {
                q.push(i % 4, i, i as u32);
            }
            q
        };
        let drain = |seed: u64| {
            let mut q = base.clone();
            let mut sched = InterleaveSchedule::new(seed);
            let mut order = Vec::new();
            while let Some(s) = sched.next_shard(&q) {
                order.push(q.pop(s).unwrap().0);
            }
            order
        };
        assert_ne!(drain(1), drain(2), "schedules should differ across seeds");
    }
}
