//! The concurrent multi-tenant secure-memory engine: per-shard subtrees
//! under a shared top root, with per-shard request queues drained by
//! worker threads.
//!
//! # Architecture
//!
//! The single-threaded [`crate::functional::SecureMemory`] protects one
//! address space with one integrity tree. This module scales it out the
//! way a multi-channel memory controller would:
//!
//! - a [`ShardPlan`] partitions the protected address space into
//!   contiguous, equal-width ranges — every data line belongs to exactly
//!   one shard (a true partition, proven by property tests);
//! - each shard owns an independent [`SecureMemory`] subtree over its
//!   range (its `PagedStore` flat maps, counter levels and on-chip
//!   subtree root are private to the shard, so shards never contend);
//! - a small shared *top* recombines the per-shard subtree roots into one
//!   keyed root MAC. Recombination is *coalesced*, in the spirit of
//!   Freij et al.'s streamed integrity-tree updates: a batch only
//!   recomputes the digests of the shards it dirtied, and the top MAC is
//!   refolded from the cached digests;
//! - the batched front-end routes each request to its shard's FIFO queue
//!   (mirroring the per-bank FR-FCFS queues of the DRAM controller in
//!   `morphtree-sim`) and `N` workers drain disjoint shard sets in
//!   parallel — program order is preserved *per shard*, which is exactly
//!   the order that matters, because cross-shard requests touch disjoint
//!   state.
//!
//! # Determinism
//!
//! The final state of a batch is a pure function of the request sequence:
//! per-shard queues serialize same-shard requests in program order, and
//! requests on different shards commute. The lockstep-oracle suite
//! (`tests/engine_concurrent_equivalence.rs`) pins this: any thread
//! count, and any seeded interleaving of queue service
//! ([`ShardedMemory::run_interleaved`]), produces byte-identical data,
//! identical tamper verdicts, and an identical combined root.
//!
//! [`SecureMemory`]: crate::functional::SecureMemory

mod engine;
mod plan;
mod queue;

pub use engine::{Op, OpOutcome, ShardedEngine, ShardedMemory};
pub(crate) use engine::fold_digests;
pub use plan::ShardPlan;
pub use queue::{InterleaveSchedule, ShardQueues};

/// SplitMix64: the tiny, seedable PRNG the concurrent harnesses use for
/// schedule permutations and op-mix generation. Public so test suites and
/// the CLI serve mode share one deterministic stream implementation (the
/// attack module uses the same generator).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`); modulo bias is irrelevant at
    /// the scales these harnesses run at.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), 16);
        assert!(a.below(10) < 10);
    }
}
