//! A *functional* secure memory: real bytes, real encryption, real MACs,
//! real replay protection.
//!
//! The timing model ([`crate::metadata`]) counts accesses; this module
//! proves the security architecture actually works, reproducing §II-A and
//! the §V security analysis end-to-end:
//!
//! - data lines are encrypted with counter-mode AES over
//!   `(address, effective counter)` pads;
//! - every data line carries a MAC bound to its address and counter;
//! - every counter line carries a MAC keyed by its *parent* counter, up to
//!   an on-chip root, so replaying any stale `{data, MAC, counter}` tuple is
//!   detected;
//! - counter overflows re-encrypt exactly the children whose effective
//!   counters changed, and rebasing re-encrypts nothing.
//!
//! The [`SecureMemory::tamper_raw`] and [`SecureMemory::snapshot`] /
//! [`SecureMemory::replay`] hooks play the adversary with physical access.
//!
//! # Example
//!
//! ```
//! use morphtree_core::functional::SecureMemory;
//! use morphtree_core::tree::TreeConfig;
//!
//! let mut mem = SecureMemory::new(TreeConfig::morphtree(), 1 << 20, [7u8; 16]);
//! mem.write(3, &[0xab; 64]);
//! assert_eq!(mem.read(3).unwrap(), [0xab; 64]);
//!
//! // An adversary flips a bit in DRAM: the next read detects it.
//! mem.tamper_raw(3, 0, 0x01).unwrap();
//! assert!(mem.read(3).is_err());
//! ```

use std::cell::Cell;

use morphtree_crypto::{CtrModeCipher, MacKey, MacTag};

/// Upper bound on integrity-chain depth (levels from data to root). The
/// deepest evaluated geometry (arity-8 SGX-style counters over a 16 GiB
/// memory) is under 12 levels; 24 leaves generous headroom and keeps
/// per-read chain verification allocation-free.
const MAX_CHAIN: usize = 24;

/// Lines per batched MAC pass in the bulk verifiers — enough to amortize
/// loop overhead and keep the interleaved SipHash states hot without
/// oversizing the stack buffers.
const VERIFY_BATCH: usize = 16;

use crate::counters::morph::MorphLine;
use crate::counters::split::{SplitConfig, SplitLine};
use crate::counters::{CounterLine, CounterOrg, IncrementOutcome, Line};
use crate::error::{CodecError, IntegrityError, TamperError};
use crate::store::PagedStore;
use crate::tree::{TreeConfig, TreeGeometry};
use crate::CACHELINE_BYTES;

/// A snapshot of one data line's off-chip state (ciphertext + MAC +
/// the covering encryption-counter line image), used to mount replay
/// attacks in tests.
#[derive(Debug, Clone)]
pub struct LineSnapshot {
    data_line: u64,
    ciphertext: [u8; CACHELINE_BYTES],
    mac: u64,
    counter_line: Line,
}

/// The set of lines a sequence of writes touched, recorded while
/// journaling is enabled (see [`SecureMemory::begin_journal`]).
///
/// `BTreeSet`s keep the iteration order deterministic, so the WAL records
/// the persistence layer derives from a journal are byte-stable across
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationJournal {
    /// Data lines whose ciphertext or MAC changed.
    pub data_lines: std::collections::BTreeSet<u64>,
    /// Counter lines `(level, line_idx)` whose content changed.
    pub counter_lines: std::collections::BTreeSet<(usize, u64)>,
}

impl MutationJournal {
    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data_lines.is_empty() && self.counter_lines.is_empty()
    }
}

/// Running totals of cryptographic primitive invocations inside a
/// [`SecureMemory`].
///
/// These are *observability* counters for the metrics layer: every
/// counter-mode pad generation (OTP) and every MAC computation is counted
/// at its call site, whether triggered by a demand access, an overflow
/// re-encryption, or chain verification. They have no effect on the
/// memory's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CryptoOps {
    /// Counter-mode encryptions (pad generation + XOR) of a 64-byte line.
    pub otp_encrypts: u64,
    /// Counter-mode decryptions of a 64-byte line.
    pub otp_decrypts: u64,
    /// MAC computations over a 64-byte line (data MACs, counter-line MACs,
    /// and verification re-computations alike).
    pub mac_computes: u64,
}

impl CryptoOps {
    /// Total primitive invocations of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.otp_encrypts + self.otp_decrypts + self.mac_computes
    }
}

/// A byte-level secure memory with encryption, integrity and replay
/// protection over a configurable integrity tree.
///
/// `Clone` is cheap enough for testing: the attack campaign runner clones a
/// prepared victim state once per attack so attacks never contaminate each
/// other.
#[derive(Debug, Clone)]
pub struct SecureMemory {
    config: TreeConfig,
    geometry: TreeGeometry,
    cipher: CtrModeCipher,
    mac_key: MacKey,
    /// The construction key, retained so the persistence layer can rebuild
    /// an identical memory from a snapshot. A *model* concession: real
    /// hardware never externalizes its key; here the snapshot stands in for
    /// the SoC's sealed state.
    key: [u8; 16],
    /// Ciphertext per data line (absent = never written; reads return
    /// zeroes without touching the tree). Paged flat store keyed by line
    /// index (see [`crate::store`]).
    data: PagedStore<[u8; CACHELINE_BYTES]>,
    /// MAC per data line.
    data_macs: PagedStore<u64>,
    /// Counter lines per level; each line's `mac()` field holds its stored
    /// MAC (keyed by its parent counter). The root level is on-chip and
    /// needs no MAC.
    levels: Vec<PagedStore<Line>>,
    /// Count of child re-encryptions performed due to counter overflows
    /// (observable cost, for tests and examples).
    reencryptions: u64,
    /// Reusable scratch for the pre-increment counter snapshot in
    /// [`SecureMemory::bump`]: one allocation for the memory's lifetime
    /// instead of one per counter bump. A frame is always done with the
    /// scratch before it recurses, so a single buffer suffices.
    bump_scratch: Vec<u64>,
    /// Crypto-primitive invocation totals. In a `Cell` because the read /
    /// verification path is `&self` but still performs (and must count)
    /// MAC and decryption work.
    crypto: Cell<CryptoOps>,
    /// Mutation journal, populated while enabled (see
    /// [`SecureMemory::begin_journal`]). `None` costs nothing on the write
    /// path.
    journal: Option<MutationJournal>,
}

impl SecureMemory {
    /// Creates a secure memory over `memory_bytes` of protected data.
    ///
    /// The single `key` seeds both the encryption and MAC keys (domain
    /// separated).
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is zero or not cacheline-aligned.
    #[must_use]
    pub fn new(config: TreeConfig, memory_bytes: u64, key: [u8; 16]) -> Self {
        let geometry = TreeGeometry::new(&config, memory_bytes);
        let mut mac_seed = key;
        mac_seed[0] ^= 0x5a; // domain separation from the encryption key
        SecureMemory {
            config,
            cipher: CtrModeCipher::new(key),
            mac_key: MacKey::new(mac_seed),
            key,
            data: PagedStore::new(geometry.data_lines()),
            data_macs: PagedStore::new(geometry.data_lines()),
            levels: geometry
                .levels()
                .iter()
                .map(|level| PagedStore::new(level.lines))
                .collect(),
            reencryptions: 0,
            bump_scratch: Vec::new(),
            crypto: Cell::new(CryptoOps::default()),
            journal: None,
            geometry,
        }
    }

    /// The tree configuration in use.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Crypto-primitive invocation totals accumulated so far.
    #[must_use]
    pub fn crypto_ops(&self) -> CryptoOps {
        self.crypto.get()
    }

    /// Applies `f` to the crypto counters (interior mutability: the read
    /// path is `&self` but still counts work).
    fn charge(&self, f: impl FnOnce(&mut CryptoOps)) {
        let mut ops = self.crypto.get();
        f(&mut ops);
        self.crypto.set(ops);
    }

    /// The AES backend the counter-mode cipher dispatches to (selected
    /// at construction; see [`morphtree_crypto::aes::selected_backend`]).
    #[must_use]
    pub fn cipher_backend(&self) -> morphtree_crypto::AesBackend {
        self.cipher.backend()
    }

    /// The tree geometry in use.
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Total child re-encryptions caused by counter overflows so far.
    #[must_use]
    pub fn reencryptions(&self) -> u64 {
        self.reencryptions
    }

    /// A 64-bit digest of the tree's root state: the encoded top-level
    /// counter line plus its MAC, hashed with FNV-1a. Two memories with the
    /// same history have the same digest; any write changes it (the bump
    /// chain always reaches the top level). The sharded engine
    /// ([`crate::concurrent::ShardedMemory`]) folds these per-shard digests
    /// into its combined root MAC.
    #[must_use]
    pub fn root_digest(&self) -> u64 {
        let top = self.geometry.top_level();
        match self.levels[top].get(0) {
            None => crate::persist::codec::fnv1a(&[]),
            Some(line) => {
                let mut image = [0u8; CACHELINE_BYTES + 8];
                image[..CACHELINE_BYTES].copy_from_slice(&line.encode_for_mac());
                image[CACHELINE_BYTES..].copy_from_slice(&line.mac().to_le_bytes());
                crate::persist::codec::fnv1a(&image)
            }
        }
    }

    /// Effective encryption counter for `data_line`.
    #[must_use]
    pub fn counter_of(&self, data_line: u64) -> u64 {
        let (line_idx, slot) = self.geometry.parent_of(0, data_line);
        self.levels[0]
            .get(line_idx)
            .map_or(0, |line| line.get(slot))
    }

    fn data_addr(&self, data_line: u64) -> u64 {
        data_line * CACHELINE_BYTES as u64
    }

    fn line_or_new(&mut self, level: usize, line_idx: u64) -> &mut Line {
        let org = self.config.org(level);
        self.levels[level].get_or_insert_with(line_idx, || org.new_line())
    }

    /// MAC of a metadata line at `level`, keyed by its parent counter.
    fn counter_line_mac(&self, level: usize, line_idx: u64, body: &[u8; 64]) -> u64 {
        let parent_value = if level == self.geometry.top_level() {
            // The root line lives in on-chip trusted storage; give it a
            // fixed key component.
            0
        } else {
            let (parent_idx, slot) = self.geometry.parent_of(level + 1, line_idx);
            self.levels[level + 1]
                .get(parent_idx)
                .map_or(0, |line| line.get(slot))
        };
        let addr = self.geometry.line_addr(level, line_idx);
        self.charge(|ops| ops.mac_computes += 1);
        self.mac_key.mac_line(addr, parent_value, body).0
    }

    /// Recomputes and stores the MAC of a metadata line.
    ///
    /// Every counter-line mutation a write performs ends with a MAC refresh
    /// of the touched line (increments in [`SecureMemory::bump`], overflow
    /// child repairs), so this is the single choke point where counter
    /// mutations reach the journal.
    fn refresh_line_mac(&mut self, level: usize, line_idx: u64) {
        let body = {
            let line = self.line_or_new(level, line_idx);
            line.encode_for_mac()
        };
        let mac = self.counter_line_mac(level, line_idx, &body);
        self.line_or_new(level, line_idx).set_mac(mac);
        if let Some(journal) = self.journal.as_mut() {
            journal.counter_lines.insert((level, line_idx));
        }
    }

    /// Re-encrypts a data child after its effective counter changed from
    /// `old_counter` to the current value.
    fn reencrypt_data_child(&mut self, data_line: u64, old_counter: u64) {
        let addr = self.data_addr(data_line);
        if let Some(ciphertext) = self.data.get(data_line).copied() {
            self.charge(|ops| {
                ops.otp_decrypts += 1;
                ops.otp_encrypts += 1;
                ops.mac_computes += 1;
            });
            let plaintext = self.cipher.decrypt_line(addr, old_counter, &ciphertext);
            let new_counter = self.counter_of(data_line);
            let fresh = self.cipher.encrypt_line(addr, new_counter, &plaintext);
            let mac = self.mac_key.mac_line(addr, new_counter, &fresh).0;
            self.data.insert(data_line, fresh);
            self.data_macs.insert(data_line, mac);
            self.reencryptions += 1;
            if let Some(journal) = self.journal.as_mut() {
                journal.data_lines.insert(data_line);
            }
        }
    }

    /// Increments the counter at `level` covering `child_idx`, propagating
    /// to the parent and repairing all affected MACs / ciphertexts.
    fn bump(&mut self, level: usize, child_idx: u64) {
        let (line_idx, slot) = self.geometry.parent_of(level, child_idx);
        let arity = self.geometry.levels()[level].arity;

        // Snapshot child counters in case an overflow changes them, reusing
        // the memory-lifetime scratch buffer (taken out of `self` so the
        // repair calls below can borrow `self` mutably).
        let mut old_values = std::mem::take(&mut self.bump_scratch);
        old_values.clear();
        {
            let line = self.line_or_new(level, line_idx);
            old_values.extend((0..arity).map(|s| line.get(s)));
        }

        let outcome = self.line_or_new(level, line_idx).increment(slot);

        if let IncrementOutcome::Overflow(event) = outcome {
            let children_total: u64 = if level == 0 {
                self.geometry.data_lines()
            } else {
                self.geometry.levels()[level - 1].lines
            };
            for s in event.span.slots(arity) {
                let child = line_idx * arity as u64 + s as u64;
                if child >= children_total {
                    break;
                }
                if level == 0 {
                    self.reencrypt_data_child(child, old_values[s]);
                } else {
                    // Child counter line's MAC is keyed by its (changed)
                    // parent counter: recompute it.
                    if self.levels[level - 1].contains(child) {
                        self.refresh_line_mac(level - 1, child);
                        self.reencryptions += 1;
                    }
                }
            }
        }
        // This frame is done with the snapshot; hand the buffer back before
        // recursing so the parent frame reuses the same allocation.
        self.bump_scratch = old_values;

        // Propagate the write upward (replay protection: the parent counter
        // must advance whenever this line changes), then re-MAC this line
        // under the new parent value.
        if level < self.geometry.top_level() {
            self.bump(level + 1, line_idx);
        }
        self.refresh_line_mac(level, line_idx);
    }

    /// Writes a plaintext line.
    pub fn write(&mut self, data_line: u64, plaintext: &[u8; CACHELINE_BYTES]) {
        assert!(data_line < self.geometry.data_lines(), "data line out of range");
        self.bump(0, data_line);
        let counter = self.counter_of(data_line);
        let addr = self.data_addr(data_line);
        self.charge(|ops| {
            ops.otp_encrypts += 1;
            ops.mac_computes += 1;
        });
        let mut ciphertext = [0u8; CACHELINE_BYTES];
        self.cipher
            .encrypt_line_into(addr, counter, plaintext, &mut ciphertext);
        let mac = self.mac_key.mac_line(addr, counter, &ciphertext).0;
        self.data.insert(data_line, ciphertext);
        self.data_macs.insert(data_line, mac);
        if let Some(journal) = self.journal.as_mut() {
            journal.data_lines.insert(data_line);
        }
    }

    /// Reads and verifies a line: checks the data MAC and every counter-line
    /// MAC up to the on-chip root.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] when any MAC fails — i.e. when tampering
    /// or replay is detected.
    pub fn read(&self, data_line: u64) -> Result<[u8; CACHELINE_BYTES], IntegrityError> {
        assert!(data_line < self.geometry.data_lines(), "data line out of range");
        let Some(ciphertext) = self.data.get(data_line) else {
            // Never written: defined to read as zeroes.
            return Ok([0u8; CACHELINE_BYTES]);
        };
        let addr = self.data_addr(data_line);
        let counter = self.counter_of(data_line);
        self.charge(|ops| ops.mac_computes += 1);
        let expect = self.mac_key.mac_line(addr, counter, ciphertext).0;
        // A written line must have a stored MAC. Treating a missing MAC as
        // "0" would hand an adversary a trivially forgeable sentinel value;
        // make the inconsistency a verification failure instead.
        let Some(&stored) = self.data_macs.get(data_line) else {
            return Err(IntegrityError::MissingMac { line_addr: addr });
        };
        if stored != expect {
            return Err(IntegrityError::DataMac { line_addr: addr });
        }
        self.verify_chain(data_line)?;
        self.charge(|ops| ops.otp_decrypts += 1);
        let mut plaintext = [0u8; CACHELINE_BYTES];
        self.cipher
            .decrypt_line_into(addr, counter, ciphertext, &mut plaintext);
        Ok(plaintext)
    }

    /// Verifies the counter-line MAC chain covering `data_line`.
    ///
    /// The chain's lines are collected first and their MACs computed in
    /// one batched [`MacKey::mac_lines_into`] pass (interleaved SipHash
    /// states), allocation-free via fixed stack buffers — the chain depth
    /// is bounded by [`MAX_CHAIN`].
    fn verify_chain(&self, data_line: u64) -> Result<(), IntegrityError> {
        let mut bodies = [[0u8; 64]; MAX_CHAIN];
        // (level, line_idx, line addr, parent-counter key, stored MAC).
        let mut meta = [(0usize, 0u64, 0u64, 0u64, 0u64); MAX_CHAIN];
        let mut count = 0;
        let mut child = data_line;
        for level in 0..=self.geometry.top_level() {
            let (line_idx, _) = self.geometry.parent_of(level, child);
            if let Some(line) = self.levels[level].get(line_idx) {
                // The root line (level == top) is on-chip: trusted.
                if level < self.geometry.top_level() {
                    let (parent_idx, slot) = self.geometry.parent_of(level + 1, line_idx);
                    let parent_value = self.levels[level + 1]
                        .get(parent_idx)
                        .map_or(0, |parent| parent.get(slot));
                    bodies[count] = line.encode_for_mac();
                    meta[count] = (
                        level,
                        line_idx,
                        self.geometry.line_addr(level, line_idx),
                        parent_value,
                        line.mac(),
                    );
                    count += 1;
                }
            }
            child = line_idx;
        }
        self.charge(|ops| ops.mac_computes += count as u64);
        let inputs: [(u64, u64, &[u8; 64]); MAX_CHAIN] =
            core::array::from_fn(|i| (meta[i].2, meta[i].3, &bodies[i]));
        let mut tags = [MacTag(0); MAX_CHAIN];
        self.mac_key
            .mac_lines_into(&inputs[..count], &mut tags[..count]);
        for (tag, &(level, line_idx, _, _, stored)) in tags.iter().zip(&meta).take(count) {
            if stored != tag.0 {
                return Err(IntegrityError::CounterMac { level, line_idx });
            }
        }
        Ok(())
    }

    /// Batch-verifies the data MACs of `lines` and the MACs of their
    /// (deduplicated) ancestor counter lines — the bulk form of calling
    /// [`SecureMemory::read`] per line, minus the useless OTP decrypts:
    /// the MAC covers the *ciphertext*, so decryption verifies nothing.
    ///
    /// Shared ancestors are verified once, not once per descendant, and
    /// all MACs go through the batched SipHash pass. Bounded recovery's
    /// touched-line re-verification is the primary caller.
    ///
    /// Never-written lines are skipped (they read as zeroes by
    /// definition, with nothing stored off-chip to verify).
    ///
    /// Duplicate or unsorted input lines are canonicalized (sorted,
    /// deduplicated) first, so each line is checked exactly once and the
    /// MAC count always equals [`SecureMemory::verify_lines_cost`] — the
    /// invariant bounded recovery's crossover heuristic relies on.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] found, identifying the
    /// failing line.
    pub fn verify_lines(&self, lines: &[u64]) -> Result<(), IntegrityError> {
        let lines = crate::proof::canonical_lines(lines);
        // Data MACs first (cheapest to gather: ciphertexts are borrowed
        // straight from the store), in batches.
        let mut batch: Vec<(u64, u64, &[u8; CACHELINE_BYTES])> =
            Vec::with_capacity(VERIFY_BATCH);
        let mut addrs: Vec<u64> = Vec::with_capacity(VERIFY_BATCH);
        let mut tags = [MacTag(0); VERIFY_BATCH];
        for chunk in lines.chunks(VERIFY_BATCH) {
            batch.clear();
            addrs.clear();
            for &line in chunk {
                assert!(line < self.geometry.data_lines(), "data line out of range");
                if let Some(ciphertext) = self.data.get(line) {
                    let addr = self.data_addr(line);
                    batch.push((addr, self.counter_of(line), ciphertext));
                    addrs.push(line);
                }
            }
            self.charge(|ops| ops.mac_computes += batch.len() as u64);
            self.mac_key.mac_lines_into(&batch, &mut tags[..batch.len()]);
            for ((tag, &line), &(addr, _, _)) in
                tags.iter().zip(&addrs).zip(&batch)
            {
                let Some(&stored) = self.data_macs.get(line) else {
                    return Err(IntegrityError::MissingMac { line_addr: addr });
                };
                if stored != tag.0 {
                    return Err(IntegrityError::DataMac { line_addr: addr });
                }
            }
        }
        // Ancestor counter lines, deduplicated across the whole batch.
        let chain: Vec<(usize, u64)> = self.chain_lines_of(&lines).into_iter().collect();
        self.verify_counter_batch(&chain)
    }

    /// Batch-verifies `lines` and returns their plaintexts in **input
    /// order** — the bulk form of calling [`SecureMemory::read`] per
    /// line, with every MAC going through the batched SipHash pass and
    /// every decryption through the bulk counter-mode path
    /// ([`morphtree_crypto::CtrModeCipher::decrypt_lines_into`], four
    /// lines per AES call on the `vaes` backend).
    ///
    /// Verification canonicalizes exactly like
    /// [`SecureMemory::verify_lines`]: duplicates are verified and
    /// decrypted once, then fanned back out to their input positions.
    /// Never-written lines read as zeroes, as in [`SecureMemory::read`].
    /// The crypto work charged is exactly
    /// [`SecureMemory::verify_and_read_cost`].
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] found; no plaintext is
    /// released for any line of a failing batch.
    pub fn verify_and_read(
        &self,
        lines: &[u64],
    ) -> Result<Vec<[u8; CACHELINE_BYTES]>, IntegrityError> {
        let canonical = crate::proof::canonical_lines(lines);
        self.verify_lines(&canonical)?;
        // Decrypt each unique present line once, in VERIFY_BATCH chunks
        // through the bulk counter-mode path.
        let mut plaintexts: std::collections::BTreeMap<u64, [u8; CACHELINE_BYTES]> =
            std::collections::BTreeMap::new();
        let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(VERIFY_BATCH);
        let mut present: Vec<u64> = Vec::with_capacity(VERIFY_BATCH);
        let mut cts = [[0u8; CACHELINE_BYTES]; VERIFY_BATCH];
        let mut pts = [[0u8; CACHELINE_BYTES]; VERIFY_BATCH];
        for chunk in canonical.chunks(VERIFY_BATCH) {
            pairs.clear();
            present.clear();
            for &line in chunk {
                if let Some(ciphertext) = self.data.get(line) {
                    cts[pairs.len()] = *ciphertext;
                    pairs.push((self.data_addr(line), self.counter_of(line)));
                    present.push(line);
                }
            }
            let n = pairs.len();
            self.charge(|ops| ops.otp_decrypts += n as u64);
            self.cipher
                .decrypt_lines_into(&pairs, &cts[..n], &mut pts[..n]);
            for (&line, pt) in present.iter().zip(&pts) {
                plaintexts.insert(line, *pt);
            }
        }
        Ok(lines
            .iter()
            .map(|line| {
                plaintexts
                    .get(line)
                    .copied()
                    .unwrap_or([0u8; CACHELINE_BYTES])
            })
            .collect())
    }

    /// The exact crypto work [`SecureMemory::verify_and_read`] charges
    /// for `lines`: [`SecureMemory::verify_lines_cost`] MAC checks plus
    /// one counter-mode decryption per unique *present* line — cheap
    /// integer work, pinned equal to the observed [`CryptoOps`] delta by
    /// the accounting tests.
    #[must_use]
    pub fn verify_and_read_cost(&self, lines: &[u64]) -> CryptoOps {
        let canonical = crate::proof::canonical_lines(lines);
        CryptoOps {
            otp_encrypts: 0,
            otp_decrypts: canonical.iter().filter(|&&l| self.data.contains(l)).count() as u64,
            mac_computes: self.verify_lines_cost(&canonical),
        }
    }

    /// Batch-verifies the MACs of the given off-chip counter lines
    /// (absent lines are skipped), in chunks of [`VERIFY_BATCH`] through
    /// the interleaved SipHash pass.
    fn verify_counter_batch(&self, entries: &[(usize, u64)]) -> Result<(), IntegrityError> {
        let mut bodies = [[0u8; 64]; VERIFY_BATCH];
        // (level, line_idx, line addr, parent-counter key, stored MAC).
        let mut meta = [(0usize, 0u64, 0u64, 0u64, 0u64); VERIFY_BATCH];
        let mut tags = [MacTag(0); VERIFY_BATCH];
        for chunk in entries.chunks(VERIFY_BATCH) {
            let mut count = 0;
            for &(level, line_idx) in chunk {
                let Some(line) = self.levels[level].get(line_idx) else {
                    continue;
                };
                let parent_value = if level == self.geometry.top_level() {
                    0
                } else {
                    let (parent_idx, slot) = self.geometry.parent_of(level + 1, line_idx);
                    self.levels[level + 1]
                        .get(parent_idx)
                        .map_or(0, |parent| parent.get(slot))
                };
                bodies[count] = line.encode_for_mac();
                meta[count] = (
                    level,
                    line_idx,
                    self.geometry.line_addr(level, line_idx),
                    parent_value,
                    line.mac(),
                );
                count += 1;
            }
            self.charge(|ops| ops.mac_computes += count as u64);
            let inputs: [(u64, u64, &[u8; 64]); VERIFY_BATCH] =
                core::array::from_fn(|i| (meta[i].2, meta[i].3, &bodies[i]));
            self.mac_key
                .mac_lines_into(&inputs[..count], &mut tags[..count]);
            for (tag, &(level, line_idx, _, _, stored)) in tags.iter().zip(&meta).take(count) {
                if stored != tag.0 {
                    return Err(IntegrityError::CounterMac { level, line_idx });
                }
            }
        }
        Ok(())
    }

    /// The deduplicated off-chip ancestor counter lines covering `lines`
    /// (sorted `(level, line_idx)` pairs, top-level root excluded). The
    /// proof subsystem uses the same `(level, line_idx)` keying for its
    /// node deduplication.
    pub(crate) fn chain_lines_of(&self, lines: &[u64]) -> std::collections::BTreeSet<(usize, u64)> {
        let mut chain = std::collections::BTreeSet::new();
        for &line in lines {
            let mut child = line;
            for level in 0..self.geometry.top_level() {
                let (line_idx, _) = self.geometry.parent_of(level, child);
                chain.insert((level, line_idx));
                child = line_idx;
            }
        }
        chain
    }

    /// Number of MAC checks [`SecureMemory::verify_lines`] would perform
    /// for `lines` — cheap integer work, used by bounded recovery's
    /// crossover heuristic to decide between the touched-line path and
    /// [`SecureMemory::verify_all`].
    ///
    /// Canonicalizes (sorts, deduplicates) the input exactly like
    /// [`SecureMemory::verify_lines`], so duplicate or unsorted line IDs
    /// cannot make the integer cost disagree with the MACs actually
    /// computed (the regression the cost-model tests pin).
    pub fn verify_lines_cost(&self, lines: &[u64]) -> u64 {
        let lines = crate::proof::canonical_lines(lines);
        let data: u64 = lines.iter().filter(|&&l| self.data.contains(l)).count() as u64;
        let chain = self
            .chain_lines_of(&lines)
            .iter()
            .filter(|&&(level, line_idx)| self.levels[level].contains(line_idx))
            .count() as u64;
        data + chain
    }

    /// Number of MAC checks [`SecureMemory::verify_all`] performs (every
    /// stored off-chip counter line plus every stored data line).
    pub fn verify_all_cost(&self) -> u64 {
        let counters: u64 = (0..self.geometry.top_level())
            .map(|level| self.levels[level].len())
            .sum();
        counters + self.data.len()
    }

    // ------------------------------------------------------------------
    // Persistence interface (journaling, full-state export/restore).
    //
    // Used by `crate::persist` to snapshot a memory, derive WAL records
    // from writes, and rebuild a memory during recovery. The restore hooks
    // are `pub(crate)`: only the recovery path, which validates indices
    // against the geometry first, may bypass the write path.
    // ------------------------------------------------------------------

    /// Starts recording which lines future writes touch; any previous
    /// journal is discarded.
    pub fn begin_journal(&mut self) {
        self.journal = Some(MutationJournal::default());
    }

    /// Takes the mutations recorded since [`SecureMemory::begin_journal`]
    /// (or the previous take), leaving journaling enabled with an empty
    /// journal. Returns an empty journal when journaling was never enabled.
    pub fn take_journal(&mut self) -> MutationJournal {
        match self.journal.as_mut() {
            Some(journal) => std::mem::take(journal),
            None => MutationJournal::default(),
        }
    }

    /// The construction key (see the field note: a model stand-in for the
    /// SoC's sealed state).
    pub(crate) fn key(&self) -> [u8; 16] {
        self.key
    }

    /// The stored per-data-line state, for snapshot export.
    pub(crate) fn data_store(&self) -> &PagedStore<[u8; CACHELINE_BYTES]> {
        &self.data
    }

    /// The stored per-data-line MACs, for snapshot export.
    pub(crate) fn mac_store(&self) -> &PagedStore<u64> {
        &self.data_macs
    }

    /// The counter-line stores per level, for snapshot export.
    pub(crate) fn level_stores(&self) -> &[PagedStore<Line>] {
        &self.levels
    }

    /// Ciphertext and MAC of a written data line (`None` unless both are
    /// present), for WAL record derivation.
    pub(crate) fn data_line_state(&self, line: u64) -> Option<([u8; CACHELINE_BYTES], u64)> {
        Some((*self.data.get(line)?, *self.data_macs.get(line)?))
    }

    /// Encoded 64-byte image of a stored counter line, for WAL record
    /// derivation.
    pub(crate) fn counter_line_image(
        &self,
        level: usize,
        line_idx: u64,
    ) -> Option<[u8; CACHELINE_BYTES]> {
        self.levels.get(level)?.get(line_idx).map(|line| line.encode())
    }

    /// Restores a data line's off-chip tuple verbatim. The caller must have
    /// validated `line` against the geometry.
    pub(crate) fn restore_data_line(
        &mut self,
        line: u64,
        ciphertext: [u8; CACHELINE_BYTES],
        mac: u64,
    ) {
        self.restore_ciphertext(line, ciphertext);
        self.restore_mac(line, mac);
    }

    /// Restores a stored ciphertext alone (the snapshot format keeps
    /// ciphertexts and MACs in separate sections, and the two stores can
    /// legitimately diverge under adversary hooks).
    pub(crate) fn restore_ciphertext(&mut self, line: u64, ciphertext: [u8; CACHELINE_BYTES]) {
        self.data.insert(line, ciphertext);
    }

    /// Restores a stored data MAC alone.
    pub(crate) fn restore_mac(&mut self, line: u64, mac: u64) {
        self.data_macs.insert(line, mac);
    }

    /// Restores a counter line from its encoded image, decoding it under
    /// the level's configured organization. The caller must have validated
    /// `level` and `line_idx` against the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the image is not a valid encoding for
    /// the level's counter organization.
    pub(crate) fn restore_counter_line(
        &mut self,
        level: usize,
        line_idx: u64,
        image: &[u8; CACHELINE_BYTES],
    ) -> Result<(), CodecError> {
        let line = match self.config.org(level) {
            CounterOrg::Split { arity } => {
                Line::from(SplitLine::decode(SplitConfig::with_arity(arity), image))
            }
            CounterOrg::Morph(mode) => Line::from(MorphLine::decode(mode, image)?),
        };
        self.levels[level].insert(line_idx, line);
        Ok(())
    }

    /// Overwrites the re-encryption total (restored alongside the rest of
    /// the snapshot so observable costs survive a resume).
    pub(crate) fn set_reencryptions(&mut self, reencryptions: u64) {
        self.reencryptions = reencryptions;
    }

    /// Verifies the *entire* stored state bottom-up: every off-chip
    /// counter line's MAC under its parent counter, then every data line's
    /// MAC under its effective counter.
    ///
    /// This is the recovery acceptance check — a restored memory passes iff
    /// its state is one the write path could have produced — but it is
    /// callable anytime as a whole-memory audit.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] found, identifying the failing
    /// line.
    pub fn verify_all(&self) -> Result<(), IntegrityError> {
        // Counter levels bottom-up, through the batched MAC pass.
        for level in 0..self.geometry.top_level() {
            let entries: Vec<(usize, u64)> = self.levels[level]
                .iter()
                .map(|(line_idx, _)| (level, line_idx))
                .collect();
            self.verify_counter_batch(&entries)?;
        }
        // Data lines, batched; ciphertexts are borrowed straight from the
        // store so each batch is gather + one interleaved SipHash pass.
        let mut batch: Vec<(u64, u64, &[u8; CACHELINE_BYTES])> =
            Vec::with_capacity(VERIFY_BATCH);
        let mut lines: Vec<u64> = Vec::with_capacity(VERIFY_BATCH);
        let mut tags = [MacTag(0); VERIFY_BATCH];
        let mut iter = self.data.iter().peekable();
        while iter.peek().is_some() {
            batch.clear();
            lines.clear();
            for (data_line, ciphertext) in iter.by_ref().take(VERIFY_BATCH) {
                batch.push((self.data_addr(data_line), self.counter_of(data_line), ciphertext));
                lines.push(data_line);
            }
            self.charge(|ops| ops.mac_computes += batch.len() as u64);
            self.mac_key.mac_lines_into(&batch, &mut tags[..batch.len()]);
            for ((tag, &data_line), &(addr, _, _)) in tags.iter().zip(&lines).zip(&batch) {
                match self.data_macs.get(data_line) {
                    None => return Err(IntegrityError::MissingMac { line_addr: addr }),
                    Some(&stored) if stored != tag.0 => {
                        return Err(IntegrityError::DataMac { line_addr: addr });
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Adversary interface (what physical access to DRAM permits).
    //
    // Every hook returns a typed error instead of panicking, so campaign
    // runners (`crate::attack`) can fire thousands of randomized attacks
    // without ever bringing the harness down.
    // ------------------------------------------------------------------

    /// Flips bits in the stored ciphertext of `data_line` by XORing `mask`
    /// into byte `offset` — a physical tampering attack.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if the line has never been written (nothing
    /// is stored off-chip) or `offset >= 64`.
    pub fn tamper_raw(
        &mut self,
        data_line: u64,
        offset: usize,
        mask: u8,
    ) -> Result<(), TamperError> {
        if offset >= CACHELINE_BYTES {
            return Err(TamperError::OffsetOutOfRange { offset });
        }
        let line = self
            .data
            .get_mut(data_line)
            .ok_or(TamperError::NeverWritten { data_line })?;
        line[offset] ^= mask;
        Ok(())
    }

    /// Corrupts the stored MAC of a data line by XORing `mask` into it.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError::NeverWritten`] if the line has no stored MAC.
    pub fn tamper_mac(&mut self, data_line: u64, mask: u64) -> Result<(), TamperError> {
        let mac = self
            .data_macs
            .get_mut(data_line)
            .ok_or(TamperError::NeverWritten { data_line })?;
        *mac ^= mask;
        Ok(())
    }

    /// Tampers a stored counter line at `level` by advancing its first
    /// counter without authorization (shorthand for
    /// [`SecureMemory::tamper_counter_slot`] on slot 0).
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if the level or line does not exist.
    pub fn tamper_counter(&mut self, level: usize, line_idx: u64) -> Result<(), TamperError> {
        self.tamper_counter_slot(level, line_idx, 0)
    }

    /// Changes the effective value of counter `slot` in a stored counter
    /// line — the semantic effect of a bit flip landing in that counter's
    /// value field. (A decode-free bit attack is equivalent to replacing
    /// the line; emulate by incrementing, which provably changes the slot's
    /// effective value.)
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if the level, line, or slot does not exist.
    pub fn tamper_counter_slot(
        &mut self,
        level: usize,
        line_idx: u64,
        slot: usize,
    ) -> Result<(), TamperError> {
        let levels = self.levels.len();
        let line = self
            .levels
            .get_mut(level)
            .ok_or(TamperError::NoSuchLevel { level, levels })?
            .get_mut(line_idx)
            .ok_or(TamperError::NoCounterLine { level, line_idx })?;
        if slot >= line.arity() {
            return Err(TamperError::SlotOutOfRange { slot, arity: line.arity() });
        }
        let _ = line.increment(slot);
        Ok(())
    }

    /// Flips bits in the stored MAC field of a counter line at `level` — a
    /// literal bit flip in the final eight bytes of the line's 64-byte
    /// off-chip image.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if the level or line does not exist.
    pub fn tamper_counter_mac(
        &mut self,
        level: usize,
        line_idx: u64,
        mask: u64,
    ) -> Result<(), TamperError> {
        let levels = self.levels.len();
        let line = self
            .levels
            .get_mut(level)
            .ok_or(TamperError::NoSuchLevel { level, levels })?
            .get_mut(line_idx)
            .ok_or(TamperError::NoCounterLine { level, line_idx })?;
        let mac = line.mac();
        line.set_mac(mac ^ mask);
        Ok(())
    }

    /// Swaps the stored `{ciphertext, MAC}` of two data lines — a cross-line
    /// splice attack: both tuples are individually authentic, but each is
    /// now bound to the wrong address.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError::NeverWritten`] if either line has never been
    /// written.
    pub fn splice(&mut self, line_a: u64, line_b: u64) -> Result<(), TamperError> {
        let Some(ct_a) = self.data.get(line_a).copied() else {
            return Err(TamperError::NeverWritten { data_line: line_a });
        };
        let Some(ct_b) = self.data.get(line_b).copied() else {
            return Err(TamperError::NeverWritten { data_line: line_b });
        };
        if line_a == line_b {
            return Ok(());
        }
        self.data.insert(line_a, ct_b);
        self.data.insert(line_b, ct_a);
        // A written line always has a MAC; tolerate asymmetry anyway so the
        // splice hook itself can never corrupt harness state.
        let mac_a = self.data_macs.take(line_a);
        let mac_b = self.data_macs.take(line_b);
        if let Some(b) = mac_b {
            self.data_macs.insert(line_a, b);
        }
        if let Some(a) = mac_a {
            self.data_macs.insert(line_b, a);
        }
        Ok(())
    }

    /// Captures the full off-chip state associated with a data line:
    /// ciphertext, MAC and the covering encryption-counter line.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError::NeverWritten`] if the line has never been
    /// written (there is no off-chip tuple to capture).
    pub fn snapshot(&self, data_line: u64) -> Result<LineSnapshot, TamperError> {
        let (line_idx, _) = self.geometry.parent_of(0, data_line);
        let ciphertext = *self
            .data
            .get(data_line)
            .ok_or(TamperError::NeverWritten { data_line })?;
        let mac = self
            .data_macs
            .get(data_line)
            .copied()
            .ok_or(TamperError::NeverWritten { data_line })?;
        let counter_line = self
            .levels
            .first()
            .and_then(|level| level.get(line_idx))
            .cloned()
            .ok_or(TamperError::NoCounterLine { level: 0, line_idx })?;
        Ok(LineSnapshot { data_line, ciphertext, mac, counter_line })
    }

    /// Replays a previously captured snapshot — the classic replay attack:
    /// the adversary restores a stale but *self-consistent*
    /// `{data, MAC, counter}` tuple in DRAM.
    ///
    /// Consumes the snapshot so its counter line moves back into the store
    /// instead of being cloned; re-`clone()` the snapshot first to replay
    /// it more than once.
    pub fn replay(&mut self, snapshot: LineSnapshot) {
        let (line_idx, _) = self.geometry.parent_of(0, snapshot.data_line);
        self.data.insert(snapshot.data_line, snapshot.ciphertext);
        self.data_macs.insert(snapshot.data_line, snapshot.mac);
        self.levels[0].insert(line_idx, snapshot.counter_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    fn mem(config: TreeConfig) -> SecureMemory {
        SecureMemory::new(config, MIB, [9u8; 16])
    }

    fn all_configs() -> Vec<TreeConfig> {
        vec![
            TreeConfig::sgx(),
            TreeConfig::vault(),
            TreeConfig::sc64(),
            TreeConfig::sc128(),
            TreeConfig::morphtree(),
            TreeConfig::morphtree_zcc_only(),
        ]
    }

    #[test]
    fn write_read_roundtrip_every_config() {
        for config in all_configs() {
            let mut m = mem(config.clone());
            let payload: [u8; 64] = core::array::from_fn(|i| i as u8);
            m.write(11, &payload);
            assert_eq!(m.read(11).unwrap(), payload, "{}", config.name());
        }
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let m = mem(TreeConfig::morphtree());
        assert_eq!(m.read(0).unwrap(), [0u8; 64]);
    }

    #[test]
    fn crypto_ops_count_primitive_invocations() {
        let mut m = mem(TreeConfig::sc64());
        assert_eq!(m.crypto_ops(), CryptoOps::default());

        // A write performs one data encryption + one data MAC, plus one
        // counter-line MAC refresh per tree level touched by the bump.
        m.write(9, &[0x42; 64]);
        let after_write = m.crypto_ops();
        assert_eq!(after_write.otp_encrypts, 1);
        assert_eq!(after_write.otp_decrypts, 0);
        let levels = m.geometry().levels().len() as u64;
        assert!(
            after_write.mac_computes >= levels,
            "write must MAC the data line and re-MAC the counter chain: {after_write:?}"
        );

        // A verified read decrypts once and re-computes the data MAC plus
        // one MAC per off-chip counter level in the chain.
        m.read(9).unwrap();
        let after_read = m.crypto_ops();
        assert_eq!(after_read.otp_decrypts, 1);
        assert_eq!(after_read.otp_encrypts, after_write.otp_encrypts);
        assert!(after_read.mac_computes > after_write.mac_computes);

        // Reads of never-written lines touch no crypto at all.
        m.read(100).unwrap();
        assert_eq!(m.crypto_ops(), after_read);

        assert_eq!(
            after_read.total(),
            after_read.otp_encrypts + after_read.otp_decrypts + after_read.mac_computes
        );
    }

    #[test]
    fn overwrites_bump_the_counter() {
        let mut m = mem(TreeConfig::sc64());
        m.write(4, &[1; 64]);
        let c1 = m.counter_of(4);
        m.write(4, &[2; 64]);
        let c2 = m.counter_of(4);
        assert!(c2 > c1);
        assert_eq!(m.read(4).unwrap(), [2; 64]);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_varies_with_counter() {
        let mut m = mem(TreeConfig::sc64());
        m.write(0, &[0x77; 64]);
        let ct1 = *m.data.get(0).unwrap();
        assert_ne!(ct1, [0x77; 64]);
        m.write(0, &[0x77; 64]);
        let ct2 = *m.data.get(0).unwrap();
        assert_ne!(ct1, ct2, "temporal variation from the counter");
    }

    #[test]
    fn data_tampering_is_detected() {
        for config in all_configs() {
            let mut m = mem(config.clone());
            m.write(7, &[5; 64]);
            m.tamper_raw(7, 63, 0x80).unwrap();
            let err = m.read(7).unwrap_err();
            assert!(
                matches!(err, IntegrityError::DataMac { .. }),
                "{}: {err}",
                config.name()
            );
        }
    }

    #[test]
    fn mac_tampering_is_detected() {
        let mut m = mem(TreeConfig::morphtree());
        m.write(7, &[5; 64]);
        m.tamper_mac(7, 1).unwrap();
        assert!(m.read(7).is_err());
    }

    #[test]
    fn counter_tampering_is_detected() {
        let mut m = mem(TreeConfig::morphtree());
        m.write(7, &[5; 64]);
        m.tamper_counter(0, 0).unwrap();
        let err = m.read(7).unwrap_err();
        assert!(matches!(err, IntegrityError::CounterMac { level: 0, .. }), "{err}");
    }

    #[test]
    fn counter_mac_tampering_is_detected_at_the_tampered_level() {
        let mut m = mem(TreeConfig::sc64());
        m.write(7, &[5; 64]);
        m.tamper_counter_mac(0, 0, 0x8000).unwrap();
        let err = m.read(7).unwrap_err();
        assert_eq!(err, IntegrityError::CounterMac { level: 0, line_idx: 0 });
    }

    #[test]
    fn tamper_hooks_return_typed_errors_instead_of_panicking() {
        let mut m = mem(TreeConfig::sc64());
        assert_eq!(
            m.tamper_raw(3, 0, 1),
            Err(TamperError::NeverWritten { data_line: 3 })
        );
        m.write(3, &[1; 64]);
        assert_eq!(
            m.tamper_raw(3, 64, 1),
            Err(TamperError::OffsetOutOfRange { offset: 64 })
        );
        assert_eq!(
            m.tamper_mac(4, 1),
            Err(TamperError::NeverWritten { data_line: 4 })
        );
        assert_eq!(
            m.tamper_counter(0, 999),
            Err(TamperError::NoCounterLine { level: 0, line_idx: 999 })
        );
        assert_eq!(
            m.tamper_counter_slot(99, 0, 0),
            Err(TamperError::NoSuchLevel { level: 99, levels: m.geometry().levels().len() })
        );
        assert_eq!(
            m.tamper_counter_slot(0, 0, 64),
            Err(TamperError::SlotOutOfRange { slot: 64, arity: 64 })
        );
        assert_eq!(
            m.snapshot(9).unwrap_err(),
            TamperError::NeverWritten { data_line: 9 }
        );
        assert_eq!(
            m.splice(3, 10),
            Err(TamperError::NeverWritten { data_line: 10 })
        );
        // None of the failed attacks perturbed the healthy state.
        assert_eq!(m.read(3).unwrap(), [1; 64]);
    }

    #[test]
    fn missing_mac_is_a_verification_failure_not_a_zero_sentinel() {
        // Regression: a stored ciphertext without a stored MAC used to
        // verify against "MAC = 0" — a forgeable sentinel. It must surface
        // as a typed MissingMac error.
        let mut m = mem(TreeConfig::morphtree());
        m.write(2, &[7; 64]);
        m.data_macs.take(2);
        let err = m.read(2).unwrap_err();
        assert_eq!(err, IntegrityError::MissingMac { line_addr: 2 * 64 });
        // And an adversary forging the old sentinel value fails the MAC
        // check like any other wrong MAC.
        m.data_macs.insert(2, 0);
        let err = m.read(2).unwrap_err();
        assert_eq!(err, IntegrityError::DataMac { line_addr: 2 * 64 });
    }

    #[test]
    fn cross_line_splice_is_detected_on_both_lines() {
        for config in all_configs() {
            let mut m = mem(config.clone());
            m.write(5, &[0x55; 64]);
            m.write(9, &[0x99; 64]);
            m.splice(5, 9).unwrap();
            // Each tuple is self-consistent but bound to the wrong address.
            assert_eq!(
                m.read(5).unwrap_err(),
                IntegrityError::DataMac { line_addr: 5 * 64 },
                "{}",
                config.name()
            );
            assert_eq!(
                m.read(9).unwrap_err(),
                IntegrityError::DataMac { line_addr: 9 * 64 },
                "{}",
                config.name()
            );
        }
    }

    #[test]
    fn splice_of_a_line_with_itself_is_a_noop() {
        let mut m = mem(TreeConfig::sc64());
        m.write(5, &[0x55; 64]);
        m.splice(5, 5).unwrap();
        assert_eq!(m.read(5).unwrap(), [0x55; 64]);
    }

    #[test]
    fn replay_attack_is_detected() {
        for config in all_configs() {
            let mut m = mem(config.clone());
            m.write(3, &[0xaa; 64]);
            let stale = m.snapshot(3).unwrap();
            // Victim updates the line; adversary replays the stale tuple.
            m.write(3, &[0xbb; 64]);
            m.replay(stale);
            let err = m.read(3).unwrap_err();
            // The stale counter line fails its MAC (its parent advanced).
            assert!(
                matches!(err, IntegrityError::CounterMac { .. }),
                "{}: {err}",
                config.name()
            );
        }
    }

    #[test]
    fn replay_of_current_state_is_a_noop() {
        let mut m = mem(TreeConfig::sc64());
        m.write(3, &[0xaa; 64]);
        let snap = m.snapshot(3).unwrap();
        m.replay(snap); // replaying the *current* state changes nothing
        assert_eq!(m.read(3).unwrap(), [0xaa; 64]);
    }

    #[test]
    fn overflow_reencrypts_children_and_preserves_their_contents() {
        let mut m = mem(TreeConfig::sc64());
        // Populate several children of counter line 0.
        for line in 0..8 {
            m.write(line, &[line as u8; 64]);
        }
        // Drive line 0's counter to overflow (6-bit minors).
        for _ in 0..200 {
            m.write(0, &[0xcc; 64]);
        }
        assert!(m.reencryptions() > 0);
        for line in 1..8 {
            assert_eq!(m.read(line).unwrap(), [line as u8; 64], "line {line}");
        }
    }

    #[test]
    fn morph_rebasing_avoids_reencryptions_under_uniform_writes() {
        let mut morph = mem(TreeConfig::morphtree());
        let mut sc128 = mem(TreeConfig::sc128());
        for round in 0..16 {
            for line in 0..128u64 {
                let body = [round as u8; 64];
                morph.write(line, &body);
                sc128.write(line, &body);
            }
        }
        assert!(
            morph.reencryptions() < sc128.reencryptions(),
            "morph {} !< sc128 {}",
            morph.reencryptions(),
            sc128.reencryptions()
        );
        // And everything still reads back correctly.
        assert_eq!(morph.read(100).unwrap(), [15u8; 64]);
    }

    #[test]
    fn distinct_lines_are_independent() {
        let mut m = mem(TreeConfig::morphtree());
        m.write(0, &[1; 64]);
        m.write(1, &[2; 64]);
        m.write(0, &[3; 64]);
        assert_eq!(m.read(1).unwrap(), [2; 64]);
        assert_eq!(m.read(0).unwrap(), [3; 64]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_rejects_out_of_range() {
        let mut m = mem(TreeConfig::sc64());
        m.write(u64::MAX, &[0; 64]);
    }

    #[test]
    fn verify_lines_cost_matches_macs_for_duplicate_and_unsorted_input() {
        // Regression: duplicate or unsorted line IDs must not make the
        // integer cost model disagree with the MACs verify_lines actually
        // computes — both canonicalize, each line is checked exactly once.
        for config in all_configs() {
            let name = config.name().to_string();
            let mut m = mem(config);
            for line in [3u64, 9, 40, 41, 1000] {
                m.write(line, &[0x2c; 64]);
            }
            let messy = [9u64, 3, 9, 40, 3, 1000, 41, 9];
            let clean = [3u64, 9, 40, 41, 1000];
            let cost = m.verify_lines_cost(&messy);
            assert_eq!(cost, m.verify_lines_cost(&clean), "{name}");
            let before = m.crypto_ops().mac_computes;
            m.verify_lines(&messy).unwrap();
            let observed = m.crypto_ops().mac_computes - before;
            assert_eq!(cost, observed, "{name}: cost model vs observed MACs");
        }
    }

    #[test]
    fn verify_and_read_matches_per_line_reads() {
        for config in all_configs() {
            let name = config.name().to_string();
            let mut m = mem(config);
            for line in [3u64, 9, 40, 41, 1000] {
                m.write(line, &[line as u8; 64]);
            }
            // Duplicates, unsorted order, and a never-written line (17).
            let messy = [9u64, 3, 17, 9, 40, 3, 1000, 41, 9];
            let bulk = m.verify_and_read(&messy).unwrap();
            assert_eq!(bulk.len(), messy.len(), "{name}");
            for (i, &line) in messy.iter().enumerate() {
                assert_eq!(bulk[i], m.read(line).unwrap(), "{name}: line {line}");
            }
            assert_eq!(bulk[2], [0u8; 64], "{name}: never-written reads as zeroes");
            // The empty batch is a no-op success.
            assert_eq!(m.verify_and_read(&[]).unwrap(), Vec::<[u8; 64]>::new());
        }
    }

    #[test]
    fn verify_and_read_refuses_to_release_tampered_plaintext() {
        let mut m = mem(TreeConfig::morphtree());
        m.write(5, &[0x55; 64]);
        m.write(9, &[0x99; 64]);
        m.tamper_raw(9, 0, 0x01).unwrap();
        let err = m.verify_and_read(&[5, 9]).unwrap_err();
        assert_eq!(err, IntegrityError::DataMac { line_addr: 9 * 64 });
    }

    /// Satellite: the bulk read path charges exactly the integer cost
    /// model — `verify_lines_cost` MACs plus one decryption per unique
    /// present line, regardless of duplicates, order, or absent lines.
    #[test]
    fn verify_and_read_charges_exactly_its_cost_model() {
        for config in all_configs() {
            let name = config.name().to_string();
            let mut m = mem(config);
            for line in [3u64, 9, 40, 41, 1000] {
                m.write(line, &[0x2c; 64]);
            }
            let messy = [9u64, 3, 17, 9, 40, 3, 1000, 41, 9];
            let cost = m.verify_and_read_cost(&messy);
            assert_eq!(cost.otp_decrypts, 5, "{name}: one decrypt per unique present line");
            assert_eq!(cost.mac_computes, m.verify_lines_cost(&messy), "{name}");
            let before = m.crypto_ops();
            m.verify_and_read(&messy).unwrap();
            let after = m.crypto_ops();
            assert_eq!(after.mac_computes - before.mac_computes, cost.mac_computes, "{name}");
            assert_eq!(after.otp_decrypts - before.otp_decrypts, cost.otp_decrypts, "{name}");
            assert_eq!(after.otp_encrypts, before.otp_encrypts, "{name}: reads never encrypt");
        }
    }
}
