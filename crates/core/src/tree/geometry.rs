//! Size, height and address layout of an integrity tree over a given memory
//! (Fig 1, Fig 17, Table III).

use super::config::TreeConfig;
use crate::CACHELINE_BYTES;

/// Geometry of one metadata level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelGeometry {
    /// Level number (0 = encryption counters, 1.. = integrity-tree levels).
    pub level: usize,
    /// Number of 64-byte lines at this level.
    pub lines: u64,
    /// Arity of the counter lines at this level.
    pub arity: usize,
    /// Base address of this level's storage in the metadata region.
    pub base_addr: u64,
}

impl LevelGeometry {
    /// Bytes of storage this level occupies.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.lines * CACHELINE_BYTES as u64
    }
}

/// Complete geometry of a secure-memory configuration over `memory_bytes`
/// of protected data.
///
/// Metadata is laid out at addresses starting at `memory_bytes`: first the
/// encryption counters, then tree level 1, and so on — giving every
/// metadata line a unique physical address for the metadata cache and the
/// DRAM model.
///
/// # Example
///
/// ```
/// use morphtree_core::tree::{TreeConfig, TreeGeometry};
///
/// // The paper's headline numbers for 16 GB (Fig 1 / Table III):
/// let gib = 1u64 << 30;
/// let sc64 = TreeGeometry::new(&TreeConfig::sc64(), 16 * gib);
/// assert_eq!(sc64.height(), 4);
/// assert_eq!(sc64.enc_bytes(), 256 * (1 << 20)); // 256 MB of counters
///
/// let morph = TreeGeometry::new(&TreeConfig::morphtree(), 16 * gib);
/// assert_eq!(morph.height(), 3);
/// assert_eq!(morph.enc_bytes(), 128 * (1 << 20)); // 2x smaller base
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGeometry {
    memory_bytes: u64,
    data_lines: u64,
    levels: Vec<LevelGeometry>,
}

impl TreeGeometry {
    /// Computes the geometry of `config` protecting `memory_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is zero or not a multiple of the cacheline
    /// size.
    #[must_use]
    pub fn new(config: &TreeConfig, memory_bytes: u64) -> Self {
        assert!(memory_bytes > 0, "memory size must be non-zero");
        assert_eq!(
            memory_bytes % CACHELINE_BYTES as u64,
            0,
            "memory size must be cacheline-aligned"
        );
        let data_lines = memory_bytes / CACHELINE_BYTES as u64;
        let mut levels = Vec::new();
        let mut next_base = memory_bytes;
        let mut children = data_lines;
        let mut level = 0;
        loop {
            let arity = config.arity(level);
            let lines = children.div_ceil(arity as u64);
            levels.push(LevelGeometry { level, lines, arity, base_addr: next_base });
            next_base += lines * CACHELINE_BYTES as u64;
            if lines == 1 {
                break;
            }
            children = lines;
            level += 1;
        }
        TreeGeometry { memory_bytes, data_lines, levels }
    }

    /// Bytes of protected data.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Number of protected data cachelines.
    #[must_use]
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Per-level geometry, index 0 = encryption counters.
    #[must_use]
    pub fn levels(&self) -> &[LevelGeometry] {
        &self.levels
    }

    /// Number of integrity-tree levels (excluding the encryption-counter
    /// level), counted as the paper counts them: the 64-byte root line is a
    /// level (Fig 17 shows SC-64 with 4, MorphCtr-128 with 3).
    #[must_use]
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Index of the topmost level (the single-line root, pinned on-chip).
    #[must_use]
    pub fn top_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Storage of the encryption counters (level 0).
    #[must_use]
    pub fn enc_bytes(&self) -> u64 {
        self.levels[0].bytes()
    }

    /// Total storage of the integrity tree (levels 1 and above).
    #[must_use]
    pub fn tree_bytes(&self) -> u64 {
        self.levels[1..].iter().map(LevelGeometry::bytes).sum()
    }

    /// Encryption-counter storage overhead as a fraction of data.
    #[must_use]
    pub fn enc_overhead(&self) -> f64 {
        self.enc_bytes() as f64 / self.memory_bytes as f64
    }

    /// Integrity-tree storage overhead as a fraction of data.
    #[must_use]
    pub fn tree_overhead(&self) -> f64 {
        self.tree_bytes() as f64 / self.memory_bytes as f64
    }

    /// Physical address of metadata line `idx` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `idx` is out of range.
    #[must_use]
    pub fn line_addr(&self, level: usize, idx: u64) -> u64 {
        let geom = &self.levels[level];
        assert!(idx < geom.lines, "line {idx} out of range at level {level}");
        geom.base_addr + idx * CACHELINE_BYTES as u64
    }

    /// Maps a metadata address back to `(level, line index)`; `None` for
    /// data addresses.
    #[must_use]
    pub fn locate(&self, addr: u64) -> Option<(usize, u64)> {
        if addr < self.memory_bytes {
            return None;
        }
        for geom in &self.levels {
            let end = geom.base_addr + geom.bytes();
            if addr >= geom.base_addr && addr < end {
                return Some((geom.level, (addr - geom.base_addr) / CACHELINE_BYTES as u64));
            }
        }
        None
    }

    /// The `(line index, slot)` of the counter at `level` that covers child
    /// index `child_idx` (a data-line index when `level == 0`, a
    /// level-`level - 1` line index otherwise).
    #[must_use]
    pub fn parent_of(&self, level: usize, child_idx: u64) -> (u64, usize) {
        let arity = self.levels[level].arity as u64;
        (child_idx / arity, (child_idx % arity) as usize)
    }

    /// Total metadata bytes (encryption counters + tree).
    #[must_use]
    pub fn metadata_bytes(&self) -> u64 {
        self.enc_bytes() + self.tree_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;
    const MIB: u64 = 1 << 20;
    const KIB: u64 = 1 << 10;

    fn geom(config: &TreeConfig) -> TreeGeometry {
        TreeGeometry::new(config, 16 * GIB)
    }

    /// Table III, row by row, for 16 GB.
    #[test]
    fn table3_sgx() {
        let g = geom(&TreeConfig::sgx());
        assert_eq!(g.enc_bytes(), 2 * GIB);
        // Paper rounds to "292 MB".
        let tree_mb = g.tree_bytes() as f64 / MIB as f64;
        assert!((292.0..293.0).contains(&tree_mb), "tree = {tree_mb} MB");
        assert!((g.enc_overhead() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn table3_vault() {
        let g = geom(&TreeConfig::vault());
        assert_eq!(g.enc_bytes(), 256 * MIB);
        let tree_mb = g.tree_bytes() as f64 / MIB as f64;
        assert!((8.5..8.6).contains(&tree_mb), "tree = {tree_mb} MB");
        assert_eq!(g.height(), 6);
    }

    #[test]
    fn table3_sc64() {
        let g = geom(&TreeConfig::sc64());
        assert_eq!(g.enc_bytes(), 256 * MIB);
        let tree_mb = g.tree_bytes() as f64 / MIB as f64;
        assert!((4.0..4.1).contains(&tree_mb), "tree = {tree_mb} MB");
        assert_eq!(g.height(), 4);
    }

    #[test]
    fn table3_morphctr() {
        let g = geom(&TreeConfig::morphtree());
        assert_eq!(g.enc_bytes(), 128 * MIB);
        let tree_mb = g.tree_bytes() as f64 / MIB as f64;
        assert!((1.0..1.1).contains(&tree_mb), "tree = {tree_mb} MB");
        assert_eq!(g.height(), 3);
    }

    /// Fig 17's per-level footprints.
    #[test]
    fn fig17_level_sizes() {
        let vault = geom(&TreeConfig::vault());
        let sizes: Vec<u64> = vault.levels()[1..].iter().map(LevelGeometry::bytes).collect();
        assert_eq!(sizes, vec![8 * MIB, 512 * KIB, 32 * KIB, 2 * KIB, 128, 64]);

        let sc64 = geom(&TreeConfig::sc64());
        let sizes: Vec<u64> = sc64.levels()[1..].iter().map(LevelGeometry::bytes).collect();
        assert_eq!(sizes, vec![4 * MIB, 64 * KIB, KIB, 64]);

        let morph = geom(&TreeConfig::morphtree());
        let sizes: Vec<u64> = morph.levels()[1..].iter().map(LevelGeometry::bytes).collect();
        assert_eq!(sizes, vec![MIB, 8 * KIB, 64]);
    }

    #[test]
    fn morphtree_is_4x_smaller_than_sc64_and_8_5x_smaller_than_vault() {
        let sc64 = geom(&TreeConfig::sc64()).tree_bytes() as f64;
        let vault = geom(&TreeConfig::vault()).tree_bytes() as f64;
        let morph = geom(&TreeConfig::morphtree()).tree_bytes() as f64;
        assert!((sc64 / morph - 4.0).abs() < 0.1, "SC-64/Morph = {}", sc64 / morph);
        assert!((vault / morph - 8.5).abs() < 0.2, "VAULT/Morph = {}", vault / morph);
    }

    #[test]
    fn address_map_is_disjoint_and_invertible() {
        let g = geom(&TreeConfig::morphtree());
        // Data addresses are not metadata.
        assert_eq!(g.locate(0), None);
        assert_eq!(g.locate(16 * GIB - 64), None);
        for level in 0..=g.top_level() {
            let lines = g.levels()[level].lines;
            for idx in [0, lines / 2, lines - 1] {
                let addr = g.line_addr(level, idx);
                assert_eq!(g.locate(addr), Some((level, idx)), "level {level} idx {idx}");
            }
        }
    }

    #[test]
    fn parent_of_maps_children_to_slots() {
        let g = geom(&TreeConfig::vault());
        // Level 0 (enc counters) is 64-ary over data lines.
        assert_eq!(g.parent_of(0, 0), (0, 0));
        assert_eq!(g.parent_of(0, 65), (1, 1));
        // Level 1 is 32-ary over level-0 lines.
        assert_eq!(g.parent_of(1, 33), (1, 1));
        // Level 2 is 16-ary.
        assert_eq!(g.parent_of(2, 15), (0, 15));
        assert_eq!(g.parent_of(2, 16), (1, 0));
    }

    #[test]
    fn small_memories_collapse_to_short_trees() {
        // 1 MB of data with SC-64: 256 counter lines -> 4 L1 lines -> 1 root.
        let g = TreeGeometry::new(&TreeConfig::sc64(), MIB);
        assert_eq!(g.levels()[0].lines, 256);
        assert_eq!(g.height(), 2);
        assert_eq!(g.levels().last().unwrap().lines, 1);
    }

    #[test]
    fn tiny_memory_has_single_root_level() {
        // 64 lines of data fit one SC-64 counter line: that line is the root.
        let g = TreeGeometry::new(&TreeConfig::sc64(), 64 * 64);
        assert_eq!(g.levels().len(), 1);
        assert_eq!(g.height(), 0);
    }

    #[test]
    #[should_panic(expected = "cacheline-aligned")]
    fn rejects_unaligned_memory() {
        let _ = TreeGeometry::new(&TreeConfig::sc64(), 100);
    }

    #[test]
    fn geometry_scales_with_memory_size() {
        // DESIGN.md extension: 8-64 GB sweep keeps the 4x ratio.
        for size_gb in [8u64, 32, 64] {
            let sc64 = TreeGeometry::new(&TreeConfig::sc64(), size_gb * GIB);
            let morph = TreeGeometry::new(&TreeConfig::morphtree(), size_gb * GIB);
            let ratio = sc64.tree_bytes() as f64 / morph.tree_bytes() as f64;
            assert!((3.5..4.5).contains(&ratio), "{size_gb} GB ratio {ratio}");
        }
    }
}
