//! Integrity-tree configurations and geometry.
//!
//! A Bonsai-style counter tree (§II-A4) is built over the encryption
//! counters: level 0 holds the encryption counters themselves, level 1
//! counters key the MACs of level-0 lines, and so on up to an on-chip root.
//! Each level shrinks by the *arity* of the counter organization used at
//! that level, so packing more counters per line both shrinks the base of
//! the tree (encryption-counter footprint) and steepens the shrink rate —
//! the multiplicative effect behind the paper's 4x tree-size reduction.
//!
//! [`config::TreeConfig`] names the five designs the paper evaluates
//! (Commercial SGX, VAULT, SC-64, SC-128, MorphTree); [`geometry`] computes
//! per-level line counts, byte sizes, heights and the metadata address map
//! for any memory size (Fig 1, Fig 17, Table III).

pub mod config;
pub mod geometry;

pub use config::TreeConfig;
pub use geometry::{LevelGeometry, TreeGeometry};
