//! The integrity-tree designs evaluated in the paper (§VI, Table III).

use crate::counters::morph::MorphMode;
use crate::counters::CounterOrg;

/// A complete secure-memory counter configuration: which counter
/// organization is used for the encryption counters (level 0) and for each
/// integrity-tree level above them.
///
/// # Example
///
/// ```
/// use morphtree_core::tree::TreeConfig;
///
/// let cfg = TreeConfig::vault();
/// assert_eq!(cfg.org(0).arity(), 64); // encryption counters
/// assert_eq!(cfg.org(1).arity(), 32); // tree level 1
/// assert_eq!(cfg.org(2).arity(), 16); // tree level 2 and beyond
/// assert_eq!(cfg.org(5).arity(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeConfig {
    name: String,
    enc_org: CounterOrg,
    /// Organizations for tree levels 1, 2, …; the last entry repeats for
    /// all higher levels.
    tree_orgs: Vec<CounterOrg>,
}

impl TreeConfig {
    /// Builds a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tree_orgs` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, enc_org: CounterOrg, tree_orgs: Vec<CounterOrg>) -> Self {
        assert!(!tree_orgs.is_empty(), "at least one tree-level organization required");
        TreeConfig { name: name.into(), enc_org, tree_orgs }
    }

    /// The commercial SGX MEE design: 8-ary counters for encryption and
    /// every tree level (Table III's `Commercial-SGX`).
    #[must_use]
    pub fn sgx() -> Self {
        let org = CounterOrg::Split { arity: 8 };
        TreeConfig::new("Commercial-SGX", org, vec![org])
    }

    /// VAULT (Taassori et al., ASPLOS 2018): 64-ary encryption counters,
    /// 32-ary at tree level 1, 16-ary at level 2 and beyond (Fig 4).
    #[must_use]
    pub fn vault() -> Self {
        TreeConfig::new(
            "VAULT",
            CounterOrg::Split { arity: 64 },
            vec![CounterOrg::Split { arity: 32 }, CounterOrg::Split { arity: 16 }],
        )
    }

    /// The paper's baseline: SC-64 split counters throughout (64-ary tree).
    #[must_use]
    pub fn sc64() -> Self {
        let org = CounterOrg::Split { arity: 64 };
        TreeConfig::new("SC-64", org, vec![org])
    }

    /// The naive 128-ary design: SC-128 split counters throughout — fast to
    /// traverse but overflow-prone (Fig 5's cautionary configuration).
    #[must_use]
    pub fn sc128() -> Self {
        let org = CounterOrg::Split { arity: 128 };
        TreeConfig::new("SC-128", org, vec![org])
    }

    /// The paper's proposal: MorphCtr-128 (ZCC + Rebasing) for encryption
    /// and every tree level — the 128-ary *MorphTree*.
    #[must_use]
    pub fn morphtree() -> Self {
        let org = CounterOrg::Morph(MorphMode::ZccRebase);
        TreeConfig::new("MorphCtr-128", org, vec![org])
    }

    /// Ablation: morphable counters with ZCC only (no rebasing), as in
    /// Fig 11.
    #[must_use]
    pub fn morphtree_zcc_only() -> Self {
        let org = CounterOrg::Morph(MorphMode::ZccOnly);
        TreeConfig::new("MorphCtr-128 (ZCC-only)", org, vec![org])
    }

    /// Ablation: single-base rebasing (footnote 5 of the paper) — the
    /// 57-bit major doubles as the base shared by all 128 minors.
    #[must_use]
    pub fn morphtree_single_base() -> Self {
        let org = CounterOrg::Morph(MorphMode::SingleBase);
        TreeConfig::new("MorphCtr-128 (single-base)", org, vec![org])
    }

    /// The configuration's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counter organization at `level` (0 = encryption counters; the last
    /// configured tree organization repeats for all higher levels).
    #[must_use]
    pub fn org(&self, level: usize) -> CounterOrg {
        if level == 0 {
            self.enc_org
        } else {
            let idx = (level - 1).min(self.tree_orgs.len() - 1);
            self.tree_orgs[idx]
        }
    }

    /// Arity at `level` — shorthand for `self.org(level).arity()`.
    #[must_use]
    pub fn arity(&self, level: usize) -> usize {
        self.org(level).arity()
    }

    /// The configured tree-level organizations (levels 1, 2, …; the last
    /// entry repeats for all higher levels). Together with `org(0)` this is
    /// the complete counter configuration, which is what the persistence
    /// layer serializes.
    #[must_use]
    pub fn tree_orgs(&self) -> &[CounterOrg] {
        &self.tree_orgs
    }

    /// All five configurations the paper's evaluation compares, in the
    /// order of Table III.
    #[must_use]
    pub fn paper_lineup() -> Vec<TreeConfig> {
        vec![
            TreeConfig::sgx(),
            TreeConfig::vault(),
            TreeConfig::sc64(),
            TreeConfig::morphtree(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_arities_match_the_paper() {
        let sgx = TreeConfig::sgx();
        assert_eq!(sgx.arity(0), 8);
        assert_eq!(sgx.arity(3), 8);

        let vault = TreeConfig::vault();
        assert_eq!(vault.arity(0), 64);
        assert_eq!(vault.arity(1), 32);
        assert_eq!(vault.arity(2), 16);
        assert_eq!(vault.arity(6), 16);

        let sc64 = TreeConfig::sc64();
        assert_eq!(sc64.arity(0), 64);
        assert_eq!(sc64.arity(4), 64);

        let morph = TreeConfig::morphtree();
        assert_eq!(morph.arity(0), 128);
        assert_eq!(morph.arity(1), 128);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TreeConfig::sc64().name(), "SC-64");
        assert_eq!(TreeConfig::morphtree().name(), "MorphCtr-128");
        assert_eq!(TreeConfig::vault().name(), "VAULT");
    }

    #[test]
    #[should_panic(expected = "at least one tree-level organization")]
    fn rejects_empty_tree_orgs() {
        let _ = TreeConfig::new("bad", CounterOrg::Split { arity: 64 }, vec![]);
    }

    #[test]
    fn lineup_has_four_configs() {
        assert_eq!(TreeConfig::paper_lineup().len(), 4);
    }
}
