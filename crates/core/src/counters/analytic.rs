//! Closed-form "time to overflow" models — the analysis behind Fig 6 and
//! Fig 10 of the paper.
//!
//! Both figures assume writes are distributed uniformly over the fraction
//! `f` of counters in a line that are used at all. Under that assumption a
//! line with `u = ⌈f·n⌉` used counters, each `b` bits wide, tolerates
//! `u · 2^b` writes before some counter must wrap.

use super::morph::{zcc_width, MORPH_ARITY};
use super::split::SplitConfig;

/// Number of counters used for a given fraction of an `arity`-counter line
/// (at least one).
#[must_use]
pub fn used_for_fraction(arity: usize, fraction: f64) -> usize {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    ((fraction * arity as f64).round() as usize).clamp(1, arity)
}

/// Writes tolerated before an overflow for a split-counter line where a
/// fraction `fraction` of the counters receive uniform writes (Fig 6).
///
/// # Example
///
/// ```
/// use morphtree_core::counters::analytic::split_writes_per_overflow;
/// use morphtree_core::counters::split::SplitConfig;
///
/// // SC-64 in the worst case (one hot counter) overflows every 64 writes.
/// let sc64 = SplitConfig::with_arity(64);
/// assert_eq!(split_writes_per_overflow(sc64, 1.0 / 64.0), 64);
/// // ...and tolerates 64 * 64 = 4096 writes under fully uniform usage.
/// assert_eq!(split_writes_per_overflow(sc64, 1.0), 4096);
/// ```
#[must_use]
pub fn split_writes_per_overflow(config: SplitConfig, fraction: f64) -> u64 {
    let used = used_for_fraction(config.arity, fraction) as u64;
    used * (1u64 << config.minor_bits)
}

/// Writes tolerated before an overflow for a MorphCtr-128 line in ZCC (or
/// uniform) format (Fig 10): the width adapts to the number of used
/// counters.
///
/// # Example
///
/// ```
/// use morphtree_core::counters::analytic::zcc_writes_per_overflow;
///
/// // 16 used counters get 16 bits each: over a million writes.
/// assert_eq!(zcc_writes_per_overflow(16.0 / 128.0), 16 << 16);
/// // Fully dense usage falls back to 3-bit counters: 128 * 8 writes.
/// assert_eq!(zcc_writes_per_overflow(1.0), 1024);
/// ```
#[must_use]
pub fn zcc_writes_per_overflow(fraction: f64) -> u64 {
    let used = used_for_fraction(MORPH_ARITY, fraction);
    let bits = zcc_width(used).unwrap_or(3);
    used as u64 * (1u64 << bits)
}

/// Writes tolerated before a *re-encryption-causing* event for MorphCtr-128
/// with rebasing (§IV), under the same uniform-writes assumption.
///
/// With perfectly uniform writes to `u > 64` counters, every minor reaches
/// its maximum together, each saturation rebase advances the base by the
/// set minimum, and the line only resets when a 7-bit base is exhausted —
/// multiplying tolerance by roughly the base range.
#[must_use]
pub fn rebasing_writes_per_overflow(fraction: f64) -> u64 {
    let used = used_for_fraction(MORPH_ARITY, fraction);
    if used <= 64 {
        // Sparse usage stays in ZCC; rebasing adds nothing.
        return zcc_writes_per_overflow(fraction);
    }
    // Dense uniform usage: each counter can absorb 2^3 writes per base step
    // and the base can step through its 7-bit range.
    used as u64 * (1u64 << 3) * (1u64 << MCR_BASE_BITS_ANALYTIC)
}

const MCR_BASE_BITS_ANALYTIC: u32 = 7;

/// A point of the Fig 6 / Fig 10 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverflowSweepPoint {
    /// Fraction of the counter cacheline used.
    pub fraction: f64,
    /// Writes tolerated per overflow.
    pub writes_per_overflow: u64,
}

/// Sweeps `writes-per-overflow` across fractions `1/n, 2/n, …, 1` for the
/// given model.
pub fn sweep(arity: usize, model: impl Fn(f64) -> u64) -> Vec<OverflowSweepPoint> {
    (1..=arity)
        .map(|u| {
            let fraction = u as f64 / arity as f64;
            OverflowSweepPoint { fraction, writes_per_overflow: model(fraction) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn used_for_fraction_rounds_and_clamps() {
        assert_eq!(used_for_fraction(64, 0.0), 1);
        assert_eq!(used_for_fraction(64, 1.0), 64);
        assert_eq!(used_for_fraction(64, 0.5), 32);
        assert_eq!(used_for_fraction(128, 0.25), 32);
    }

    #[test]
    fn sc128_tolerates_8x_fewer_writes_than_sc64_per_counter() {
        // Fig 6's "8X" annotation: at the same *used-counter count* the
        // 3-bit minors of SC-128 tolerate 8x fewer writes than 6-bit SC-64.
        let sc64 = SplitConfig::with_arity(64);
        let sc128 = SplitConfig::with_arity(128);
        // 16 used counters in both lines.
        let w64 = split_writes_per_overflow(sc64, 16.0 / 64.0);
        let w128 = split_writes_per_overflow(sc128, 16.0 / 128.0);
        assert_eq!(w64 / w128, 8);
    }

    #[test]
    fn sc128_worst_case_is_8_writes() {
        let sc128 = SplitConfig::with_arity(128);
        assert_eq!(split_writes_per_overflow(sc128, 1.0 / 128.0), 8);
    }

    #[test]
    fn zcc_beats_sc64_below_quarter_usage() {
        // Fig 10: ZCC tolerates more writes when less than ~25% of the line
        // is used, and fewer when the line is dense.
        let sc64 = SplitConfig::with_arity(64);
        for used in 1..=32usize {
            let f = used as f64 / 128.0;
            let zcc = zcc_writes_per_overflow(f);
            // The same *absolute* number of hot counters on an SC-64 line.
            let f64_frac = (used.min(64)) as f64 / 64.0;
            let sc = split_writes_per_overflow(sc64, f64_frac);
            assert!(zcc >= sc, "used={used}: zcc {zcc} < sc64 {sc}");
        }
        // Dense usage: 8x fewer.
        assert_eq!(
            split_writes_per_overflow(sc64, 1.0) / zcc_writes_per_overflow(1.0),
            4
        );
    }

    #[test]
    fn zcc_peak_is_with_16_counters() {
        assert_eq!(zcc_writes_per_overflow(16.0 / 128.0), 1 << 20);
    }

    #[test]
    fn rebasing_extends_dense_tolerance() {
        let dense_zcc = zcc_writes_per_overflow(1.0);
        let dense_mcr = rebasing_writes_per_overflow(1.0);
        assert!(dense_mcr > dense_zcc * 100);
        // Sparse behaviour identical to ZCC.
        assert_eq!(
            rebasing_writes_per_overflow(0.1),
            zcc_writes_per_overflow(0.1)
        );
    }

    #[test]
    fn sweep_covers_every_used_count() {
        let points = sweep(64, |f| split_writes_per_overflow(SplitConfig::with_arity(64), f));
        assert_eq!(points.len(), 64);
        assert!((points[63].fraction - 1.0).abs() < 1e-12);
        assert_eq!(points[0].writes_per_overflow, 64);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn rejects_bad_fraction() {
        let _ = used_for_fraction(64, 1.5);
    }
}
