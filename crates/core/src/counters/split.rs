//! Classic split counters (Yan et al., ISCA 2006) and the SGX MEE counter
//! organization — the baselines the paper compares against (Fig 3/4).
//!
//! A split-counter line shares one large *major* counter among `n` small
//! *minor* counters; the effective counter for child `i` is the
//! concatenation `major ‖ minor_i`. When any minor wraps, the major is
//! incremented and **all** minors reset, changing every child's effective
//! value — which costs `n` re-encryptions (§II-A2).

use super::bits::{get_bits, set_bits};
use super::{
    CounterLine, IncrementOutcome, LineImage, OverflowEvent, OverflowKind, ReencryptSpan,
};
use crate::{CACHELINE_BITS, LINE_MAC_BITS};

/// Static shape of a split-counter line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitConfig {
    /// Counters per line.
    pub arity: usize,
    /// Width of each minor counter in bits.
    pub minor_bits: u32,
    /// Width of the shared major counter in bits (0 for the SGX MEE layout,
    /// which stores eight full-width counters and no major).
    pub major_bits: u32,
}

impl SplitConfig {
    /// The canonical organization for a given arity:
    ///
    /// - arity 8 → the SGX MEE layout (eight 56-bit counters, no major),
    /// - otherwise a 64-bit major with `384 / arity`-bit minors
    ///   (SC-16: 24 b, SC-32: 12 b, SC-64: 6 b, SC-128: 3 b — Fig 4).
    ///
    /// # Panics
    ///
    /// Panics if the arity is not one of 8, 16, 32, 64, 128.
    #[must_use]
    pub fn with_arity(arity: usize) -> Self {
        match arity {
            8 => SplitConfig { arity: 8, minor_bits: 56, major_bits: 0 },
            16 | 32 | 64 | 128 => SplitConfig {
                arity,
                minor_bits: (384 / arity) as u32,
                major_bits: 64,
            },
            _ => panic!("unsupported split-counter arity {arity}"),
        }
    }

    /// Total bits used by the layout; must fit a 512-bit line.
    fn layout_bits(&self) -> usize {
        self.major_bits as usize + self.arity * self.minor_bits as usize + LINE_MAC_BITS
    }
}

/// A split-counter cacheline.
///
/// # Example
///
/// ```
/// use morphtree_core::counters::split::{SplitConfig, SplitLine};
/// use morphtree_core::counters::{CounterLine, IncrementOutcome};
///
/// let mut line = SplitLine::new(SplitConfig::with_arity(64));
/// // A 6-bit minor overflows on its 64th increment, resetting the line.
/// for _ in 0..63 {
///     assert_eq!(line.increment(0), IncrementOutcome::Ok);
/// }
/// assert!(matches!(line.increment(0), IncrementOutcome::Overflow(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitLine {
    config: SplitConfig,
    major: u64,
    minors: Vec<u64>,
    mac: u64,
}

impl SplitLine {
    /// Creates a fresh line with all counters zero.
    ///
    /// # Panics
    ///
    /// Panics if the configured layout does not fit in a 512-bit line.
    #[must_use]
    pub fn new(config: SplitConfig) -> Self {
        assert!(
            config.layout_bits() <= CACHELINE_BITS,
            "split layout {:?} needs {} bits > {}",
            config,
            config.layout_bits(),
            CACHELINE_BITS
        );
        assert!(config.arity >= 1);
        assert!(config.minor_bits >= 1 && config.minor_bits <= 56);
        SplitLine {
            config,
            major: 0,
            minors: vec![0; config.arity],
            mac: 0,
        }
    }

    /// The line's configuration.
    #[must_use]
    pub fn config(&self) -> SplitConfig {
        self.config
    }

    /// The shared major counter value.
    #[must_use]
    pub fn major(&self) -> u64 {
        self.major
    }

    fn minor_max(&self) -> u64 {
        (1u64 << self.config.minor_bits) - 1
    }

    /// Decodes a line from its 64-byte image.
    #[must_use]
    pub fn decode(config: SplitConfig, image: &LineImage) -> Self {
        let mut line = SplitLine::new(config);
        let mut bit = 0;
        if config.major_bits > 0 {
            line.major = get_bits(image, bit, config.major_bits as usize);
            bit += config.major_bits as usize;
        }
        for slot in 0..config.arity {
            line.minors[slot] = get_bits(image, bit, config.minor_bits as usize);
            bit += config.minor_bits as usize;
        }
        line.mac = get_bits(image, CACHELINE_BITS - LINE_MAC_BITS, LINE_MAC_BITS);
        line
    }
}

impl CounterLine for SplitLine {
    fn arity(&self) -> usize {
        self.config.arity
    }

    fn get(&self, slot: usize) -> u64 {
        // Effective counter = major ‖ minor (concatenation, Fig 3).
        (self.major << self.config.minor_bits) | self.minors[slot]
    }

    fn increment(&mut self, slot: usize) -> IncrementOutcome {
        if self.minors[slot] < self.minor_max() {
            self.minors[slot] += 1;
            return IncrementOutcome::Ok;
        }
        // Minor wrap: bump the major, reset all minors (§II-A2). The slot
        // being written restarts at 1 (its new data is encrypted under
        // `major+1 ‖ 1`, strictly greater than anything issued before).
        let used = self.used_counters();
        self.major += 1;
        self.minors.fill(0);
        self.minors[slot] = 1;
        IncrementOutcome::Overflow(OverflowEvent {
            span: ReencryptSpan::All,
            used_counters: used,
            kind: OverflowKind::FullReset,
        })
    }

    fn used_counters(&self) -> usize {
        self.minors.iter().filter(|&&m| m != 0).count()
    }

    fn mac(&self) -> u64 {
        self.mac
    }

    fn set_mac(&mut self, mac: u64) {
        self.mac = mac;
    }

    fn encode(&self) -> LineImage {
        let mut image = self.encode_for_mac();
        set_bits(
            &mut image,
            CACHELINE_BITS - LINE_MAC_BITS,
            LINE_MAC_BITS,
            self.mac,
        );
        image
    }

    fn encode_for_mac(&self) -> LineImage {
        let mut image = [0u8; crate::CACHELINE_BYTES];
        let mut bit = 0;
        if self.config.major_bits > 0 {
            set_bits(&mut image, bit, self.config.major_bits as usize, self.major);
            bit += self.config.major_bits as usize;
        }
        for &minor in &self.minors {
            set_bits(&mut image, bit, self.config.minor_bits as usize, minor);
            bit += self.config.minor_bits as usize;
        }
        image
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index parallel snapshots by slot
mod tests {
    use super::*;

    #[test]
    fn canonical_shapes_fit_a_cacheline() {
        for arity in [8usize, 16, 32, 64, 128] {
            let cfg = SplitConfig::with_arity(arity);
            assert!(cfg.layout_bits() <= CACHELINE_BITS, "arity {arity}");
        }
        assert_eq!(SplitConfig::with_arity(64).minor_bits, 6);
        assert_eq!(SplitConfig::with_arity(128).minor_bits, 3);
        assert_eq!(SplitConfig::with_arity(32).minor_bits, 12);
        assert_eq!(SplitConfig::with_arity(16).minor_bits, 24);
        assert_eq!(SplitConfig::with_arity(8).minor_bits, 56);
        assert_eq!(SplitConfig::with_arity(8).major_bits, 0);
    }

    #[test]
    #[should_panic(expected = "unsupported split-counter arity")]
    fn rejects_odd_arities() {
        let _ = SplitConfig::with_arity(48);
    }

    #[test]
    fn sc64_overflows_on_the_64th_write_to_one_counter() {
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        for i in 0..63 {
            assert_eq!(line.increment(7), IncrementOutcome::Ok, "write {i}");
        }
        let outcome = line.increment(7);
        let event = outcome.overflow().expect("64th write overflows");
        assert_eq!(event.span, ReencryptSpan::All);
        assert_eq!(event.used_counters, 1);
        assert_eq!(event.kind, OverflowKind::FullReset);
    }

    #[test]
    fn sc128_overflows_in_8_writes() {
        // The paper's §I example: 3-bit minors overflow in just 8 writes.
        let mut line = SplitLine::new(SplitConfig::with_arity(128));
        for _ in 0..7 {
            assert_eq!(line.increment(0), IncrementOutcome::Ok);
        }
        assert!(line.increment(0).overflow().is_some());
    }

    #[test]
    fn effective_values_strictly_increase_across_overflow() {
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        let mut last = line.get(9);
        for _ in 0..300 {
            line.increment(9);
            let now = line.get(9);
            assert!(now > last, "{now} !> {last}");
            last = now;
        }
    }

    #[test]
    fn overflow_advances_all_children_monotonically() {
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        for slot in 0..64 {
            for _ in 0..slot {
                line.increment(slot);
            }
        }
        let before: Vec<u64> = (0..64).map(|s| line.get(s)).collect();
        // Drive slot 63 to overflow.
        while line.increment(63).overflow().is_none() {}
        for slot in 0..64 {
            assert!(line.get(slot) > before[slot] || slot == 63, "slot {slot}");
            // After a reset every untouched child sits at major‖0, which must
            // exceed its previous value.
            assert!(line.get(slot) >= before[slot], "slot {slot}");
        }
    }

    #[test]
    fn used_counters_counts_distinct_nonzero_minors() {
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        assert_eq!(line.used_counters(), 0);
        line.increment(1);
        line.increment(1);
        line.increment(40);
        assert_eq!(line.used_counters(), 2);
    }

    #[test]
    fn codec_roundtrip() {
        let cfg = SplitConfig::with_arity(64);
        let mut line = SplitLine::new(cfg);
        for slot in [0usize, 5, 63] {
            for _ in 0..(slot % 7 + 1) {
                line.increment(slot);
            }
        }
        line.set_mac(0x0123_4567_89ab_cdef);
        let decoded = SplitLine::decode(cfg, &line.encode());
        assert_eq!(decoded, line);
    }

    #[test]
    fn codec_roundtrip_sgx_layout() {
        let cfg = SplitConfig::with_arity(8);
        let mut line = SplitLine::new(cfg);
        for _ in 0..1000 {
            line.increment(3);
        }
        line.set_mac(42);
        assert_eq!(SplitLine::decode(cfg, &line.encode()), line);
        assert_eq!(line.get(3), 1000);
    }

    #[test]
    fn sgx_counters_do_not_overflow_in_practice() {
        let mut line = SplitLine::new(SplitConfig::with_arity(8));
        for _ in 0..1_000_000 {
            assert_eq!(line.increment(0), IncrementOutcome::Ok);
        }
        assert_eq!(line.get(0), 1_000_000);
    }

    #[test]
    fn encode_for_mac_zeroes_only_the_mac_field() {
        let mut line = SplitLine::new(SplitConfig::with_arity(64));
        line.increment(0);
        line.set_mac(u64::MAX);
        let full = line.encode();
        let masked = line.encode_for_mac();
        assert_eq!(full[..56], masked[..56]);
        assert_eq!(masked[56..64], [0u8; 8]);
        assert_eq!(full[56..64], [0xffu8; 8]);
    }
}
