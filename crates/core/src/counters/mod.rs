//! Counter-cacheline organizations for encryption and integrity-tree
//! counters.
//!
//! A *counter line* is one 64-byte metadata cacheline holding many counters
//! plus a 64-bit MAC (Fig 3/4/8/13 of the paper). The organizations differ
//! in how many counters fit per line (the *arity*) and what happens when a
//! small per-counter field is exhausted (*overflow*):
//!
//! - [`split::SplitLine`] — classic split counters: one shared major counter,
//!   `n` equal-width minors; overflow resets the whole line and forces a
//!   re-encryption of all `n` children.
//! - [`morph::MorphLine`] — the paper's contribution: 128 counters per line
//!   that *morph* between Zero Counter Compression (few large counters) and
//!   a uniform/rebasing format (many small counters), overflowing far less
//!   often.
//!
//! All organizations implement [`CounterLine`] and encode to a bit-exact
//! 64-byte image, so storage claims hold by construction.

pub mod analytic;
pub mod bits;
pub mod morph;
pub mod split;

use std::fmt;

/// Identifies which children of a counter line must be re-encrypted (data
/// children) or re-hashed (tree children) after an overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReencryptSpan {
    /// Every child of the line changed effective counter value.
    All,
    /// Only the children in `[start, start + len)` changed (an MCR
    /// set-reset touches one 64-counter set).
    Set {
        /// First affected child slot.
        start: usize,
        /// Number of affected children.
        len: usize,
    },
}

impl ReencryptSpan {
    /// Number of children covered, given the line's arity.
    #[must_use]
    pub fn len(&self, arity: usize) -> usize {
        match *self {
            ReencryptSpan::All => arity,
            ReencryptSpan::Set { len, .. } => len,
        }
    }

    /// Iterates over the affected child slots.
    pub fn slots(&self, arity: usize) -> std::ops::Range<usize> {
        match *self {
            ReencryptSpan::All => 0..arity,
            ReencryptSpan::Set { start, len } => start..start + len,
        }
    }
}

/// What kind of overflow occurred (for ablation studies and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverflowKind {
    /// Minor counters reset and the major advanced (classic split-counter
    /// overflow, or a morphable full reset).
    FullReset,
    /// One MCR 64-counter set was reset against its base.
    SetReset,
    /// An MCR base overflowed: everything reset, format returns to ZCC.
    BaseOverflow,
    /// A ZCC line could not re-encode at a narrower width when a new counter
    /// became non-zero.
    ZccRewidthFailure,
    /// A set had to be reset while switching from ZCC to MCR because its
    /// minors did not fit in 3 bits.
    FormatSwitchReset,
}

/// Details of an overflow event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowEvent {
    /// Which children changed effective counter value and must be
    /// re-encrypted / re-hashed.
    pub span: ReencryptSpan,
    /// Number of non-zero counters in the line when the overflow hit,
    /// *before* the reset — the x-axis of the paper's Fig 7.
    pub used_counters: usize,
    /// Classification of the overflow.
    pub kind: OverflowKind,
}

/// Result of incrementing one counter in a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementOutcome {
    /// The counter advanced; nothing else changed.
    Ok,
    /// Minor counters were re-based (MCR): no effective value other than the
    /// incremented counter changed, so no re-encryption is needed — but the
    /// stored line image changed (§IV, Fig 12).
    Rebased,
    /// The line overflowed; the children in the event's span changed
    /// effective values.
    Overflow(OverflowEvent),
}

impl IncrementOutcome {
    /// Returns the overflow event, if any.
    #[must_use]
    pub fn overflow(&self) -> Option<&OverflowEvent> {
        match self {
            IncrementOutcome::Overflow(e) => Some(e),
            _ => None,
        }
    }
}

/// A 64-byte cacheline image of a counter line.
pub type LineImage = [u8; crate::CACHELINE_BYTES];

/// Common interface of every counter-line organization.
///
/// Implementations guarantee (and the property tests verify):
///
/// 1. **No reuse**: for each slot, the sequence of effective values returned
///    by [`CounterLine::get`] after successive increments is strictly
///    increasing, across overflows and format morphs.
/// 2. **Span soundness**: an increment changes the effective value of a slot
///    other than the incremented one *only if* the outcome reports an
///    overflow whose span covers that slot.
/// 3. **Codec fidelity**: `encode` produces a 64-byte image from which the
///    organization's `decode` reconstructs an equivalent line.
pub trait CounterLine: fmt::Debug {
    /// Number of counters in the line (the tree arity this line provides).
    fn arity(&self) -> usize;

    /// Effective value of counter `slot` (major ⊕ minor composition).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= arity()`.
    fn get(&self, slot: usize) -> u64;

    /// Increments counter `slot`, reporting any overflow.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= arity()`.
    fn increment(&mut self, slot: usize) -> IncrementOutcome;

    /// Number of non-zero minor counters (the "fraction of counter-cacheline
    /// used" numerator of Fig 6/7/10).
    fn used_counters(&self) -> usize;

    /// The stored 64-bit MAC field.
    fn mac(&self) -> u64;

    /// Replaces the stored MAC field.
    fn set_mac(&mut self, mac: u64);

    /// Encodes the line to its 64-byte image (including the MAC field).
    fn encode(&self) -> LineImage;

    /// Encodes the line with the MAC field zeroed — the byte string that the
    /// MAC itself is computed over.
    fn encode_for_mac(&self) -> LineImage;
}

/// A counter line of any supported organization.
///
/// This enum (rather than `Box<dyn CounterLine>`) keeps per-line storage
/// compact and increment dispatch branch-predictable — counter lines are the
/// hottest objects in the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// A split-counter line (SC-n, SGX MEE, VAULT entries).
    Split(split::SplitLine),
    /// A morphable counter line (ZCC / uniform / MCR).
    Morph(morph::MorphLine),
}

impl From<split::SplitLine> for Line {
    fn from(line: split::SplitLine) -> Self {
        Line::Split(line)
    }
}

impl From<morph::MorphLine> for Line {
    fn from(line: morph::MorphLine) -> Self {
        Line::Morph(line)
    }
}

macro_rules! delegate {
    ($self:ident, $line:ident => $body:expr) => {
        match $self {
            Line::Split($line) => $body,
            Line::Morph($line) => $body,
        }
    };
}

impl CounterLine for Line {
    fn arity(&self) -> usize {
        delegate!(self, l => l.arity())
    }
    fn get(&self, slot: usize) -> u64 {
        delegate!(self, l => l.get(slot))
    }
    fn increment(&mut self, slot: usize) -> IncrementOutcome {
        delegate!(self, l => l.increment(slot))
    }
    fn used_counters(&self) -> usize {
        delegate!(self, l => l.used_counters())
    }
    fn mac(&self) -> u64 {
        delegate!(self, l => l.mac())
    }
    fn set_mac(&mut self, mac: u64) {
        delegate!(self, l => l.set_mac(mac))
    }
    fn encode(&self) -> LineImage {
        delegate!(self, l => l.encode())
    }
    fn encode_for_mac(&self) -> LineImage {
        delegate!(self, l => l.encode_for_mac())
    }
}

/// Describes a counter organization abstractly: used by tree configurations
/// to instantiate fresh (all-zero) lines per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterOrg {
    /// Split counters with the given arity (minor width is `384 / arity`;
    /// the SGX MEE 8-ary organization uses 56-bit counters and no major).
    Split {
        /// Counters per line.
        arity: usize,
    },
    /// Morphable counters, 128 per line, in the given mode.
    Morph(morph::MorphMode),
}

impl CounterOrg {
    /// Arity (counters per cacheline) of this organization.
    #[must_use]
    pub fn arity(&self) -> usize {
        match *self {
            CounterOrg::Split { arity } => arity,
            CounterOrg::Morph(_) => morph::MORPH_ARITY,
        }
    }

    /// Creates a fresh all-zero line of this organization.
    #[must_use]
    pub fn new_line(&self) -> Line {
        match *self {
            CounterOrg::Split { arity } => Line::Split(split::SplitLine::new(
                split::SplitConfig::with_arity(arity),
            )),
            CounterOrg::Morph(mode) => Line::Morph(morph::MorphLine::new(mode)),
        }
    }

    /// Short human-readable name (e.g. `SC-64`, `MorphCtr-128`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            CounterOrg::Split { arity } => format!("SC-{arity}"),
            CounterOrg::Morph(morph::MorphMode::ZccOnly) => "MorphCtr-128 (ZCC-only)".to_owned(),
            CounterOrg::Morph(morph::MorphMode::ZccRebase) => "MorphCtr-128".to_owned(),
            CounterOrg::Morph(morph::MorphMode::SingleBase) => {
                "MorphCtr-128 (single-base)".to_owned()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn org_arity_and_labels() {
        assert_eq!(CounterOrg::Split { arity: 64 }.arity(), 64);
        assert_eq!(CounterOrg::Morph(morph::MorphMode::ZccRebase).arity(), 128);
        assert_eq!(CounterOrg::Split { arity: 64 }.label(), "SC-64");
        assert_eq!(
            CounterOrg::Morph(morph::MorphMode::ZccRebase).label(),
            "MorphCtr-128"
        );
    }

    #[test]
    fn new_line_starts_all_zero() {
        for org in [
            CounterOrg::Split { arity: 64 },
            CounterOrg::Split { arity: 128 },
            CounterOrg::Morph(morph::MorphMode::ZccOnly),
            CounterOrg::Morph(morph::MorphMode::ZccRebase),
        ] {
            let line = org.new_line();
            assert_eq!(line.used_counters(), 0, "{org:?}");
            for slot in 0..line.arity() {
                assert_eq!(line.get(slot), 0, "{org:?} slot {slot}");
            }
        }
    }

    #[test]
    fn span_len_and_slots() {
        assert_eq!(ReencryptSpan::All.len(128), 128);
        let set = ReencryptSpan::Set { start: 64, len: 64 };
        assert_eq!(set.len(128), 64);
        assert_eq!(set.slots(128), 64..128);
        assert_eq!(ReencryptSpan::All.slots(64), 0..64);
    }

    #[test]
    fn line_enum_delegates() {
        let mut line = CounterOrg::Split { arity: 64 }.new_line();
        assert_eq!(line.increment(3), IncrementOutcome::Ok);
        assert_eq!(line.get(3), 1);
        assert_eq!(line.used_counters(), 1);
        line.set_mac(0xdead_beef);
        assert_eq!(line.mac(), 0xdead_beef);
        let image = line.encode();
        let masked = line.encode_for_mac();
        assert_ne!(image, masked);
    }
}
